//! Quickstart: build a small knowledge graph and its ontology, construct
//! a BiG-index, and run a boosted keyword search.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use big_index_repro::graph::{GraphBuilder, LabelInterner, OntologyBuilder};
use big_index_repro::index::{BiGIndex, Boosted, BuildParams, EvalOptions};
use big_index_repro::search::{Banks, KeywordQuery};

fn main() {
    // --- Labels -----------------------------------------------------
    let mut labels = LabelInterner::new();
    let person = labels.intern("Person");
    let prof = labels.intern("Professor");
    let student = labels.intern("Student");
    let univ = labels.intern("Univ");
    let state = labels.intern("Massachusetts");

    // --- Ontology: Person ⊐ {Professor, Student} --------------------
    let mut ont = OntologyBuilder::new(labels.len());
    ont.add_subtype(person, prof);
    ont.add_subtype(person, student);
    let ontology = ont.build().expect("acyclic");

    // --- Data graph: professors and students at one university ------
    let mut g = GraphBuilder::new();
    let mit = g.add_vertex(univ);
    let ma = g.add_vertex(state);
    g.add_edge(mit, ma);
    for i in 0..60 {
        let label = if i % 3 == 0 { prof } else { student };
        let p = g.add_vertex(label);
        g.add_edge(p, mit);
    }
    let graph = g.build();
    println!(
        "data graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- Build the BiG-index ----------------------------------------
    let index = BiGIndex::build(graph, ontology, &BuildParams::default());
    println!(
        "BiG-index: {} layers, sizes {:?}",
        index.num_layers(),
        index.layer_sizes()
    );

    // --- Boosted keyword search -------------------------------------
    // Find roots connecting a Professor with Massachusetts within 2 hops.
    let boosted = Boosted::new(&index, Banks, EvalOptions::default());
    let query = KeywordQuery::new(vec![prof, state], 2);
    let result = boosted.query(&query, 5);
    println!(
        "query evaluated at layer {} -> {} answers",
        result.layer,
        result.answers.len()
    );
    for (i, a) in result.answers.iter().enumerate() {
        println!(
            "  #{i}: root={:?} score={} vertices={:?}",
            a.root, a.score, a.vertices
        );
    }

    // Sanity: the boosted answers match the unboosted baseline.
    let (baseline, _) = boosted.baseline(&query, 5);
    assert_eq!(baseline.len(), result.answers.len());
    println!("baseline agrees: {} answers", baseline.len());
}
