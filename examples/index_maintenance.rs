//! Index maintenance under graph updates (Sec. 3.2, "Maintenance of
//! BiG-index"): incremental bisimulation keeps a *valid* (stable)
//! partition after edge insertions and deletions — so queries stay
//! correct — while a periodic rebuild restores maximal compression.
//!
//! ```sh
//! cargo run --release --example index_maintenance
//! ```

use big_index_repro::bisim::incremental::{IncrementalBisim, Update};
use big_index_repro::bisim::properties::is_stable;
use big_index_repro::bisim::BisimDirection;
use big_index_repro::graph::{GraphBuilder, LabelId, VId};

fn main() {
    // A fan of 200 persons pointing at one hub: 2 blocks when maximal.
    let mut b = GraphBuilder::new();
    let hub = b.add_vertex(LabelId(1));
    for _ in 0..200 {
        let p = b.add_vertex(LabelId(0));
        b.add_edge(p, hub);
    }
    let g = b.build();

    let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
    println!(
        "initial: {} blocks over {} vertices",
        inc.partition().num_blocks(),
        inc.graph().num_vertices()
    );
    assert_eq!(inc.partition().num_blocks(), 2);

    // Apply a batch of updates: some persons gain extra edges (splits),
    // some lose theirs.
    for i in 1..=20u32 {
        inc.apply(Update::InsertEdge(VId(i), VId(i + 20)));
    }
    for i in 41..=50u32 {
        inc.apply(Update::DeleteEdge(VId(i), hub));
    }
    println!(
        "after 30 updates: {} blocks (stable: {})",
        inc.partition().num_blocks(),
        is_stable(inc.graph(), inc.partition(), BisimDirection::Forward)
    );
    assert!(is_stable(
        inc.graph(),
        inc.partition(),
        BisimDirection::Forward
    ));

    // Undo everything: the graph is back to the fan, but the incremental
    // partition is finer than maximal (splits are never merged back).
    for i in 1..=20u32 {
        inc.apply(Update::DeleteEdge(VId(i), VId(i + 20)));
    }
    for i in 41..=50u32 {
        inc.apply(Update::InsertEdge(VId(i), hub));
    }
    let before_rebuild = inc.partition().num_blocks();
    inc.rebuild();
    println!(
        "graph restored: {} blocks incrementally, {} after rebuild",
        before_rebuild,
        inc.partition().num_blocks()
    );
    assert!(before_rebuild >= inc.partition().num_blocks());
    assert_eq!(inc.partition().num_blocks(), 2);
}
