//! Keyword search on an IMDB-like synthetic knowledge graph: generate
//! the dataset, build the default BiG-index and a Tab. 4-style workload,
//! and compare boosted BLINKS against the unboosted baseline per query.
//!
//! ```sh
//! cargo run --release --example movie_search
//! ```

use big_index_repro::datasets::{benchmark_queries, DatasetSpec};
use big_index_repro::index::{Boosted, EvalOptions};
use big_index_repro::search::blinks::{Blinks, BlinksParams};
use std::time::Instant;

fn main() {
    let scale = std::env::var("BGI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let ds = DatasetSpec::imdb_like(scale).generate();
    println!(
        "{}: |V| = {}, |E| = {}, ontology: {} types",
        ds.name,
        ds.num_vertices(),
        ds.num_edges(),
        ds.ontology.num_labels()
    );

    let t = Instant::now();
    let (index, _) = bench_index(&ds);
    println!(
        "BiG-index: {} layers in {:?}; sizes {:?}",
        index.num_layers(),
        t.elapsed(),
        index.layer_sizes()
    );

    let blinks = Blinks::new(BlinksParams {
        block_size: 1000,
        prune_dist: 5,
    });
    let boosted = Boosted::new(&index, blinks, EvalOptions::default());
    let queries = benchmark_queries(&ds, 5, (scale / 100).max(3) as u32, 7);
    for q in &queries {
        let query = q.to_query();
        let names: Vec<&str> = q.keywords.iter().map(|&l| ds.labels.name(l)).collect();
        let t = Instant::now();
        let (baseline, _) = boosted.baseline(&query, 10);
        let base_t = t.elapsed();
        let t = Instant::now();
        let result = boosted.query(&query, 10);
        let boost_t = t.elapsed();
        println!(
            "{}: {:?} -> layer {}, {} answers (baseline {}); baseline {:?} vs boosted {:?}",
            q.id,
            names,
            result.layer,
            result.answers.len(),
            baseline.len(),
            base_t,
            boost_t
        );
        assert!(result.answers.len() <= 10);
        assert!(baseline.len() <= 10);
    }
}

/// Builds the paper's default index (one generalization step per layer).
fn bench_index(
    ds: &big_index_repro::datasets::Dataset,
) -> (big_index_repro::index::BiGIndex, std::time::Duration) {
    use big_index_repro::bisim::BisimDirection;
    use big_index_repro::index::{BiGIndex, GenConfig};
    let t = Instant::now();
    let mut configs: Vec<GenConfig> = Vec::new();
    let mut current = ds.graph.clone();
    for _ in 0..7 {
        let counts = current.label_counts();
        let mappings: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .filter_map(|(i, _)| {
                let l = big_index_repro::graph::LabelId(i as u32);
                ds.ontology
                    .direct_supertypes(l)
                    .first()
                    .map(|&sup| (l, sup))
            })
            .collect();
        let config = GenConfig::new(mappings, &ds.ontology).expect("valid");
        if config.is_empty() {
            break;
        }
        let probe = BiGIndex::build_with_configs(
            current.clone(),
            ds.ontology.clone(),
            vec![config.clone()],
            BisimDirection::Forward,
        );
        configs.push(config);
        let next = probe.graph_at(1).clone();
        if next.size() == current.size() {
            break;
        }
        current = next;
    }
    let index = BiGIndex::build_with_configs(
        ds.graph.clone(),
        ds.ontology.clone(),
        configs,
        BisimDirection::Forward,
    );
    (index, t.elapsed())
}
