//! Ontology evolution (Sec. 3.2, "Maintenance of BiG-index"): adding a
//! subtype relation never invalidates the index; removing one rewrites
//! the affected configurations and rebuilds the affected layers.
//!
//! ```sh
//! cargo run --release --example ontology_evolution
//! ```

use big_index_repro::bisim::BisimDirection;
use big_index_repro::graph::{GraphBuilder, LabelInterner, OntologyBuilder};
use big_index_repro::index::{BiGIndex, Boosted, EvalOptions, GenConfig};
use big_index_repro::search::{Banks, KeywordQuery};

fn main() {
    let mut labels = LabelInterner::new();
    let person = labels.intern("Person");
    let prof = labels.intern("Professor");
    let student = labels.intern("Student");
    let univ = labels.intern("Univ");
    let postdoc = labels.intern("Postdoc"); // not yet in the ontology

    let mut ont = OntologyBuilder::new(labels.len());
    ont.add_subtype(person, prof);
    ont.add_subtype(person, student);
    let ontology = ont.build().unwrap();

    let mut g = GraphBuilder::new();
    let hub = g.add_vertex(univ);
    for i in 0..30 {
        let label = match i % 3 {
            0 => prof,
            1 => student,
            _ => postdoc,
        };
        let v = g.add_vertex(label);
        g.add_edge(v, hub);
    }
    let graph = g.build();

    let config = GenConfig::new([(prof, person), (student, person)], &ontology).unwrap();
    let index =
        BiGIndex::build_with_configs(graph, ontology, vec![config], BisimDirection::Forward);
    println!(
        "initial index: layer sizes {:?} (postdocs not generalized)",
        index.layer_sizes()
    );

    // The knowledge engineers add Postdoc ⊏ Person: the index stays
    // correct as-is and can be rebuilt to exploit the new relation.
    let richer = index.ontology_edge_added(person, postdoc).unwrap();
    println!(
        "after adding Person ⊐ Postdoc: layer sizes {:?} (rebuild may now also map Postdoc)",
        richer.layer_sizes()
    );

    // Later the Student relation is retracted: the affected mapping is
    // dropped and the hierarchy rebuilt; queries still work.
    let pruned = richer.ontology_edge_removed(person, student).unwrap();
    println!(
        "after removing Person ⊐ Student: layer sizes {:?}",
        pruned.layer_sizes()
    );
    assert_eq!(pruned.generalize_label(student, 1), student);
    assert_eq!(pruned.generalize_label(prof, 1), person);

    let boosted = Boosted::new(&pruned, Banks, EvalOptions::default());
    let q = KeywordQuery::new(vec![student, univ], 2);
    let result = boosted.query(&q, 5);
    let (baseline, _) = boosted.baseline(&q, 5);
    println!(
        "query {{Student, Univ}}: {} answers (baseline {}) at layer {}",
        result.answers.len(),
        baseline.len(),
        result.layer
    );
    assert_eq!(result.answers.len(), baseline.len());
}
