//! The paper's running example (Figs. 1–4): a small academic knowledge
//! graph where 100 bisimilar Person vertices collapse to one supernode
//! after generalization, and the query
//! `{Massachusetts, Ivy League, California}` is answered through the
//! summary hierarchy.
//!
//! ```sh
//! cargo run --release --example academic_search
//! ```

use big_index_repro::bisim::{maximal_bisimulation, summarize, BisimDirection};
use big_index_repro::graph::{GraphBuilder, LabelInterner, OntologyBuilder, VId};
use big_index_repro::index::{BiGIndex, Boosted, EvalOptions, GenConfig};
use big_index_repro::search::{Banks, KeywordQuery};

fn main() {
    let mut labels = LabelInterner::new();
    // Types.
    let person = labels.intern("Person");
    let academics = labels.intern("Academics");
    let investor = labels.intern("Investor");
    let univ = labels.intern("Univ.");
    let org = labels.intern("Organization");
    let location = labels.intern("Location");
    let eastern = labels.intern("Eastern");
    let western = labels.intern("Western");
    // Specific keywords (leaf labels).
    let p_graham = labels.intern("P.Graham");
    let s_idreos = labels.intern("S.Idreos");
    let anon_person = labels.intern("S.Russell..A.Rodger"); // the 100 persons
    let harvard = labels.intern("Harvard Univ.");
    let cornell = labels.intern("Cornell Univ.");
    let berkeley = labels.intern("UC Berkeley");
    let ivy = labels.intern("Ivy League");
    let massachusetts = labels.intern("Massachusetts");
    let new_york = labels.intern("New York");
    let california = labels.intern("California");

    // Ontology (Fig. 2).
    let mut ont = OntologyBuilder::new(labels.len());
    ont.add_subtype(person, academics);
    ont.add_subtype(person, investor);
    ont.add_subtype(academics, p_graham);
    ont.add_subtype(academics, s_idreos);
    ont.add_subtype(person, anon_person);
    ont.add_subtype(univ, harvard);
    ont.add_subtype(univ, cornell);
    ont.add_subtype(univ, berkeley);
    ont.add_subtype(org, ivy);
    ont.add_subtype(location, eastern);
    ont.add_subtype(location, western);
    ont.add_subtype(eastern, massachusetts);
    ont.add_subtype(eastern, new_york);
    ont.add_subtype(western, california);
    let ontology = ont.build().expect("acyclic ontology");

    // Data graph (Fig. 1).
    let mut g = GraphBuilder::new();
    let v_graham = g.add_vertex(p_graham);
    let v_idreos = g.add_vertex(s_idreos);
    let v_harvard = g.add_vertex(harvard);
    let v_cornell = g.add_vertex(cornell);
    let v_berkeley = g.add_vertex(berkeley);
    let v_ivy = g.add_vertex(ivy);
    let v_ma = g.add_vertex(massachusetts);
    let v_ny = g.add_vertex(new_york);
    let v_ca = g.add_vertex(california);
    g.add_edge(v_graham, v_harvard);
    g.add_edge(v_graham, v_cornell);
    g.add_edge(v_graham, v_berkeley);
    g.add_edge(v_idreos, v_harvard);
    g.add_edge(v_harvard, v_ivy);
    g.add_edge(v_cornell, v_ivy);
    g.add_edge(v_harvard, v_ma);
    g.add_edge(v_cornell, v_ny);
    g.add_edge(v_berkeley, v_ca);
    // The 100 persons of the dashed rectangle, all studying at Berkeley.
    for _ in 0..100 {
        let p = g.add_vertex(anon_person);
        g.add_edge(p, v_berkeley);
    }
    let graph = g.build();
    println!(
        "G: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Generalize labels per Fig. 3's configuration, then summarize.
    let config = GenConfig::new(
        [
            (p_graham, academics),
            (s_idreos, academics),
            (anon_person, person),
            (harvard, univ),
            (cornell, univ),
            (berkeley, univ),
            (massachusetts, eastern),
            (new_york, eastern),
            (california, western),
        ],
        &ontology,
    )
    .expect("valid configuration");

    // Show the raw summarization step (Fig. 4): the 100 persons collapse.
    let generalized = graph.relabel(&config.label_map(labels.len()));
    let partition = maximal_bisimulation(&generalized, BisimDirection::Forward);
    let summary = summarize(&generalized, &partition);
    let person_class = summary.supernode_of(VId(9)); // first of the 100 persons
    println!(
        "G' (Fig. 4): {} supernodes, {} edges — the 100 persons collapsed into \
         one supernode with {} members",
        summary.graph.num_vertices(),
        summary.graph.num_edges(),
        summary.members(person_class).len(),
    );
    assert_eq!(summary.members(person_class).len(), 100);

    // Full BiG-index + boosted query Q1 = {Massachusetts, IvyLeague,
    // California}, d_max = 3 (Example I.1).
    let index =
        BiGIndex::build_with_configs(graph, ontology, vec![config], BisimDirection::Forward);
    let boosted = Boosted::new(&index, Banks, EvalOptions::default());
    let q1 = KeywordQuery::new(vec![massachusetts, ivy, california], 3);
    let result = boosted.query(&q1, 10);
    println!(
        "Q1 = {{Massachusetts, Ivy League, California}}, d_max = 3 -> {} answer(s) at layer {}",
        result.answers.len(),
        result.layer
    );
    for a in &result.answers {
        let root = a.root.expect("rooted answer");
        println!(
            "  root = vertex {root:?} (P. Graham = v0), score = {}",
            a.score
        );
        assert_eq!(
            root,
            VId(0),
            "the paper's answer tree is rooted at P. Graham"
        );
    }
    assert!(
        !result.answers.is_empty(),
        "the Fig. 1 answer must be found"
    );
}
