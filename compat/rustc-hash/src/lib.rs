//! Offline compatibility shim for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the real `rustc-hash` API the workspace
//! uses: [`FxHasher`], [`FxBuildHasher`], [`FxHashMap`], and
//! [`FxHashSet`]. The hash function is the same multiply-rotate scheme
//! as upstream (`hash = rotl5(hash) ^ word` followed by a multiply with
//! a 64-bit seed); it is a fast, deterministic, non-cryptographic hash.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher: fast and deterministic, not DoS-resistant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abc"), h(b"abc\0"));
    }
}
