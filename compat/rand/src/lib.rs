//! Offline compatibility shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides what the workspace actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods [`Rng::gen_range`] (half-open and inclusive integer/float
//! ranges) and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! same stream as the real `StdRng` (ChaCha12), but every use in this
//! workspace treats the RNG as an arbitrary deterministic source, so
//! only reproducibility *within* the workspace matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range; implemented for `Range` and
/// `RangeInclusive` over the primitive integer and float types.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (u128::from(rng.next_u64()) % span) as $wide;
                ((self.start as $wide).wrapping_add(off)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as $wide;
                ((start as $wide).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (panics on an empty range).
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p` (`0 ≤ p ≤ 1`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small fast generator; identical to [`StdRng`] in this shim.
    pub type SmallRng = StdRng;

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let pairs = (0..100)
            .filter(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX))
            .count();
        assert!(pairs < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler misses values");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
