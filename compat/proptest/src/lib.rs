//! Offline compatibility shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of proptest used by the workspace's
//! property tests:
//!
//! - [`strategy::Strategy`] implemented for integer ranges, tuples of
//!   strategies, [`strategy::Just`], and closures via
//!   [`strategy::FnStrategy`];
//! - [`collection::vec`] with `usize` / `Range<usize>` sizes;
//! - the [`proptest!`], [`prop_compose!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`]
//!   macros;
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Unlike real proptest there is **no shrinking** and the RNG seed is a
//! deterministic function of the test's module path and case number, so
//! failures are reproducible without a regression file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the per-case RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// RNG for case number `case` of the test named `name`
        /// (typically `module_path!() :: test_name`).
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking in this shim).

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy backed by a closure over the RNG; the building block of
    /// [`crate::prop_compose!`].
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> Self {
            FnStrategy(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy may produce
    /// (`lo..hi`, half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with `size` elements (fixed count or range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Asserts a condition inside a property test (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs [`test_runner::ProptestConfig::cases`] times
/// with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($argname:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $argname =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // One closure per case so `prop_assume!`'s early return
                // skips only this case.
                let case_fn = move || $body;
                case_fn();
            }
        }
    )*};
}

/// Defines a named strategy function from component strategies, as in
/// real proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($params:tt)* )
        ( $($argname:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $argname =
                        $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pairs whose first element never exceeds the second.
        fn ordered_pair()(lo in 0u32..50, span in 0u32..50) -> (u32, u32) {
            (lo, lo + span)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0i32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn composed_strategy_holds(p in ordered_pair()) {
            prop_assert!(p.0 <= p.1, "pair {:?} out of order", p);
        }

        #[test]
        fn tuples_and_assume(t in (0u32..10, 0u32..10)) {
            prop_assume!(t.0 != t.1);
            prop_assert_ne!(t.0, t.1);
        }
    }
}
