//! Offline compatibility shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate lets the workspace's benches compile and run without the real
//! statistics engine. Each registered benchmark routine executes its
//! timing closure **once** and the wall-clock time is printed — enough
//! to smoke-test the benchmarks and get a rough magnitude, not a
//! rigorous measurement.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single benchmark routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A group of related benchmark routines.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling counts are meaningless
    /// in this single-pass shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark routine within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark routine parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        report(&label, start);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    report(label, start);
}

fn report(label: &str, start: Instant) {
    eprintln!("bench {label}: {:?} (single pass)", start.elapsed());
}

/// Timing handle passed to benchmark routines.
#[derive(Debug, Default)]
pub struct Bencher {}

impl Bencher {
    /// Executes the routine once (the real criterion samples it many
    /// times).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
