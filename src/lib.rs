//! # big-index-repro
//!
//! Facade crate for the BiG-index reproduction. Re-exports the workspace
//! crates so examples and integration tests can use a single dependency:
//!
//! - [`graph`] — directed labeled graphs, ontology DAGs, traversals,
//!   sampling, and generators (`bgi-graph`).
//! - [`bisim`] — maximal-bisimulation summarization (`bgi-bisim`).
//! - [`search`] — BANKS, BLINKS, and r-clique keyword search (`bgi-search`).
//! - [`index`] — the BiG-index itself (`big-index`).
//! - [`datasets`] — synthetic stand-ins for the paper's evaluation
//!   datasets and query workloads (`bgi-datasets`).
//! - [`verify`] — whole-index invariant checking with structured
//!   diagnostic reports (`bgi-verify`).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bgi_bisim as bisim;
pub use bgi_datasets as datasets;
pub use bgi_graph as graph;
pub use bgi_search as search;
pub use bgi_verify as verify;
pub use big_index as index;
