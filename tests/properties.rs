//! Property-based tests (proptest) for the core invariants:
//!
//! - summarization is label- and path-preserving (Defs. 2.1–2.2) and the
//!   refinement fixpoint is stable;
//! - `χ` / `Spec` are mutually inverse and partition the vertex set;
//! - Prop. 5.2: summary distances lower-bound data-graph distances;
//! - `eval_Ont` soundness: every boosted answer validates on `G⁰`;
//! - both structural realizers (Algo. 3 and Algo. 4) produce the same
//!   answer sets.

use big_index_repro::bisim::properties::{
    has_no_phantom_edges, is_label_preserving, is_path_preserving, is_stable,
};
use big_index_repro::bisim::{maximal_bisimulation, summarize, BisimDirection};
use big_index_repro::graph::traversal::shortest_distance;
use big_index_repro::graph::{DiGraph, GraphBuilder, LabelId, Ontology, OntologyBuilder, VId};
use big_index_repro::index::query_gen::keywords_stay_distinct;
use big_index_repro::index::{BiGIndex, Boosted, EvalOptions, GenConfig, RealizerKind};
use big_index_repro::search::{AnswerGraph, Banks, KeywordQuery};
use proptest::prelude::*;

/// Number of base labels; each label `i` has supertype `NUM_LABELS + i/2`
/// (pairs of siblings), giving a 2-level ontology.
const NUM_LABELS: u32 = 6;

fn ontology() -> Ontology {
    let mut b = OntologyBuilder::new((NUM_LABELS + NUM_LABELS / 2) as usize);
    for i in 0..NUM_LABELS {
        b.add_subtype(LabelId(NUM_LABELS + i / 2), LabelId(i));
    }
    b.build().unwrap()
}

fn full_config(ont: &Ontology) -> GenConfig {
    GenConfig::new(
        (0..NUM_LABELS).map(|i| (LabelId(i), LabelId(NUM_LABELS + i / 2))),
        ont,
    )
    .unwrap()
}

prop_compose! {
    /// A random directed labeled graph of up to 60 vertices.
    fn arb_graph()(
        n in 2usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..150),
        labels in proptest::collection::vec(0u32..NUM_LABELS, 60),
    ) -> DiGraph {
        let mut b = GraphBuilder::new();
        for &l in labels.iter().take(n) {
            b.add_vertex(LabelId(l));
        }
        for (u, v) in edges {
            if u < n && v < n {
                b.add_edge(VId(u as u32), VId(v as u32));
            }
        }
        b.build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summary_preserves_labels_paths_and_stability(g in arb_graph()) {
        for dir in [BisimDirection::Forward, BisimDirection::Backward, BisimDirection::Both] {
            let part = maximal_bisimulation(&g, dir);
            let s = summarize(&g, &part);
            prop_assert!(is_label_preserving(&g, &s));
            prop_assert!(is_path_preserving(&g, &s));
            prop_assert!(has_no_phantom_edges(&g, &s));
            prop_assert!(is_stable(&g, &part, dir));
        }
    }

    #[test]
    fn chi_and_spec_partition_the_graph(g in arb_graph()) {
        let ont = ontology();
        let config = full_config(&ont);
        let index = BiGIndex::build_with_configs(
            g.clone(), ont, vec![config], BisimDirection::Forward);
        let m = index.num_layers();
        // Every vertex is in the spec of its chi image.
        for v in g.vertices() {
            prop_assert!(index.spec_to_base(index.chi(v, m), m).contains(&v));
        }
        // Specs of all supernodes form a partition of V.
        let mut all: Vec<VId> = index
            .graph_at(m)
            .vertices()
            .flat_map(|s| index.spec_to_base(s, m))
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, g.vertices().collect::<Vec<_>>());
    }

    #[test]
    fn prop_5_2_distance_contraction(g in arb_graph(), pairs in proptest::collection::vec((0usize..60, 0usize..60), 10)) {
        let ont = ontology();
        let config = full_config(&ont);
        let index = BiGIndex::build_with_configs(
            g.clone(), ont, vec![config], BisimDirection::Forward);
        let gm = index.graph_at(1);
        for (u, v) in pairs {
            if u >= g.num_vertices() || v >= g.num_vertices() {
                continue;
            }
            let (u, v) = (VId(u as u32), VId(v as u32));
            if let Some(d) = shortest_distance(&g, u, v, 8) {
                let ds = shortest_distance(gm, index.chi(u, 1), index.chi(v, 1), 8);
                prop_assert!(ds.is_some(), "reachability lost in summary");
                prop_assert!(ds.unwrap() <= d, "summary distance must not exceed");
            }
        }
    }

    #[test]
    fn eval_ont_is_sound(g in arb_graph(), kw in proptest::collection::vec(0u32..NUM_LABELS, 1..3), dmax in 1u32..4) {
        let ont = ontology();
        let config = full_config(&ont);
        let index = BiGIndex::build_with_configs(
            g.clone(), ont, vec![config], BisimDirection::Forward);
        let boosted = Boosted::new(&index, Banks, EvalOptions::default());
        let q = KeywordQuery::new(kw.iter().map(|&i| LabelId(i)).collect::<Vec<_>>(), dmax);
        let r = boosted.query(&q, 10);
        for a in &r.answers {
            prop_assert!(a.validate(&g, &q.keywords), "invalid answer at layer {}", r.layer);
            // Scores respect the distance bound per keyword.
            prop_assert!(a.score <= (q.dmax as u64) * q.len() as u64);
        }
    }

    #[test]
    fn realizers_agree(g in arb_graph(), kw in proptest::collection::vec(0u32..NUM_LABELS, 1..3)) {
        let ont = ontology();
        let config = full_config(&ont);
        let index = BiGIndex::build_with_configs(
            g.clone(), ont, vec![config], BisimDirection::Forward);
        let q = KeywordQuery::new(kw.iter().map(|&i| LabelId(i)).collect::<Vec<_>>(), 3);
        let m = if index.num_layers() >= 1 && keywords_stay_distinct(&index, &q, 1) { 1 } else { 0 };
        let ids = |realizer| {
            let opts = EvalOptions { realizer, ..EvalOptions::default() };
            let boosted = Boosted::new(&index, Banks, opts);
            let r = boosted.query_at_layer(&q, 100_000, m);
            let mut v: Vec<_> = r.answers.iter().map(AnswerGraph::identity).collect();
            v.sort();
            v
        };
        prop_assert_eq!(
            ids(RealizerKind::VertexAtATime),
            ids(RealizerKind::PathBased)
        );
    }

    #[test]
    fn boosted_subset_of_baseline_roots(g in arb_graph(), kw in proptest::collection::vec(0u32..NUM_LABELS, 1..3)) {
        // Soundness at the root level: any boosted root+score pair must
        // be exactly reproducible by the baseline's answer for that root.
        let ont = ontology();
        let config = full_config(&ont);
        let index = BiGIndex::build_with_configs(
            g.clone(), ont, vec![config], BisimDirection::Forward);
        let boosted = Boosted::new(&index, Banks, EvalOptions::default());
        let q = KeywordQuery::new(kw.iter().map(|&i| LabelId(i)).collect::<Vec<_>>(), 3);
        let (baseline, _) = boosted.baseline(&q, 100_000);
        let m = if index.num_layers() >= 1 && keywords_stay_distinct(&index, &q, 1) { 1 } else { 0 };
        let r = boosted.query_at_layer(&q, 100_000, m);
        for a in &r.answers {
            let base = baseline.iter().find(|b| b.root == a.root);
            prop_assert!(base.is_some(), "boosted root absent from baseline");
            // The baseline's per-root answer is the best one; the boosted
            // realization can't beat it.
            prop_assert!(base.unwrap().score <= a.score);
        }
    }
}
