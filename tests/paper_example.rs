//! Integration test: the paper's running example (Figs. 1–5,
//! Examples I.1, 2.1, 4.1–4.3) reproduced end to end.

use big_index_repro::bisim::{maximal_bisimulation, summarize, BisimDirection};
use big_index_repro::graph::{
    DiGraph, GraphBuilder, LabelInterner, Ontology, OntologyBuilder, VId,
};
use big_index_repro::index::{BiGIndex, Boosted, EvalOptions, GenConfig, RealizerKind};
use big_index_repro::search::{Banks, KeywordQuery};

struct PaperWorld {
    labels: LabelInterner,
    graph: DiGraph,
    ontology: Ontology,
    config: GenConfig,
}

fn build_world() -> PaperWorld {
    let mut labels = LabelInterner::new();
    let person = labels.intern("Person");
    let academics = labels.intern("Academics");
    let univ = labels.intern("Univ.");
    let org = labels.intern("Organization");
    let location = labels.intern("Location");
    let eastern = labels.intern("Eastern");
    let western = labels.intern("Western");
    let p_graham = labels.intern("P.Graham");
    let anon = labels.intern("Anon");
    let harvard = labels.intern("Harvard");
    let cornell = labels.intern("Cornell");
    let berkeley = labels.intern("Berkeley");
    let ivy = labels.intern("IvyLeague");
    let ma = labels.intern("Massachusetts");
    let ny = labels.intern("NewYork");
    let ca = labels.intern("California");

    let mut ont = OntologyBuilder::new(labels.len());
    ont.add_subtype(person, academics);
    ont.add_subtype(academics, p_graham);
    ont.add_subtype(person, anon);
    ont.add_subtype(univ, harvard);
    ont.add_subtype(univ, cornell);
    ont.add_subtype(univ, berkeley);
    ont.add_subtype(org, ivy);
    ont.add_subtype(location, eastern);
    ont.add_subtype(location, western);
    ont.add_subtype(eastern, ma);
    ont.add_subtype(eastern, ny);
    ont.add_subtype(western, ca);
    let ontology = ont.build().unwrap();

    let mut g = GraphBuilder::new();
    let v_graham = g.add_vertex(p_graham); // v0
    let v_harvard = g.add_vertex(harvard); // v1
    let v_cornell = g.add_vertex(cornell); // v2
    let v_berkeley = g.add_vertex(berkeley); // v3
    let v_ivy = g.add_vertex(ivy); // v4
    let v_ma = g.add_vertex(ma); // v5
    let v_ny = g.add_vertex(ny); // v6
    let v_ca = g.add_vertex(ca); // v7
    g.add_edge(v_graham, v_harvard);
    g.add_edge(v_graham, v_cornell);
    g.add_edge(v_graham, v_berkeley);
    g.add_edge(v_harvard, v_ivy);
    g.add_edge(v_cornell, v_ivy);
    g.add_edge(v_harvard, v_ma);
    g.add_edge(v_cornell, v_ny);
    g.add_edge(v_berkeley, v_ca);
    for _ in 0..100 {
        let p = g.add_vertex(anon);
        g.add_edge(p, v_berkeley);
    }
    let graph = g.build();

    let config = GenConfig::new(
        [
            (p_graham, academics),
            (anon, person),
            (harvard, univ),
            (cornell, univ),
            (berkeley, univ),
            (ivy, org),
            (ma, eastern),
            (ny, eastern),
            (ca, western),
        ],
        &ontology,
    )
    .unwrap();

    PaperWorld {
        labels,
        graph,
        ontology,
        config,
    }
}

#[test]
fn hundred_persons_collapse_to_one_supernode() {
    let w = build_world();
    let gen = w.graph.relabel(&w.config.label_map(w.labels.len()));
    let part = maximal_bisimulation(&gen, BisimDirection::Forward);
    let summary = summarize(&gen, &part);
    // The anon persons (vertices 8..108) are all in one block.
    let class = summary.supernode_of(VId(8));
    assert_eq!(summary.members(class).len(), 100);
    // Far fewer supernodes than vertices.
    assert!(summary.graph.num_vertices() < 12);
}

#[test]
fn paper_example_index_passes_verification() {
    use big_index_repro::verify::{Invariant, Status};
    let w = build_world();
    let index = BiGIndex::build_with_configs(
        w.graph.clone(),
        w.ontology,
        vec![w.config],
        BisimDirection::Forward,
    );
    let report = index.verify();
    assert!(report.is_clean(), "{report}");
    // The paper's running example is built with the maximal
    // summarizer, so even partition stability must hold (not Skipped).
    let stable = report.check(Invariant::PartitionStable).unwrap();
    assert_eq!(stable.status, Status::Pass, "{report}");
}

#[test]
fn example_i1_query_answered_through_summary() {
    let w = build_world();
    let ma = w.labels.get("Massachusetts").unwrap();
    let ivy = w.labels.get("IvyLeague").unwrap();
    let ca = w.labels.get("California").unwrap();
    let index = BiGIndex::build_with_configs(
        w.graph.clone(),
        w.ontology,
        vec![w.config],
        BisimDirection::Forward,
    );
    let boosted = Boosted::new(&index, Banks, EvalOptions::default());
    let q1 = KeywordQuery::new(vec![ma, ivy, ca], 3);

    // Layer 1 must find the P. Graham-rooted tree.
    let r = boosted.query_at_layer(&q1, 10, 1);
    assert_eq!(r.answers.len(), 1);
    let a = &r.answers[0];
    assert_eq!(a.root, Some(VId(0)));
    assert!(a.validate(&w.graph, &q1.keywords));

    // And it equals the baseline evaluation.
    let (baseline, _) = boosted.baseline(&q1, 10);
    assert_eq!(baseline.len(), 1);
    assert_eq!(baseline[0].root, a.root);
    assert_eq!(baseline[0].score, a.score);
}

#[test]
fn example_q3_generalized_keywords_have_answers() {
    // Q3-style query with generalized keywords (Example 1.1's third
    // query): they match nothing on the data graph, whose labels are
    // specific, but do match on the summary.
    let w = build_world();
    let academics = w.labels.get("Academics").unwrap();
    let univ = w.labels.get("Univ.").unwrap();
    let org = w.labels.get("Organization").unwrap();
    let index = BiGIndex::build_with_configs(
        w.graph.clone(),
        w.ontology,
        vec![w.config],
        BisimDirection::Forward,
    );
    let q3 = KeywordQuery::new(vec![academics, univ, org], 3);
    // On the data graph the answer set is empty (labels are specific).
    let baseline = {
        use big_index_repro::search::KeywordSearch;
        Banks.search_fresh(&w.graph, &q3, 10)
    };
    assert!(baseline.is_empty());
    // On the summary graph, the generalized subtree exists.
    use big_index_repro::search::KeywordSearch;
    let summary_answers = Banks.search_fresh(index.graph_at(1), &q3, 10);
    assert!(!summary_answers.is_empty());
}

#[test]
fn both_realizers_reproduce_the_same_answer() {
    let w = build_world();
    let ma = w.labels.get("Massachusetts").unwrap();
    let ivy = w.labels.get("IvyLeague").unwrap();
    let index = BiGIndex::build_with_configs(
        w.graph.clone(),
        w.ontology,
        vec![w.config],
        BisimDirection::Forward,
    );
    let q = KeywordQuery::new(vec![ma, ivy], 3);
    for realizer in [RealizerKind::VertexAtATime, RealizerKind::PathBased] {
        let opts = EvalOptions {
            realizer,
            ..EvalOptions::default()
        };
        let boosted = Boosted::new(&index, Banks, opts);
        let r = boosted.query_at_layer(&q, 100, 1);
        let (baseline, _) = boosted.baseline(&q, 100);
        let key = |a: &big_index_repro::search::AnswerGraph| (a.root, a.score);
        let mut got: Vec<_> = r.answers.iter().map(key).collect();
        let mut want: Vec<_> = baseline.iter().map(key).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{realizer:?}");
    }
}
