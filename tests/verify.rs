//! The verification layer's own tests:
//!
//! - property tests: `check_index` is clean on indexes built from random
//!   graph/ontology pairs, under both the maximal and the k-bounded
//!   summarizer and all three bisimulation directions;
//! - corruption negatives: targeted damage to a healthy index — a broken
//!   `χ⁻¹` table, a non-ancestor configuration entry, a phantom summary
//!   edge, a stale support count — is *detected*, attributed to the
//!   right invariant, and reported with a concrete witness.
//!
//! Corruption is injected through wrapper views implementing
//! [`IndexView`] over a pristine `BiGIndex`, overriding exactly one
//! accessor each; the index itself is never mutated.

use big_index_repro::bisim::BisimDirection;
use big_index_repro::graph::{DiGraph, GraphBuilder, LabelId, Ontology, OntologyBuilder, VId};
use big_index_repro::index::{BiGIndex, GenConfig, Summarizer};
use big_index_repro::verify::{check_index, IndexView, Invariant, Report, Status, Witness};
use proptest::prelude::*;

/// Number of base labels; label `i` has supertype `NUM_LABELS + i/2`
/// (pairs of siblings), giving a 2-level ontology.
const NUM_LABELS: u32 = 6;

fn ontology() -> Ontology {
    let mut b = OntologyBuilder::new((NUM_LABELS + NUM_LABELS / 2) as usize);
    for i in 0..NUM_LABELS {
        b.add_subtype(LabelId(NUM_LABELS + i / 2), LabelId(i));
    }
    b.build().unwrap()
}

fn full_config(ont: &Ontology) -> GenConfig {
    GenConfig::new(
        (0..NUM_LABELS).map(|i| (LabelId(i), LabelId(NUM_LABELS + i / 2))),
        ont,
    )
    .unwrap()
}

prop_compose! {
    /// A random directed labeled graph of up to 60 vertices.
    fn arb_graph()(
        n in 2usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..150),
        labels in proptest::collection::vec(0u32..NUM_LABELS, 60),
    ) -> DiGraph {
        let mut b = GraphBuilder::new();
        for &l in labels.iter().take(n) {
            b.add_vertex(LabelId(l));
        }
        for (u, v) in edges {
            if u < n && v < n {
                b.add_edge(VId(u as u32), VId(v as u32));
            }
        }
        b.build()
    }
}

fn assert_clean(report: &Report) {
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.total_violations(), 0, "{report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maximal_indexes_verify_clean(g in arb_graph()) {
        let ont = ontology();
        for dir in [BisimDirection::Forward, BisimDirection::Backward, BisimDirection::Both] {
            let index = BiGIndex::build_with_configs(
                g.clone(), ont.clone(), vec![full_config(&ont)], dir);
            let report = check_index(&index);
            assert_clean(&report);
            // Under the maximal summarizer nothing is skipped.
            for inv in Invariant::ALL {
                prop_assert_eq!(
                    report.check(inv).expect("invariant present").status,
                    Status::Pass
                );
            }
        }
    }

    #[test]
    fn kbounded_indexes_verify_clean(g in arb_graph(), k in 1u32..4) {
        let ont = ontology();
        let index = BiGIndex::build_with_configs_summarizer(
            g, ont.clone(), vec![full_config(&ont)],
            BisimDirection::Forward, Summarizer::KBounded(k));
        let report = check_index(&index);
        assert_clean(&report);
        // A k-bounded partition is only stable to depth k, so stability
        // is skipped rather than asserted.
        prop_assert_eq!(
            report.check(Invariant::PartitionStable).expect("invariant present").status,
            Status::Skipped
        );
    }
}

// ---------------------------------------------------------------------------
// Corruption injection
// ---------------------------------------------------------------------------

/// A small healthy index with one summary layer to damage: vertex count
/// chosen so the layer genuinely compresses.
fn healthy_index() -> BiGIndex {
    let mut gb = GraphBuilder::new();
    let hub = gb.add_vertex(LabelId(4));
    let hub2 = gb.add_vertex(LabelId(5));
    gb.add_edge(hub, hub2);
    for i in 0..20 {
        let v = gb.add_vertex(LabelId(i % 4));
        gb.add_edge(v, if i % 3 == 0 { hub } else { hub2 });
    }
    let g = gb.build();
    let ont = ontology();
    let index = BiGIndex::build_with_configs(
        g,
        ont.clone(),
        vec![full_config(&ont)],
        BisimDirection::Forward,
    );
    assert_clean(&check_index(&index));
    index
}

/// A corrupted lens over a healthy index: each `Option` field, when
/// set, overrides exactly one accessor; everything else delegates to
/// the pristine `BiGIndex`. Constructors below name the four corruption
/// classes.
#[derive(Default)]
struct Corrupt {
    /// L1 supernode whose `χ⁻¹` member list is reported empty
    /// (class 1: broken hash table).
    emptied_down: Option<VId>,
    /// Replacement for `C¹`'s mappings (class 2: non-ancestor entry).
    mappings: Option<Vec<(LabelId, LabelId)>>,
    /// Replacement for the top-layer graph (class 3: phantom edge).
    top_graph: Option<DiGraph>,
    /// L1 label whose stored support count is inflated by 7
    /// (class 4: stale support table).
    support_bump: Option<LabelId>,
}

struct CorruptView {
    inner: BiGIndex,
    corrupt: Corrupt,
}

impl IndexView for CorruptView {
    fn ontology(&self) -> &Ontology {
        self.inner.ontology()
    }

    fn num_layers(&self) -> usize {
        IndexView::num_layers(&self.inner)
    }

    fn graph_at(&self, m: usize) -> &DiGraph {
        match &self.corrupt.top_graph {
            Some(g) if m == IndexView::num_layers(&self.inner) => g,
            _ => IndexView::graph_at(&self.inner, m),
        }
    }

    fn config_mappings(&self, m: usize) -> &[(LabelId, LabelId)] {
        match &self.corrupt.mappings {
            Some(ms) if m == 1 => ms,
            _ => self.inner.config_mappings(m),
        }
    }

    fn label_map(&self, m: usize) -> &[LabelId] {
        IndexView::label_map(&self.inner, m)
    }

    fn up(&self, m: usize, v: VId) -> VId {
        IndexView::up(&self.inner, m, v)
    }

    fn down(&self, m: usize, s: VId) -> &[VId] {
        match self.corrupt.emptied_down {
            Some(victim) if m == 1 && s == victim => &[],
            _ => IndexView::down(&self.inner, m, s),
        }
    }

    fn direction(&self) -> BisimDirection {
        IndexView::direction(&self.inner)
    }

    fn is_maximal_summarizer(&self) -> bool {
        self.inner.is_maximal_summarizer()
    }

    fn support_count(&self, m: usize, l: LabelId) -> u32 {
        let real = self.inner.support_count(m, l);
        match self.corrupt.support_bump {
            Some(label) if m == 1 && l == label => real + 7,
            _ => real,
        }
    }
}

#[test]
fn broken_chi_inverse_table_is_detected_with_witness() {
    let inner = healthy_index();
    let victim = VId(0);
    let lost: Vec<VId> = IndexView::down(&inner, 1, victim).to_vec();
    assert!(!lost.is_empty());
    let report = check_index(&CorruptView {
        inner,
        corrupt: Corrupt {
            emptied_down: Some(victim),
            ..Corrupt::default()
        },
    });

    assert!(!report.is_clean());
    // Round-trip: every lost member fails `Bisim⁻¹(Bisim(v)) ∋ v`.
    let rt = report.check(Invariant::ChiRoundTrip).unwrap();
    assert_eq!(rt.status, Status::Fail);
    assert_eq!(rt.violations, lost.len());
    assert!(rt
        .witnesses
        .iter()
        .any(|w| matches!(w, Witness::Vertex { layer: 0, v } if lost.contains(v))));
    // Partitioning: the empty supernode and the unclaimed lower vertices.
    let mp = report.check(Invariant::MembersPartition).unwrap();
    assert_eq!(mp.status, Status::Fail);
    assert!(mp
        .witnesses
        .iter()
        .any(|w| matches!(w, Witness::Vertex { layer: 1, v } if *v == victim)));
}

#[test]
fn non_ancestor_config_entry_is_detected_with_witness() {
    let inner = healthy_index();
    let mut mappings: Vec<(LabelId, LabelId)> = inner.config_mappings(1).to_vec();
    // Label 1's supertype is NUM_LABELS (= 6); label 3's is 7. Retarget
    // label 1 at label 7 — a valid label, but not one of its ancestors.
    let bad = (LabelId(1), LabelId(NUM_LABELS + 1));
    assert!(!inner.ontology().is_supertype_of(bad.1, bad.0));
    let pos = mappings.iter().position(|&(f, _)| f == bad.0).unwrap();
    mappings[pos] = bad;
    let report = check_index(&CorruptView {
        inner,
        corrupt: Corrupt {
            mappings: Some(mappings),
            ..Corrupt::default()
        },
    });

    assert!(!report.is_clean());
    let ca = report.check(Invariant::ConfigAncestry).unwrap();
    assert_eq!(ca.status, Status::Fail);
    assert!(ca
        .witnesses
        .iter()
        .any(|w| matches!(w, Witness::Mapping { layer: 1, from, to } if (*from, *to) == bad)));
}

/// Rebuilds `g` with one extra edge `(u, v)`.
fn with_extra_edge(g: &DiGraph, u: VId, v: VId) -> DiGraph {
    let mut b = GraphBuilder::new();
    for w in g.vertices() {
        b.add_vertex(g.label(w));
    }
    for (s, t) in g.edges() {
        b.add_edge(s, t);
    }
    b.add_edge(u, v);
    b.build()
}

#[test]
fn phantom_summary_edge_is_detected_with_witness() {
    let inner = healthy_index();
    let h = inner.num_layers();
    let top = inner.graph_at(h);
    // Find a non-edge to forge.
    let n = top.num_vertices();
    let phantom = (0..n)
        .flat_map(|u| (0..n).map(move |v| (VId(u as u32), VId(v as u32))))
        .find(|&(u, v)| !top.has_edge(u, v))
        .expect("summary graph is not complete");
    let corrupted_top = with_extra_edge(top, phantom.0, phantom.1);
    let report = check_index(&CorruptView {
        inner,
        corrupt: Corrupt {
            top_graph: Some(corrupted_top),
            ..Corrupt::default()
        },
    });

    assert!(!report.is_clean());
    let pe = report.check(Invariant::NoPhantomEdges).unwrap();
    assert_eq!(pe.status, Status::Fail);
    assert_eq!(pe.violations, 1);
    assert!(pe
        .witnesses
        .iter()
        .any(|w| matches!(w, Witness::Edge { layer, u, v }
            if *layer == 1 && (*u, *v) == phantom)));
}

#[test]
fn stale_support_count_is_detected_with_witness() {
    let inner = healthy_index();
    let label = LabelId(NUM_LABELS); // a generalized label present at L1
    let report = check_index(&CorruptView {
        inner,
        corrupt: Corrupt {
            support_bump: Some(label),
            ..Corrupt::default()
        },
    });

    assert!(!report.is_clean());
    let sc = report.check(Invariant::SupportCounts).unwrap();
    assert_eq!(sc.status, Status::Fail);
    assert!(sc.witnesses.iter().any(|w| matches!(
        w,
        Witness::Support { layer: 1, label: l, stored, actual }
            if *l == label && *stored == *actual + 7
    )));
}

/// Failures are attributed: each corruption trips its own invariant and
/// leaves unrelated structural checks untouched.
#[test]
fn corruption_reports_are_attributed_not_global() {
    let inner = healthy_index();
    let mut mappings: Vec<(LabelId, LabelId)> = inner.config_mappings(1).to_vec();
    let pos = mappings.iter().position(|&(f, _)| f == LabelId(1)).unwrap();
    mappings[pos] = (LabelId(1), LabelId(NUM_LABELS + 1));
    let report = check_index(&CorruptView {
        inner,
        corrupt: Corrupt {
            mappings: Some(mappings),
            ..Corrupt::default()
        },
    });
    // The graphs and χ tables are untouched, so the structural
    // invariants still pass even though the config lies.
    for inv in [
        Invariant::PathPreserving,
        Invariant::NoPhantomEdges,
        Invariant::ChiRoundTrip,
        Invariant::MembersPartition,
        Invariant::SupportCounts,
    ] {
        assert_eq!(report.check(inv).unwrap().status, Status::Pass, "{report}");
    }
}
