//! Cross-algorithm equivalence on generated datasets: BANKS, BLINKS,
//! and bidirectional expansion all implement the distinct-root
//! semantics, so their full answer sets must agree — and r-clique's
//! answers must satisfy its own distance semantics — on realistic
//! knowledge-graph inputs (not just the small random graphs of the
//! per-crate unit tests).

use big_index_repro::datasets::{benchmark_queries, DatasetSpec};
use big_index_repro::search::blinks::{Blinks, BlinksParams};
use big_index_repro::search::rclique::NeighborIndex;
use big_index_repro::search::{AnswerGraph, Banks, Bidirectional, KeywordSearch, RClique};

fn root_scores(answers: &[AnswerGraph]) -> Vec<(Option<bgi_graph::VId>, u64)> {
    let mut v: Vec<_> = answers.iter().map(|a| (a.root, a.score)).collect();
    v.sort_unstable();
    v
}

#[test]
fn banks_blinks_bidirectional_agree_on_yago_like() {
    let ds = DatasetSpec::yago_like(4000).generate();
    let queries = benchmark_queries(&ds, 4, 40, 3);
    assert!(queries.len() >= 4);
    let blinks = Blinks::new(BlinksParams {
        block_size: 200,
        prune_dist: 4,
    });
    let blinks_index = blinks.build_index(&ds.graph);
    let banks_index = Banks.build_index(&ds.graph);
    for q in queries.iter().take(5) {
        let query = q.to_query();
        let a = Banks.search(&ds.graph, &banks_index, &query, 100_000);
        let b = blinks.search(&ds.graph, &blinks_index, &query, 100_000);
        let c = Bidirectional::default().search(&ds.graph, &banks_index, &query, 100_000);
        assert_eq!(
            root_scores(&a),
            root_scores(&b),
            "{}: banks vs blinks",
            q.id
        );
        assert_eq!(root_scores(&a), root_scores(&c), "{}: banks vs bidir", q.id);
    }
}

#[test]
fn blinks_top_k_prefix_matches_banks_ranking() {
    let ds = DatasetSpec::imdb_like(3000).generate();
    let queries = benchmark_queries(&ds, 4, 30, 11);
    let blinks = Blinks::new(BlinksParams {
        block_size: 500,
        prune_dist: 4,
    });
    let blinks_index = blinks.build_index(&ds.graph);
    for q in queries.iter().take(4) {
        let query = q.to_query();
        let top = blinks.search(&ds.graph, &blinks_index, &query, 5);
        let all = Banks.search_fresh(&ds.graph, &query, 100_000);
        // The top-5 scores must equal the best 5 scores overall (root
        // sets may differ on ties).
        let top_scores: Vec<u64> = top.iter().map(|a| a.score).collect();
        let best_scores: Vec<u64> = all.iter().take(top.len()).map(|a| a.score).collect();
        assert_eq!(top_scores, best_scores, "{}", q.id);
    }
}

#[test]
fn rclique_answers_satisfy_distance_semantics_on_dataset() {
    let ds = DatasetSpec::yago_like(2000).generate();
    let queries = benchmark_queries(&ds, 3, 20, 17);
    let rc = RClique {
        radius: 3,
        max_index_bytes: None,
    };
    let index = rc.build_index(&ds.graph);
    let ni = NeighborIndex::build(&ds.graph, 3);
    for q in queries.iter().take(4) {
        let query = q.to_query();
        let answers = rc.search(&ds.graph, &index, &query, 10);
        for a in &answers {
            assert!(a.validate(&ds.graph, &query.keywords), "{}", q.id);
            let picked: Vec<_> = a.keyword_matches.iter().map(|m| m[0]).collect();
            for i in 0..picked.len() {
                for j in i + 1..picked.len() {
                    let d = ni.distance(picked[i], picked[j]);
                    assert!(d.is_some() && d.unwrap() <= 3, "{}: pair beyond r", q.id);
                }
            }
        }
        // Weights are non-decreasing in rank order.
        assert!(answers.windows(2).all(|w| w[0].score <= w[1].score));
    }
}

#[test]
fn search_is_deterministic_across_runs() {
    let ds = DatasetSpec::dbpedia_like(2500).generate();
    let queries = benchmark_queries(&ds, 4, 25, 23);
    let blinks = Blinks::new(BlinksParams {
        block_size: 300,
        prune_dist: 4,
    });
    let index = blinks.build_index(&ds.graph);
    for q in queries.iter().take(3) {
        let query = q.to_query();
        let a = blinks.search(&ds.graph, &index, &query, 20);
        let b = blinks.search(&ds.graph, &index, &query, 20);
        assert_eq!(root_scores(&a), root_scores(&b));
    }
}
