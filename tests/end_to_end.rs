//! End-to-end correctness of `eval_Ont` (Def. 2.3 / Thm. 4.2) on
//! generated knowledge graphs for all three plugged-in semantics.

use big_index_repro::datasets::{benchmark_queries, DatasetSpec};
use big_index_repro::index::{boost_dkws, BiGIndex, Boosted, EvalOptions, GenConfig};
use big_index_repro::search::blinks::{Blinks, BlinksParams};
use big_index_repro::search::{AnswerGraph, Banks, KeywordQuery, RClique};

fn default_index(ds: &big_index_repro::datasets::Dataset, max_layers: usize) -> BiGIndex {
    use big_index_repro::bisim::BisimDirection;
    let mut configs: Vec<GenConfig> = Vec::new();
    let mut current = ds.graph.clone();
    for _ in 0..max_layers {
        let counts = current.label_counts();
        let mappings: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .filter_map(|(i, _)| {
                let l = big_index_repro::graph::LabelId(i as u32);
                ds.ontology.direct_supertypes(l).first().map(|&s| (l, s))
            })
            .collect();
        let config = GenConfig::new(mappings, &ds.ontology).unwrap();
        if config.is_empty() {
            break;
        }
        let probe = BiGIndex::build_with_configs(
            current.clone(),
            ds.ontology.clone(),
            vec![config.clone()],
            BisimDirection::Forward,
        );
        configs.push(config);
        current = probe.graph_at(1).clone();
    }
    let index = BiGIndex::build_with_configs(
        ds.graph.clone(),
        ds.ontology.clone(),
        configs,
        BisimDirection::Forward,
    );
    // Every index these tests query must first survive the full
    // invariant suite (Defs. 2.1/2.2 and the χ tables).
    let report = index.verify();
    assert!(report.is_clean(), "index failed verification:\n{report}");
    index
}

#[test]
fn built_index_passes_full_verification_with_witness_free_report() {
    use big_index_repro::verify::{Invariant, Status};
    let ds = DatasetSpec::dbpedia_like(2000).generate();
    let index = default_index(&ds, 4);
    let report = index.verify();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.total_violations(), 0);
    // Maximal summarizer: every invariant applies, nothing skipped.
    for inv in Invariant::ALL {
        let c = report.check(inv).expect("all invariants reported");
        assert_eq!(c.status, Status::Pass, "{inv:?} not Pass:\n{report}");
        assert!(c.witnesses.is_empty());
    }
}

#[test]
fn boosted_banks_is_sound_on_generated_kg() {
    let ds = DatasetSpec::yago_like(3000).generate();
    let index = default_index(&ds, 4);
    let boosted = Boosted::new(&index, Banks, EvalOptions::default());
    let queries = benchmark_queries(&ds, 4, 30, 5);
    assert!(!queries.is_empty());
    for q in &queries {
        let query = q.to_query();
        let r = boosted.query(&query, 20);
        for a in &r.answers {
            assert!(
                a.validate(&ds.graph, &query.keywords),
                "{}: invalid answer at layer {}",
                q.id,
                r.layer
            );
        }
    }
}

#[test]
fn boosted_blinks_is_sound_and_never_empty_when_baseline_has_answers() {
    let ds = DatasetSpec::imdb_like(3000).generate();
    let index = default_index(&ds, 4);
    let blinks = Blinks::new(BlinksParams {
        block_size: 100,
        prune_dist: 5,
    });
    let boosted = Boosted::new(&index, blinks, EvalOptions::default());
    let queries = benchmark_queries(&ds, 4, 30, 6);
    for q in &queries {
        let query = q.to_query();
        let (baseline, _) = boosted.baseline(&query, 10);
        let r = boosted.query(&query, 10);
        for a in &r.answers {
            assert!(a.validate(&ds.graph, &query.keywords), "{}", q.id);
        }
        // The layer-0 fallback guarantees we never lose everything.
        assert_eq!(
            r.answers.is_empty(),
            baseline.is_empty(),
            "{}: boosted {} answers, baseline {}",
            q.id,
            r.answers.len(),
            baseline.len()
        );
    }
}

#[test]
fn boosted_rclique_answers_are_valid_cliques() {
    let ds = DatasetSpec::yago_like(1500).generate();
    let index = default_index(&ds, 3);
    let rc = RClique {
        radius: 3,
        max_index_bytes: None,
    };
    let boosted = boost_dkws(&index, rc, EvalOptions::default());
    let queries = benchmark_queries(&ds, 3, 15, 7);
    for q in queries.iter().take(4) {
        let query = q.to_query();
        let r = boosted.query(&query, 5);
        for a in &r.answers {
            assert!(a.validate(&ds.graph, &query.keywords), "{}", q.id);
            // Keyword nodes pairwise within r (undirected), verified
            // against a freshly built neighbor index.
            let ni = big_index_repro::search::rclique::NeighborIndex::build(&ds.graph, 3);
            let picked: Vec<_> = a.keyword_matches.iter().map(|m| m[0]).collect();
            for i in 0..picked.len() {
                for j in i + 1..picked.len() {
                    assert!(
                        ni.distance(picked[i], picked[j]).is_some(),
                        "{}: pair out of range",
                        q.id
                    );
                }
            }
        }
    }
}

/// Exact equality under injective keyword generalization (the Thm. 4.2
/// regime; see the correctness contract in `big_index::eval`).
#[test]
fn exact_equality_with_injective_keywords() {
    use big_index_repro::bisim::BisimDirection;
    use big_index_repro::graph::{GraphBuilder, LabelId, OntologyBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Labels 0..4 are "keyword" labels each with its own supertype
    // (5..9): injective generalization. Label 10 is shared filler with
    // supertype 11.
    let mut ob = OntologyBuilder::new(12);
    for i in 0..5u32 {
        ob.add_subtype(LabelId(5 + i), LabelId(i));
    }
    ob.add_subtype(LabelId(11), LabelId(10));
    let ont = ob.build().unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..5 {
        let mut gb = GraphBuilder::new();
        let n = 150;
        for _ in 0..n {
            let l = if rng.gen_bool(0.4) {
                LabelId(rng.gen_range(0..5))
            } else {
                LabelId(10)
            };
            gb.add_vertex(l);
        }
        for _ in 0..n * 3 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            gb.add_edge(
                big_index_repro::graph::VId(u),
                big_index_repro::graph::VId(v),
            );
        }
        let g = gb.build();
        let config = GenConfig::new(
            (0..5u32)
                .map(|i| (LabelId(i), LabelId(5 + i)))
                .chain([(LabelId(10), LabelId(11))]),
            &ont,
        )
        .unwrap();
        let index = BiGIndex::build_with_configs(
            g.clone(),
            ont.clone(),
            vec![config],
            BisimDirection::Forward,
        );
        let boosted = Boosted::new(&index, Banks, EvalOptions::default());
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 3);
        let (baseline, _) = boosted.baseline(&q, 100_000);
        let r = boosted.query_at_layer(&q, 100_000, 1);
        let key = |a: &AnswerGraph| (a.root, a.score);
        let mut want: Vec<_> = baseline.iter().map(key).collect();
        let mut got: Vec<_> = r.answers.iter().map(key).collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got, "trial {trial}");
    }
}

/// Lemma 4.1: every baseline answer vertex has its χ-image in some
/// generalized answer (candidate completeness), regardless of
/// distortion.
#[test]
fn lemma_4_1_candidate_completeness() {
    use big_index_repro::search::KeywordSearch;
    let ds = DatasetSpec::yago_like(2000).generate();
    let index = default_index(&ds, 3);
    let queries = benchmark_queries(&ds, 3, 20, 9);
    for q in queries.iter().take(4) {
        let query = q.to_query();
        let baseline = Banks.search_fresh(&ds.graph, &query, 50);
        if baseline.is_empty() {
            continue;
        }
        let m = 1;
        let gq = big_index_repro::index::query_gen::generalize_query(&index, &query, m);
        if gq.len() != query.len() {
            continue;
        }
        let generalized = Banks.search_fresh(index.graph_at(m), &gq, usize::MAX / 2);
        // Every baseline root's image must appear as the root of some
        // generalized answer.
        for a in baseline.iter().take(10) {
            let root_img = index.chi(a.root.unwrap(), m);
            assert!(
                generalized.iter().any(|ga| ga.root == Some(root_img)),
                "{}: root image {:?} missing among {} generalized answers",
                q.id,
                root_img,
                generalized.len()
            );
        }
    }
}
