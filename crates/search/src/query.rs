//! Keyword queries.
//!
//! A query is the 2-ary tuple `(Q, d_max)` of Sec. 2: a set of keyword
//! labels plus a distance bound. A vertex `v` *contains* keyword `q`
//! when `L(v) = q`.

use bgi_graph::LabelId;

/// A keyword query: keywords (as interned labels) plus the hop bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    /// The query keywords `Q = {q_1, …, q_n}`.
    pub keywords: Vec<LabelId>,
    /// Distance bound `d_max` (BLINKS' pruning threshold `τ_prune`;
    /// r-clique's `r`).
    pub dmax: u32,
}

impl KeywordQuery {
    /// Creates a query; duplicate keywords are removed (a query is a set).
    pub fn new(keywords: impl Into<Vec<LabelId>>, dmax: u32) -> Self {
        let mut keywords = keywords.into();
        let mut seen = Vec::new();
        keywords.retain(|k| {
            if seen.contains(k) {
                false
            } else {
                seen.push(*k);
                true
            }
        });
        KeywordQuery { keywords, dmax }
    }

    /// Number of keywords `|Q|`.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True if the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Returns a copy with keywords rewritten through `map`
    /// (`map[old_label] = new_label`) — the query half of `Gen`.
    /// Note this can merge keywords; BiG-index's Def. 4.1 rejects layers
    /// where that happens.
    pub fn relabel(&self, map: &[LabelId]) -> KeywordQuery {
        KeywordQuery::new(
            self.keywords
                .iter()
                .map(|k| map.get(k.index()).copied().unwrap_or(*k))
                .collect::<Vec<_>>(),
            self.dmax,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_keywords() {
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2), LabelId(1)], 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.keywords, vec![LabelId(1), LabelId(2)]);
    }

    #[test]
    fn relabel_maps_and_may_merge() {
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 3);
        let map = vec![LabelId(5), LabelId(5)];
        let gq = q.relabel(&map);
        assert_eq!(gq.len(), 1); // merged
        assert_eq!(gq.keywords, vec![LabelId(5)]);
        assert_eq!(gq.dmax, 3);
    }

    #[test]
    fn relabel_out_of_range_is_identity() {
        let q = KeywordQuery::new(vec![LabelId(9)], 2);
        let gq = q.relabel(&[LabelId(1)]);
        assert_eq!(gq.keywords, vec![LabelId(9)]);
    }

    #[test]
    fn empty_query() {
        let q = KeywordQuery::new(Vec::<LabelId>::new(), 1);
        assert!(q.is_empty());
    }
}
