//! Structural graph diffs — the entry point for incremental index
//! patching.
//!
//! The live-update engine (bgi-ingest) re-materializes per-layer graphs
//! after every batch. Most batches touch a handful of vertices, yet the
//! per-layer search indexes used to be rebuilt from scratch whenever a
//! graph changed at all. [`diff_graphs`] computes the *structural delta*
//! between the old and new versions of one layer's graph — added
//! vertices and inserted/deleted edges — when that delta is small and
//! shape-compatible (vertex ids stable, labels unchanged, new vertices
//! appended at the end). Each index type then consumes the diff through
//! its own patch entry point:
//!
//! - [`crate::banks::BanksIndex::patched`] — inverted label lists;
//!   edge ops are free, vertex additions append in id order.
//! - [`crate::rclique::NeighborIndex::patched`] — per-vertex bounded
//!   balls; only vertices within `radius` of a changed edge are
//!   recomputed, the rest of the CSR is spliced over.
//! - [`crate::blinks::BlinksIndex::patched`] — keyword-distance lists;
//!   only vertices that can reach a changed edge within `τ_prune` are
//!   repaired, against boundary distances that provably did not change.
//!
//! Every patch entry point is *exactly equivalent* to a rebuild (for
//! BLINKS: a rebuild over the same partition) and returns `None` when
//! the affected region grows past a fraction of the graph, at which
//! point the caller falls back to the full rebuild it would have done
//! anyway.

use bgi_graph::{DiGraph, LabelId, VId};

/// A small structural delta between two versions of a graph.
///
/// Produced by [`diff_graphs`]; vertex ids are shared between the two
/// versions (the new graph extends the old one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDiff {
    /// Labels of the appended vertices: the new graph's vertices
    /// `old_n .. old_n + added_labels.len()`.
    pub added_labels: Vec<LabelId>,
    /// Edges present in the new graph but not the old.
    pub inserted: Vec<(VId, VId)>,
    /// Edges present in the old graph but not the new.
    pub deleted: Vec<(VId, VId)>,
}

impl GraphDiff {
    /// Total number of edge operations in the delta.
    pub fn edge_ops(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// True when the delta is empty (the graphs are identical).
    pub fn is_empty(&self) -> bool {
        self.added_labels.is_empty() && self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Computes the structural delta from `old` to `new`, or `None` when
/// the two are not patch-compatible: the vertex set shrank, an existing
/// vertex changed label, or the edge delta exceeds `max_edge_ops`
/// (beyond which a rebuild is the better deal anyway).
pub fn diff_graphs(old: &DiGraph, new: &DiGraph, max_edge_ops: usize) -> Option<GraphDiff> {
    let n_old = old.num_vertices();
    let n_new = new.num_vertices();
    if n_new < n_old || new.labels()[..n_old] != *old.labels() {
        return None;
    }
    let added_labels = new.labels()[n_old..].to_vec();
    let mut inserted = Vec::new();
    let mut deleted = Vec::new();
    for v in 0..n_new as u32 {
        let src = VId(v);
        let old_row: &[VId] = if (v as usize) < n_old {
            old.out_neighbors(src)
        } else {
            &[]
        };
        let new_row = new.out_neighbors(src);
        // Both rows are sorted (CSR invariant): two-pointer sweep.
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_row.len() || j < new_row.len() {
            match (old_row.get(i), new_row.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    deleted.push((src, a));
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    inserted.push((src, b));
                    j += 1;
                }
                (Some(&a), None) => {
                    deleted.push((src, a));
                    i += 1;
                }
                (None, Some(&b)) => {
                    inserted.push((src, b));
                    j += 1;
                }
                (None, None) => {}
            }
            if inserted.len() + deleted.len() > max_edge_ops {
                return None;
            }
        }
    }
    Some(GraphDiff {
        added_labels,
        inserted,
        deleted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::GraphBuilder;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> DiGraph {
        GraphBuilder::from_edges(
            labels.iter().map(|&l| LabelId(l)).collect(),
            edges.iter().map(|&(u, v)| (VId(u), VId(v))).collect(),
        )
    }

    #[test]
    fn identical_graphs_diff_empty() {
        let a = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let d = diff_graphs(&a, &a, 8).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn edge_and_vertex_delta() {
        let old = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let new = g(&[0, 1, 2, 3], &[(0, 1), (0, 2), (3, 0)]);
        let d = diff_graphs(&old, &new, 8).unwrap();
        assert_eq!(d.added_labels, vec![LabelId(3)]);
        assert_eq!(d.inserted, vec![(VId(0), VId(2)), (VId(3), VId(0))]);
        assert_eq!(d.deleted, vec![(VId(1), VId(2))]);
        assert_eq!(d.edge_ops(), 3);
    }

    #[test]
    fn label_change_or_shrink_is_incompatible() {
        let old = g(&[0, 1], &[(0, 1)]);
        assert!(diff_graphs(&old, &g(&[0, 2], &[(0, 1)]), 8).is_none());
        assert!(diff_graphs(&old, &g(&[0], &[]), 8).is_none());
    }

    #[test]
    fn cap_bounds_the_delta() {
        let old = g(&[0; 10], &[]);
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let new = g(&[0; 10], &edges);
        assert!(diff_graphs(&old, &new, 4).is_none());
        assert!(diff_graphs(&old, &new, 9).is_some());
    }
}
