//! Answer graphs: the uniform answer shape shared by all semantics.
//!
//! Every algorithm returns [`AnswerGraph`]s: a small connected subgraph
//! of the data graph together with, per query keyword, the vertices that
//! matched it. BiG-index's answer generation (Algos. 3 and 4) consumes
//! exactly this: the vertex set, the topological structure (edges), and
//! the keyword-match bookkeeping (`isKey` in Sec. 4.3.1).

use bgi_graph::{LabelId, VId};

/// A query answer: a connected subgraph plus keyword matches and a score
/// (lower is better — total distance under both Blinks' and r-clique's
/// scoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerGraph {
    /// All vertices of the answer subgraph, deduplicated, sorted.
    pub vertices: Vec<VId>,
    /// Edges of the answer subgraph (each present in the data graph).
    pub edges: Vec<(VId, VId)>,
    /// `keyword_matches[i]` = the answer vertices matching query keyword
    /// `q_i` (vertices whose label equals `q_i`).
    pub keyword_matches: Vec<Vec<VId>>,
    /// Distinguished root for rooted-tree semantics (BANKS/BLINKS).
    pub root: Option<VId>,
    /// Ranking score; lower is better.
    pub score: u64,
}

impl AnswerGraph {
    /// Builds an answer from raw parts, normalizing vertex/edge order.
    pub fn new(
        mut vertices: Vec<VId>,
        mut edges: Vec<(VId, VId)>,
        keyword_matches: Vec<Vec<VId>>,
        root: Option<VId>,
        score: u64,
    ) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        edges.sort_unstable();
        edges.dedup();
        AnswerGraph {
            vertices,
            edges,
            keyword_matches,
            root,
            score,
        }
    }

    /// True if `v` matched some query keyword (the paper's `isKey`).
    pub fn is_keyword_node(&self, v: VId) -> bool {
        self.keyword_matches.iter().any(|m| m.contains(&v))
    }

    /// The keyword indices `v` matched.
    pub fn matched_keywords(&self, v: VId) -> Vec<usize> {
        self.keyword_matches
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks structural sanity against a graph: every answer edge exists
    /// in `g`, every keyword match has the right label, the subgraph is
    /// weakly connected (when non-empty).
    pub fn validate(&self, g: &bgi_graph::DiGraph, keywords: &[LabelId]) -> bool {
        if self.keyword_matches.len() != keywords.len() {
            return false; // every query keyword needs a match list
        }
        if !self.edges.iter().all(|&(u, v)| g.has_edge(u, v)) {
            return false;
        }
        for (i, matches) in self.keyword_matches.iter().enumerate() {
            if matches.is_empty() {
                return false; // every keyword must be covered
            }
            if !matches.iter().all(|&v| g.label(v) == keywords[i]) {
                return false;
            }
            if !matches.iter().all(|v| self.vertices.contains(v)) {
                return false;
            }
        }
        self.is_weakly_connected()
    }

    /// True if the answer subgraph is weakly connected (single vertex
    /// answers count as connected; empty answers do not).
    pub fn is_weakly_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let idx = |v: VId| {
            self.vertices
                .binary_search(&v)
                .expect("edge endpoint not in vertex set")
        };
        let n = self.vertices.len();
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            let (ui, vi) = (idx(u), idx(v));
            adj[ui].push(vi);
            adj[vi].push(ui);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    count += 1;
                    stack.push(y);
                }
            }
        }
        count == n
    }

    /// A canonical identity for deduplication across algorithms:
    /// `(root, sorted keyword nodes)`.
    pub fn identity(&self) -> (Option<VId>, Vec<VId>) {
        let mut kw: Vec<VId> = self
            .keyword_matches
            .iter()
            .flat_map(|m| m.iter().copied())
            .collect();
        kw.sort_unstable();
        kw.dedup();
        (self.root, kw)
    }
}

/// Sorts answers by `(score, identity)` for a stable ranking, and
/// truncates to `k`.
pub fn rank_and_truncate(mut answers: Vec<AnswerGraph>, k: usize) -> Vec<AnswerGraph> {
    answers.sort_by(|a, b| {
        a.score
            .cmp(&b.score)
            .then_with(|| a.identity().cmp(&b.identity()))
    });
    answers.dedup_by(|a, b| a.identity() == b.identity());
    answers.truncate(k);
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    fn tiny() -> bgi_graph::DiGraph {
        let mut b = GraphBuilder::new();
        let r = b.add_vertex(LabelId(0));
        let x = b.add_vertex(LabelId(1));
        let y = b.add_vertex(LabelId(2));
        b.add_edge(r, x);
        b.add_edge(r, y);
        b.build()
    }

    fn tiny_answer() -> AnswerGraph {
        AnswerGraph::new(
            vec![VId(0), VId(1), VId(2)],
            vec![(VId(0), VId(1)), (VId(0), VId(2))],
            vec![vec![VId(1)], vec![VId(2)]],
            Some(VId(0)),
            2,
        )
    }

    #[test]
    fn validates_against_graph() {
        let g = tiny();
        let a = tiny_answer();
        assert!(a.validate(&g, &[LabelId(1), LabelId(2)]));
        // Wrong keyword label fails.
        assert!(!a.validate(&g, &[LabelId(2), LabelId(1)]));
    }

    #[test]
    fn keyword_node_tracking() {
        let a = tiny_answer();
        assert!(a.is_keyword_node(VId(1)));
        assert!(!a.is_keyword_node(VId(0)));
        assert_eq!(a.matched_keywords(VId(2)), vec![1]);
    }

    #[test]
    fn connectivity_detects_disconnection() {
        let a = AnswerGraph::new(
            vec![VId(0), VId(1)],
            vec![],
            vec![vec![VId(0)], vec![VId(1)]],
            None,
            0,
        );
        assert!(!a.is_weakly_connected());
        let single = AnswerGraph::new(vec![VId(0)], vec![], vec![vec![VId(0)]], None, 0);
        assert!(single.is_weakly_connected());
    }

    #[test]
    fn empty_answer_not_connected() {
        let a = AnswerGraph::new(vec![], vec![], vec![], None, 0);
        assert!(!a.is_weakly_connected());
    }

    #[test]
    fn uncovered_keyword_fails_validation() {
        let g = tiny();
        let a = AnswerGraph::new(
            vec![VId(0), VId(1)],
            vec![(VId(0), VId(1))],
            vec![vec![VId(1)], vec![]],
            Some(VId(0)),
            1,
        );
        assert!(!a.validate(&g, &[LabelId(1), LabelId(2)]));
    }

    #[test]
    fn rank_orders_by_score_then_identity() {
        let mk = |root: u32, score: u64| {
            AnswerGraph::new(
                vec![VId(root)],
                vec![],
                vec![vec![VId(root)]],
                Some(VId(root)),
                score,
            )
        };
        let ranked = rank_and_truncate(vec![mk(3, 5), mk(1, 2), mk(2, 2)], 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].root, Some(VId(1)));
        assert_eq!(ranked[1].root, Some(VId(2)));
    }

    #[test]
    fn rank_dedups_identical_answers() {
        let a = tiny_answer();
        let ranked = rank_and_truncate(vec![a.clone(), a], 10);
        assert_eq!(ranked.len(), 1);
    }
}
