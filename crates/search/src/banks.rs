//! `bkws`: backward keyword search (Sec. 5.1), after BANKS
//! (Bhalotia et al. [1]) with the distinct-root refinement of He et al.
//!
//! Answers are subtrees `T = {r, p_1, …, p_n}` where each leaf `p_i`
//! contains keyword `q_i` and `dist(r, p_i) ≤ d_max`, ranked by
//! `Σ_i dist(r, p_i)` (Formula 1 of Sec. 2). The search expands
//! *backward* (over in-edges) from each keyword's vertex set; a vertex
//! reached from every keyword set within the bound is an answer root.

use crate::answer::{rank_and_truncate, AnswerGraph};
use crate::cancel::{Budget, Interrupted};
use crate::outcome::{Completeness, SearchOutcome};
use crate::query::KeywordQuery;
use crate::semantics::KeywordSearch;
use bgi_graph::{DiGraph, LabelId, VId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// The backward keyword search algorithm (no parameters).
#[derive(Debug, Clone, Copy, Default)]
pub struct Banks;

/// BANKS' only index: the inverted label → vertices table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BanksIndex {
    label_vertices: Vec<Vec<VId>>,
}

impl BanksIndex {
    /// Vertices containing label `l` (`V_q` in the paper).
    pub fn vertices_with(&self, l: LabelId) -> &[VId] {
        self.label_vertices
            .get(l.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The full inverted table, indexed by label (persistence export).
    pub fn label_lists(&self) -> &[Vec<VId>] {
        &self.label_vertices
    }

    /// Reassembles an index from a previously built inverted table
    /// (the persistence path).
    pub fn from_parts(label_vertices: Vec<Vec<VId>>) -> Self {
        BanksIndex { label_vertices }
    }

    /// Incrementally patched copy of this index for the graph described
    /// by `diff` (see [`crate::patch`]). Edge changes do not touch the
    /// inverted table; appended vertices are pushed onto their label's
    /// list in id order, which is exactly the order a rebuild visits
    /// them — the result equals `build_index` on the new graph.
    pub fn patched(&self, new_g: &DiGraph, diff: &crate::patch::GraphDiff) -> BanksIndex {
        let mut label_vertices = self.label_vertices.clone();
        if label_vertices.len() < new_g.alphabet_size() {
            label_vertices.resize(new_g.alphabet_size(), Vec::new());
        }
        let n_old = new_g.num_vertices() - diff.added_labels.len();
        for (k, &l) in diff.added_labels.iter().enumerate() {
            label_vertices[l.index()].push(VId((n_old + k) as u32));
        }
        BanksIndex { label_vertices }
    }
}

/// Per-keyword backward BFS result: for each reached vertex, its
/// distance to the nearest keyword node and the out-neighbor on a
/// shortest path toward it (`None` at keyword nodes themselves).
pub(crate) type ReachTable = FxHashMap<VId, (u32, Option<VId>)>;

pub(crate) fn backward_reach(g: &DiGraph, sources: &[VId], dmax: u32) -> ReachTable {
    // The Err arm is unreachable: an unlimited budget never interrupts.
    backward_reach_budgeted(g, sources, dmax, &Budget::unlimited()).unwrap_or_default()
}

pub(crate) fn backward_reach_budgeted(
    g: &DiGraph,
    sources: &[VId],
    dmax: u32,
    budget: &Budget,
) -> Result<ReachTable, Interrupted> {
    let mut reach: ReachTable = FxHashMap::default();
    let mut queue = VecDeque::new();
    // budget-exempt: linear seeding of the BFS queue
    for &s in sources {
        if let std::collections::hash_map::Entry::Vacant(e) = reach.entry(s) {
            e.insert((0, None));
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        budget.check()?;
        let d = reach[&v].0;
        if d >= dmax {
            continue;
        }
        for &u in g.in_neighbors(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = reach.entry(u) {
                e.insert((d + 1, Some(v)));
                queue.push_back(u);
            }
        }
    }
    Ok(reach)
}

/// Reconstructs the root-to-keyword path from a `backward_reach` table.
pub(crate) fn path_to_keyword(reach: &ReachTable, root: VId) -> Vec<VId> {
    let mut path = vec![root];
    let mut cur = root;
    while let Some(&(_, Some(next))) = reach.get(&cur) {
        path.push(next);
        cur = next;
    }
    path
}

impl KeywordSearch for Banks {
    type Index = BanksIndex;

    fn name(&self) -> &'static str {
        "bkws"
    }

    fn build_index(&self, g: &DiGraph) -> BanksIndex {
        let mut label_vertices = vec![Vec::new(); g.alphabet_size()];
        for v in g.vertices() {
            label_vertices[g.label(v).index()].push(v);
        }
        BanksIndex { label_vertices }
    }

    fn search(
        &self,
        g: &DiGraph,
        index: &BanksIndex,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph> {
        // An unlimited budget never interrupts.
        self.search_impl(g, index, query, k, &Budget::unlimited())
            .map(|o| o.answers)
            .unwrap_or_default()
    }

    fn search_budgeted(
        &self,
        g: &DiGraph,
        index: &BanksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        // Strict contract: a truncated top-k is not a correct top-k.
        let outcome = self.search_impl(g, index, query, k, budget)?;
        if outcome.completeness.is_exact() {
            Ok(outcome.answers)
        } else {
            Err(Interrupted)
        }
    }

    fn search_anytime(
        &self,
        g: &DiGraph,
        index: &BanksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        self.search_impl(g, index, query, k, budget)
    }
}

impl Banks {
    /// The shared engine: best-effort under `budget`. Interruption
    /// during the per-keyword backward expansions means no candidate
    /// root is known yet, so nothing usable exists and the whole search
    /// fails with [`Interrupted`]; interruption during the root-scoring
    /// loop returns the roots scored so far marked
    /// [`Completeness::Truncated`] (candidate roots are not visited in
    /// weight order, so no optimality bound is available).
    fn search_impl(
        &self,
        g: &DiGraph,
        index: &BanksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        if query.is_empty() || k == 0 {
            return Ok(SearchOutcome::exact(Vec::new()));
        }
        // Backward expansion from every keyword's vertex set, smallest
        // set first (BANKS' strategy); if any keyword is absent there is
        // no answer at all.
        let mut keyword_sets: Vec<(usize, &[VId])> = query
            .keywords
            .iter()
            .enumerate()
            .map(|(i, &q)| (i, index.vertices_with(q)))
            .collect();
        if keyword_sets.iter().any(|(_, s)| s.is_empty()) {
            return Ok(SearchOutcome::exact(Vec::new()));
        }
        keyword_sets.sort_by_key(|(_, s)| s.len());

        let mut reaches: Vec<Option<ReachTable>> = vec![None; query.len()];
        // Candidate roots: intersection of reach sets; seed from the
        // smallest keyword set's reach and intersect incrementally.
        let mut candidates: Option<Vec<VId>> = None;
        for &(i, sources) in &keyword_sets {
            let reach = backward_reach_budgeted(g, sources, query.dmax, budget)?;
            candidates = Some(match candidates {
                None => reach.keys().copied().collect(),
                Some(prev) => prev.into_iter().filter(|v| reach.contains_key(v)).collect(),
            });
            reaches[i] = Some(reach);
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                return Ok(SearchOutcome::exact(Vec::new()));
            }
        }

        let mut answers = Vec::new();
        let mut truncated = false;
        for root in candidates.unwrap_or_default() {
            if budget.is_exhausted() {
                // Surface the roots already scored instead of
                // discarding them.
                truncated = true;
                break;
            }
            let mut vertices = Vec::new();
            let mut edges = Vec::new();
            let mut keyword_matches = vec![Vec::new(); query.len()];
            let mut score = 0u64;
            for (i, reach) in reaches.iter().enumerate() {
                let reach = reach.as_ref().unwrap();
                let (d, _) = reach[&root];
                score += d as u64;
                let path = path_to_keyword(reach, root);
                for w in path.windows(2) {
                    edges.push((w[0], w[1]));
                }
                keyword_matches[i].push(*path.last().unwrap());
                vertices.extend(path);
            }
            answers.push(AnswerGraph::new(
                vertices,
                edges,
                keyword_matches,
                Some(root),
                score,
            ));
        }
        if truncated && answers.is_empty() {
            return Err(Interrupted);
        }
        Ok(SearchOutcome {
            answers: rank_and_truncate(answers, k),
            completeness: if truncated {
                Completeness::Truncated
            } else {
                Completeness::Exact
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    /// Fig. 1 in miniature:
    ///   root(0, "R") -> a(1, "A"), root -> b(2, "B"),
    ///   far(3, "R") -> c(4, "C") -> a.
    fn sample() -> DiGraph {
        let mut bld = GraphBuilder::new();
        let root = bld.add_vertex(LabelId(0)); // R
        let a = bld.add_vertex(LabelId(1)); // A
        let b = bld.add_vertex(LabelId(2)); // B
        let far = bld.add_vertex(LabelId(0)); // R
        let c = bld.add_vertex(LabelId(3)); // C
        bld.add_edge(root, a);
        bld.add_edge(root, b);
        bld.add_edge(far, c);
        bld.add_edge(c, a);
        bld.build()
    }

    #[test]
    fn finds_rooted_tree() {
        let g = sample();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 3);
        let answers = Banks.search_fresh(&g, &q, 10);
        assert_eq!(answers.len(), 1);
        let a = &answers[0];
        assert_eq!(a.root, Some(VId(0)));
        assert_eq!(a.score, 2); // dist 1 to each keyword
        assert!(a.validate(&g, &q.keywords));
    }

    #[test]
    fn respects_dmax() {
        let g = sample();
        // far reaches A only at distance 2 (far -> c -> a).
        let q = KeywordQuery::new(vec![LabelId(1)], 1);
        let answers = Banks.search_fresh(&g, &q, 10);
        let roots: Vec<_> = answers.iter().map(|a| a.root.unwrap()).collect();
        assert!(roots.contains(&VId(0)));
        assert!(!roots.contains(&VId(3)));

        let q2 = KeywordQuery::new(vec![LabelId(1)], 2);
        let answers2 = Banks.search_fresh(&g, &q2, 10);
        let roots2: Vec<_> = answers2.iter().map(|a| a.root.unwrap()).collect();
        assert!(roots2.contains(&VId(3)));
    }

    #[test]
    fn ranking_is_by_total_distance() {
        let g = sample();
        let q = KeywordQuery::new(vec![LabelId(1)], 3);
        let answers = Banks.search_fresh(&g, &q, 10);
        // Roots by score: a itself (0), root and c (1), far (2).
        assert_eq!(answers[0].root, Some(VId(1)));
        assert_eq!(answers[0].score, 0);
        let scores: Vec<u64> = answers.iter().map(|a| a.score).collect();
        let mut sorted = scores.clone();
        sorted.sort_unstable();
        assert_eq!(scores, sorted);
    }

    #[test]
    fn missing_keyword_yields_no_answers() {
        let g = sample();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(9)], 3);
        assert!(Banks.search_fresh(&g, &q, 10).is_empty());
    }

    #[test]
    fn k_truncation() {
        let g = sample();
        let q = KeywordQuery::new(vec![LabelId(1)], 3);
        let answers = Banks.search_fresh(&g, &q, 2);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn keyword_node_can_be_root() {
        let g = sample();
        let q = KeywordQuery::new(vec![LabelId(1)], 0);
        let answers = Banks.search_fresh(&g, &q, 10);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].root, Some(VId(1)));
        assert_eq!(answers[0].vertices, vec![VId(1)]);
    }

    #[test]
    fn answer_trees_are_paths_in_graph() {
        let g = bgi_graph::generate::uniform_random(150, 500, 5, 33);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1), LabelId(2)], 3);
        for a in Banks.search_fresh(&g, &q, 20) {
            assert!(a.validate(&g, &q.keywords));
            // Score equals the sum of shortest distances from root.
            let root = a.root.unwrap();
            let mut total = 0;
            for &kw in &q.keywords {
                let best = g
                    .vertices()
                    .filter(|&v| g.label(v) == kw)
                    .filter_map(|v| bgi_graph::traversal::shortest_distance(&g, root, v, q.dmax))
                    .min()
                    .expect("keyword reachable");
                total += best as u64;
            }
            assert_eq!(a.score, total);
        }
    }

    #[test]
    fn empty_query_or_zero_k() {
        let g = sample();
        assert!(Banks
            .search_fresh(&g, &KeywordQuery::new(Vec::<LabelId>::new(), 3), 5)
            .is_empty());
        let q = KeywordQuery::new(vec![LabelId(1)], 3);
        assert!(Banks.search_fresh(&g, &q, 0).is_empty());
    }
}
