//! `dkws`: distance-based keyword search after r-clique
//! (Kargar & An, VLDB'11).
//!
//! An *r-clique* is a set of keyword nodes — one per query keyword —
//! whose pairwise (undirected) shortest distances are all at most `r`,
//! weighted by the sum of pairwise distances. Computing the optimum is
//! NP-hard; Kargar & An give a greedy 2-approximation for the best
//! answer and enumerate top-k answers by search-space decomposition.
//!
//! Structures:
//! - [`neighbor_index::NeighborIndex`] — for each vertex, the vertices
//!   within `R` undirected hops with their distances (the paper's
//!   "neighbor list"; its `O(mn)` size is what blows up on IMDB in the
//!   original evaluation, and [`neighbor_index::NeighborIndex::estimated_bytes`]
//!   reproduces that accounting).
//! - `search_space` (crate-private) — the interruptible anytime search
//!   space: greedy
//!   seed answer, branch-and-bound improvement under a cooperative
//!   budget, and a sound optimality bound on interruption.
//! - [`search::RClique`] — greedy best answer + Lawler-style top-k
//!   decomposition on top of the engine.

pub mod neighbor_index;
pub mod search;
pub(crate) mod search_space;

pub use neighbor_index::{BuildError, NeighborIndex, NeighborIndexParams, BUILD_POLL_STRIDE};
pub use search::{RClique, RCliqueIndex};
