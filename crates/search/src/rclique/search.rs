//! r-clique search: greedy best answer + top-k search-space
//! decomposition (Sec. 5.2 of the BiG-index paper), implemented on the
//! interruptible anytime engine in `super::search_space`.
//!
//! The best answer of a search space `SP = (V_q1, …, V_qn)` is
//! approximated greedily: for each content node `u` of the most
//! selective keyword, take the nearest content node of every other
//! keyword (`u'_j = argmin dist(u, u_j)`), keep the candidate only if
//! all pairwise distances are ≤ r, and return the minimum-weight valid
//! candidate (weight = sum of pairwise distances). Top-k answers are
//! enumerated Lawler-style: when `(SP, a)` is popped, `SP` is split into
//! disjoint subspaces by fixing a prefix of `a` and excluding one node,
//! each subspace queued with its own best answer. Spaces whose greedy
//! scan comes up empty are binary-branched rather than dropped, so a
//! full run enumerates every feasible answer.
//!
//! Under a [`Budget`], [`RClique::search_anytime`] returns best-so-far
//! answers with a sound optimality bound instead of failing; see the
//! engine module for the search-space shape and the bound derivation.

use super::neighbor_index::{NeighborIndex, NeighborIndexParams};
use super::search_space::AnytimeSearch;
use crate::answer::{rank_and_truncate, AnswerGraph};
use crate::cancel::{Budget, Interrupted};
use crate::outcome::SearchOutcome;
use crate::query::KeywordQuery;
use crate::semantics::KeywordSearch;
use bgi_graph::{DiGraph, VId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// The r-clique keyword search algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RClique {
    /// Distance bound `r` used for the neighbor index (experiments: 4).
    pub radius: u32,
    /// Memory budget for the neighbor index, if any.
    pub max_index_bytes: Option<usize>,
}

impl Default for RClique {
    fn default() -> Self {
        RClique {
            radius: 4,
            max_index_bytes: None,
        }
    }
}

/// Index: the neighbor lists plus the inverted label table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RCliqueIndex {
    /// Bounded undirected distances.
    pub neighbor: NeighborIndex,
    label_vertices: Vec<Vec<VId>>,
}

impl RCliqueIndex {
    /// Reassembles an index from its parts (the persistence path).
    pub fn from_parts(neighbor: NeighborIndex, label_vertices: Vec<Vec<VId>>) -> Self {
        RCliqueIndex {
            neighbor,
            label_vertices,
        }
    }

    /// The inverted label table (persistence export).
    pub fn label_lists(&self) -> &[Vec<VId>] {
        &self.label_vertices
    }

    /// Incrementally patched copy of this index for the graph described
    /// by `diff` (see [`crate::patch`]): the neighbor CSR is patched
    /// locally via [`NeighborIndex::patched`], the inverted label table
    /// is extended exactly as [`crate::banks::BanksIndex::patched`]
    /// does. Equivalent to a full rebuild; `None` when the neighbor
    /// patch declines (affected region too large).
    pub fn patched(
        &self,
        old_g: &DiGraph,
        new_g: &DiGraph,
        diff: &crate::patch::GraphDiff,
    ) -> Option<RCliqueIndex> {
        let neighbor = self.neighbor.patched(old_g, new_g, diff)?;
        let mut label_vertices = self.label_vertices.clone();
        if label_vertices.len() < new_g.alphabet_size() {
            label_vertices.resize(new_g.alphabet_size(), Vec::new());
        }
        let n_old = new_g.num_vertices() - diff.added_labels.len();
        for (k, &l) in diff.added_labels.iter().enumerate() {
            label_vertices[l.index()].push(VId((n_old + k) as u32));
        }
        Some(RCliqueIndex {
            neighbor,
            label_vertices,
        })
    }
}

impl RClique {
    /// [`KeywordSearch::build_index`] with lazily materialized neighbor
    /// rows ([`NeighborIndex::build_lazy`]): the label table is built
    /// eagerly (it is `O(n)`), every ball defers to first read.
    /// Compares equal to the eager build. Falls back to the eager path
    /// when a memory budget is configured — an over-budget index must
    /// fail at construction, not at first read.
    pub fn build_index_lazy(&self, g: &DiGraph) -> RCliqueIndex {
        if self.max_index_bytes.is_some() {
            return self.build_index(g);
        }
        let mut label_vertices = vec![Vec::new(); g.alphabet_size()];
        for v in g.vertices() {
            label_vertices[g.label(v).index()].push(v);
        }
        RCliqueIndex {
            neighbor: NeighborIndex::build_lazy(g, self.radius),
            label_vertices,
        }
    }

    /// Builds the answer graph for a picked node set: keyword nodes plus
    /// undirected witness paths from the first node to every other.
    fn materialize(g: &DiGraph, r: u32, picked: &[VId], weight: u64) -> AnswerGraph {
        let hub = picked[0];
        // One undirected BFS from the hub with parent pointers.
        let mut parent: FxHashMap<VId, VId> = FxHashMap::default();
        let mut queue = VecDeque::new();
        let mut dist: FxHashMap<VId, u32> = FxHashMap::default();
        dist.insert(hub, 0);
        queue.push_back(hub);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d >= r {
                continue;
            }
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    parent.insert(w, u);
                    queue.push_back(w);
                }
            }
        }
        let mut vertices = vec![hub];
        let mut edges = Vec::new();
        for &t in &picked[1..] {
            let mut cur = t;
            vertices.push(cur);
            while cur != hub {
                let p = parent[&cur];
                // Orient the edge as it exists in the data graph.
                if g.has_edge(p, cur) {
                    edges.push((p, cur));
                } else {
                    edges.push((cur, p));
                }
                vertices.push(p);
                cur = p;
            }
        }
        let keyword_matches = picked.iter().map(|&v| vec![v]).collect();
        AnswerGraph::new(vertices, edges, keyword_matches, None, weight)
    }
}

impl KeywordSearch for RClique {
    type Index = RCliqueIndex;

    fn name(&self) -> &'static str {
        "dkws"
    }

    fn build_index(&self, g: &DiGraph) -> RCliqueIndex {
        let neighbor = NeighborIndex::try_build(
            g,
            &NeighborIndexParams {
                radius: self.radius,
                max_bytes: self.max_index_bytes,
            },
        )
        .expect("neighbor index exceeds the configured memory budget");
        let mut label_vertices = vec![Vec::new(); g.alphabet_size()];
        for v in g.vertices() {
            label_vertices[g.label(v).index()].push(v);
        }
        RCliqueIndex {
            neighbor,
            label_vertices,
        }
    }

    fn search(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph> {
        // An unlimited budget never interrupts.
        match self.search_anytime(g, index, query, k, &Budget::unlimited()) {
            Ok(outcome) => outcome.answers,
            Err(Interrupted) => Vec::new(),
        }
    }

    fn search_budgeted(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        // Strict contract: only a run that reached the enumeration's own
        // termination condition counts; best-effort partial results are
        // the `search_anytime` surface.
        let outcome = self.search_anytime(g, index, query, k, budget)?;
        if outcome.completeness.is_exact() {
            Ok(outcome.answers)
        } else {
            Err(Interrupted)
        }
    }

    fn search_anytime(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        if query.is_empty() || k == 0 {
            return Ok(SearchOutcome::exact(Vec::new()));
        }
        let r = query.dmax.min(index.neighbor.radius());
        // Per-query content node lists (the search space SP).
        let content: Vec<&[VId]> = query
            .keywords
            .iter()
            .map(|&q| {
                index
                    .label_vertices
                    .get(q.index())
                    .map_or(&[][..], Vec::as_slice)
            })
            .collect();
        if content.iter().any(|c| c.is_empty()) {
            return Ok(SearchOutcome::exact(Vec::new()));
        }
        let engine = AnytimeSearch {
            content,
            neighbor: &index.neighbor,
            r,
        };
        let run = engine.run(k, budget);
        if run.answers.is_empty() {
            return if run.completeness.is_exact() {
                Ok(SearchOutcome::exact(Vec::new()))
            } else {
                // Nothing usable was found before the budget ran out.
                Err(Interrupted)
            };
        }
        // Bounded wrap-up: rank the discovered node sets first so only
        // the k best are materialized (an interrupted run's frontier
        // sweep can return many more).
        let mut found = run.answers;
        found.sort();
        found.truncate(k);
        let answers: Vec<AnswerGraph> = found
            .iter()
            .map(|(weight, picked)| Self::materialize(g, r, picked, *weight))
            .collect();
        Ok(SearchOutcome {
            answers: rank_and_truncate(answers, k),
            completeness: run.completeness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Completeness;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::{GraphBuilder, LabelId};

    /// hub(0, H) -> a(1, A); hub -> b(2, B); far(3, A) isolated-ish:
    /// 4(C) -> 3.
    fn sample() -> DiGraph {
        let mut bld = GraphBuilder::new();
        let h = bld.add_vertex(LabelId(0));
        let a = bld.add_vertex(LabelId(1));
        let b = bld.add_vertex(LabelId(2));
        let fa = bld.add_vertex(LabelId(1));
        let c = bld.add_vertex(LabelId(3));
        bld.add_edge(h, a);
        bld.add_edge(h, b);
        bld.add_edge(c, fa);
        bld.build()
    }

    #[test]
    fn finds_min_weight_clique() {
        let g = sample();
        let rc = RClique {
            radius: 4,
            max_index_bytes: None,
        };
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        assert!(!answers.is_empty());
        // Best: a and b, undirected distance 2 via hub.
        assert_eq!(answers[0].score, 2);
        assert_eq!(answers[0].keyword_matches[0], vec![VId(1)]);
        assert_eq!(answers[0].keyword_matches[1], vec![VId(2)]);
        assert!(answers[0].is_weakly_connected());
    }

    #[test]
    fn respects_distance_bound() {
        let g = sample();
        let rc = RClique {
            radius: 1,
            max_index_bytes: None,
        };
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 1);
        // a and b are 2 apart: no clique at r = 1.
        assert!(rc.search_fresh(&g, &q, 10).is_empty());
    }

    #[test]
    fn top_k_weights_nondecreasing() {
        let g = uniform_random(150, 450, 4, 5);
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        assert!(answers.windows(2).all(|w| w[0].score <= w[1].score));
    }

    #[test]
    fn answers_are_distinct() {
        let g = uniform_random(150, 450, 4, 6);
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(2)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        let mut ids: Vec<_> = answers
            .iter()
            .map(crate::answer::AnswerGraph::identity)
            .collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn all_pairs_within_r() {
        let g = uniform_random(120, 360, 3, 7);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1), LabelId(2)], 4);
        for a in rc.search(&g, &idx, &q, 5) {
            let picked: Vec<VId> = a.keyword_matches.iter().map(|m| m[0]).collect();
            for i in 0..picked.len() {
                for j in i + 1..picked.len() {
                    let d = idx.neighbor.distance(picked[i], picked[j]);
                    assert!(d.is_some() && d.unwrap() <= 4);
                }
            }
            assert!(a.validate(&g, &q.keywords));
        }
    }

    #[test]
    fn missing_keyword_empty() {
        let g = sample();
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(9)], 4);
        assert!(rc.search_fresh(&g, &q, 5).is_empty());
    }

    #[test]
    fn second_best_found_by_decomposition() {
        let g = sample();
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(1)], 4);
        // Single keyword: both A-nodes are answers (weight 0 each).
        let answers = rc.search_fresh(&g, &q, 10);
        assert_eq!(answers.len(), 2);
        let mut nodes: Vec<VId> = answers.iter().map(|a| a.keyword_matches[0][0]).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![VId(1), VId(3)]);
    }

    #[test]
    fn zero_budget_still_returns_the_greedy_seed() {
        let g = uniform_random(150, 450, 4, 5);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        // The strict contract discards partial results...
        assert_eq!(
            rc.search_budgeted(&g, &idx, &q, 10, &Budget::with_check_limit(0)),
            Err(Interrupted)
        );
        // ...but the anytime surface returns the greedy seed (computed
        // under its own deterministic op slice) with a finite bound.
        let outcome = rc
            .search_anytime(&g, &idx, &q, 10, &Budget::with_check_limit(0))
            .expect("seed answer expected on a populated query");
        assert!(!outcome.answers.is_empty());
        match outcome.completeness {
            Completeness::Anytime { bound } => {
                // The seed's weight can exceed the true optimum by at
                // most the reported gap.
                let exact = rc.search(&g, &idx, &q, 10);
                assert!(outcome.answers[0].score <= exact[0].score + bound);
            }
            other => panic!("expected an anytime marker, got {other}"),
        }
    }

    #[test]
    fn unlimited_anytime_matches_plain_search_and_is_exact() {
        let g = uniform_random(150, 450, 4, 6);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(2)], 4);
        let plain = rc.search(&g, &idx, &q, 10);
        let outcome = rc
            .search_anytime(&g, &idx, &q, 10, &Budget::unlimited())
            .unwrap();
        assert!(outcome.completeness.is_exact());
        let scores: Vec<u64> = outcome.answers.iter().map(|a| a.score).collect();
        let plain_scores: Vec<u64> = plain.iter().map(|a| a.score).collect();
        assert_eq!(scores, plain_scores);
    }

    #[test]
    fn exhaustive_enumeration_is_complete() {
        // Run to completion with a huge k, the engine must enumerate
        // every feasible r-clique: cross-check against brute force over
        // the content-list product.
        let g = uniform_random(60, 150, 3, 11);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        let answers = rc.search(&g, &idx, &q, 100_000);
        let lists = idx.label_lists();
        let mut expect = 0usize;
        for &u in &lists[0] {
            for &v in &lists[1] {
                if idx.neighbor.distance(u, v).is_some_and(|d| d <= 4) {
                    expect += 1;
                }
            }
        }
        assert_eq!(answers.len(), expect);
    }
}
