//! r-clique search: greedy best answer + top-k search-space
//! decomposition (Sec. 5.2 of the BiG-index paper).
//!
//! The best answer of a search space `SP = (V_q1, …, V_qn)` is
//! approximated greedily: for each content node `u` of the most
//! selective keyword, take the nearest content node of every other
//! keyword (`u'_j = argmin dist(u, u_j)`), keep the candidate only if
//! all pairwise distances are ≤ r, and return the minimum-weight valid
//! candidate (weight = sum of pairwise distances). Top-k answers are
//! enumerated Lawler-style: when `(SP, a)` is popped, `SP` is split into
//! disjoint subspaces by fixing a prefix of `a` and excluding one node,
//! each subspace queued with its own best answer.

use super::neighbor_index::{NeighborIndex, NeighborIndexParams};
use crate::answer::{rank_and_truncate, AnswerGraph};
use crate::cancel::{Budget, Interrupted};
use crate::query::KeywordQuery;
use crate::semantics::KeywordSearch;
use bgi_graph::{DiGraph, VId};
use rustc_hash::FxHashMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The r-clique keyword search algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RClique {
    /// Distance bound `r` used for the neighbor index (experiments: 4).
    pub radius: u32,
    /// Memory budget for the neighbor index, if any.
    pub max_index_bytes: Option<usize>,
}

impl Default for RClique {
    fn default() -> Self {
        RClique {
            radius: 4,
            max_index_bytes: None,
        }
    }
}

/// Index: the neighbor lists plus the inverted label table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RCliqueIndex {
    /// Bounded undirected distances.
    pub neighbor: NeighborIndex,
    label_vertices: Vec<Vec<VId>>,
}

impl RCliqueIndex {
    /// Reassembles an index from its parts (the persistence path).
    pub fn from_parts(neighbor: NeighborIndex, label_vertices: Vec<Vec<VId>>) -> Self {
        RCliqueIndex {
            neighbor,
            label_vertices,
        }
    }

    /// The inverted label table (persistence export).
    pub fn label_lists(&self) -> &[Vec<VId>] {
        &self.label_vertices
    }
}

/// One slot of a search (sub)space.
#[derive(Debug, Clone)]
enum Slot {
    /// Fixed to a single content node (by Lawler decomposition).
    Fixed(VId),
    /// The keyword's full content-node list minus exclusions.
    Open { excluded: Vec<VId> },
}

/// Heap item: `(weight, answer nodes, space)`, min-ordered by weight.
struct SpaceItem {
    weight: u64,
    answer: Vec<VId>,
    space: Vec<Slot>,
}

impl PartialEq for SpaceItem {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.answer == other.answer
    }
}
impl Eq for SpaceItem {}
impl PartialOrd for SpaceItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SpaceItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .cmp(&other.weight)
            .then_with(|| self.answer.cmp(&other.answer))
    }
}

impl RClique {
    /// Builds the answer graph for a picked node set: keyword nodes plus
    /// undirected witness paths from the first node to every other.
    fn materialize(g: &DiGraph, r: u32, picked: &[VId], weight: u64) -> AnswerGraph {
        let hub = picked[0];
        // One undirected BFS from the hub with parent pointers.
        let mut parent: FxHashMap<VId, VId> = FxHashMap::default();
        let mut queue = VecDeque::new();
        let mut dist: FxHashMap<VId, u32> = FxHashMap::default();
        dist.insert(hub, 0);
        queue.push_back(hub);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d >= r {
                continue;
            }
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    parent.insert(w, u);
                    queue.push_back(w);
                }
            }
        }
        let mut vertices = vec![hub];
        let mut edges = Vec::new();
        for &t in &picked[1..] {
            let mut cur = t;
            vertices.push(cur);
            while cur != hub {
                let p = parent[&cur];
                // Orient the edge as it exists in the data graph.
                if g.has_edge(p, cur) {
                    edges.push((p, cur));
                } else {
                    edges.push((cur, p));
                }
                vertices.push(p);
                cur = p;
            }
        }
        let keyword_matches = picked.iter().map(|&v| vec![v]).collect();
        AnswerGraph::new(vertices, edges, keyword_matches, None, weight)
    }
}

impl KeywordSearch for RClique {
    type Index = RCliqueIndex;

    fn name(&self) -> &'static str {
        "dkws"
    }

    fn build_index(&self, g: &DiGraph) -> RCliqueIndex {
        let neighbor = NeighborIndex::try_build(
            g,
            &NeighborIndexParams {
                radius: self.radius,
                max_bytes: self.max_index_bytes,
            },
        )
        .expect("neighbor index exceeds the configured memory budget");
        let mut label_vertices = vec![Vec::new(); g.alphabet_size()];
        for v in g.vertices() {
            label_vertices[g.label(v).index()].push(v);
        }
        RCliqueIndex {
            neighbor,
            label_vertices,
        }
    }

    fn search(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph> {
        // An unlimited budget never interrupts.
        self.search_impl(g, index, query, k, &Budget::unlimited())
            .unwrap_or_default()
    }

    fn search_budgeted(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        self.search_impl(g, index, query, k, budget)
    }
}

impl RClique {
    fn search_impl(
        &self,
        g: &DiGraph,
        index: &RCliqueIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        if query.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let r = query.dmax.min(index.neighbor.radius());
        // Per-query content node lists (the search space SP).
        let content: Vec<&[VId]> = query
            .keywords
            .iter()
            .map(|&q| {
                index
                    .label_vertices
                    .get(q.index())
                    .map_or(&[][..], Vec::as_slice)
            })
            .collect();
        if content.iter().any(|c| c.is_empty()) {
            return Ok(Vec::new());
        }
        let n = query.len();

        // Local closure versions of best_answer using per-query content.
        let candidates = |space: &[Slot], i: usize| -> Vec<VId> {
            match &space[i] {
                Slot::Fixed(v) => vec![*v],
                Slot::Open { excluded } => content[i]
                    .iter()
                    .copied()
                    .filter(|v| !excluded.contains(v))
                    .collect(),
            }
        };
        let best_answer = |space: &[Slot]| -> Result<Option<(u64, Vec<VId>)>, Interrupted> {
            let cand_lists: Vec<Vec<VId>> = (0..n).map(|i| candidates(space, i)).collect();
            if cand_lists.iter().any(Vec::is_empty) {
                return Ok(None);
            }
            let pivot = (0..n).min_by_key(|&i| cand_lists[i].len()).unwrap();
            let mut best: Option<(u64, Vec<VId>)> = None;
            for &u in &cand_lists[pivot] {
                budget.check()?;
                let mut picked = vec![u; n];
                let mut feasible = true;
                for j in 0..n {
                    if j == pivot {
                        continue;
                    }
                    let mut best_j: Option<(u32, VId)> = None;
                    for &w in &cand_lists[j] {
                        if let Some(d) = index.neighbor.distance(u, w) {
                            if d <= r && best_j.is_none_or(|(bd, bw)| (d, w) < (bd, bw)) {
                                best_j = Some((d, w));
                            }
                        }
                    }
                    match best_j {
                        Some((_, w)) => picked[j] = w,
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                let mut weight = 0u64;
                let mut valid = true;
                'pairs: for a in 0..n {
                    for b in a + 1..n {
                        match index.neighbor.distance(picked[a], picked[b]) {
                            Some(d) if d <= r => weight += d as u64,
                            _ => {
                                valid = false;
                                break 'pairs;
                            }
                        }
                    }
                }
                if valid
                    && best
                        .as_ref()
                        .is_none_or(|(bw, ba)| (weight, &picked) < (*bw, ba))
                {
                    best = Some((weight, picked));
                }
            }
            Ok(best)
        };

        let root_space: Vec<Slot> = (0..n)
            .map(|_| Slot::Open {
                excluded: Vec::new(),
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<SpaceItem>> = BinaryHeap::new();
        if let Some((weight, answer)) = best_answer(&root_space)? {
            heap.push(Reverse(SpaceItem {
                weight,
                answer,
                space: root_space,
            }));
        }
        let mut results = Vec::new();
        while let Some(Reverse(item)) = heap.pop() {
            budget.check()?;
            results.push(Self::materialize(g, r, &item.answer, item.weight));
            if results.len() >= k {
                break;
            }
            // Lawler decomposition into disjoint subspaces.
            for i in 0..n {
                if matches!(item.space[i], Slot::Fixed(_)) {
                    continue;
                }
                let mut child: Vec<Slot> = Vec::with_capacity(n);
                for (j, slot) in item.space.iter().enumerate() {
                    if j < i {
                        child.push(match slot {
                            Slot::Fixed(v) => Slot::Fixed(*v),
                            Slot::Open { .. } => Slot::Fixed(item.answer[j]),
                        });
                    } else if j == i {
                        let mut excluded = match slot {
                            Slot::Open { excluded } => excluded.clone(),
                            Slot::Fixed(_) => unreachable!(),
                        };
                        excluded.push(item.answer[i]);
                        child.push(Slot::Open { excluded });
                    } else {
                        child.push(slot.clone());
                    }
                }
                if let Some((weight, answer)) = best_answer(&child)? {
                    heap.push(Reverse(SpaceItem {
                        weight,
                        answer,
                        space: child,
                    }));
                }
            }
        }
        // `best_answer` is a greedy approximation (exact r-clique is
        // NP-hard), so a child space can yield a lighter answer than an
        // already-popped parent; re-rank the emitted answers so the
        // returned list is non-decreasing in weight.
        Ok(rank_and_truncate(results, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::{GraphBuilder, LabelId};

    /// hub(0, H) -> a(1, A); hub -> b(2, B); far(3, A) isolated-ish:
    /// 4(C) -> 3.
    fn sample() -> DiGraph {
        let mut bld = GraphBuilder::new();
        let h = bld.add_vertex(LabelId(0));
        let a = bld.add_vertex(LabelId(1));
        let b = bld.add_vertex(LabelId(2));
        let fa = bld.add_vertex(LabelId(1));
        let c = bld.add_vertex(LabelId(3));
        bld.add_edge(h, a);
        bld.add_edge(h, b);
        bld.add_edge(c, fa);
        bld.build()
    }

    #[test]
    fn finds_min_weight_clique() {
        let g = sample();
        let rc = RClique {
            radius: 4,
            max_index_bytes: None,
        };
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        assert!(!answers.is_empty());
        // Best: a and b, undirected distance 2 via hub.
        assert_eq!(answers[0].score, 2);
        assert_eq!(answers[0].keyword_matches[0], vec![VId(1)]);
        assert_eq!(answers[0].keyword_matches[1], vec![VId(2)]);
        assert!(answers[0].is_weakly_connected());
    }

    #[test]
    fn respects_distance_bound() {
        let g = sample();
        let rc = RClique {
            radius: 1,
            max_index_bytes: None,
        };
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(2)], 1);
        // a and b are 2 apart: no clique at r = 1.
        assert!(rc.search_fresh(&g, &q, 10).is_empty());
    }

    #[test]
    fn top_k_weights_nondecreasing() {
        let g = uniform_random(150, 450, 4, 5);
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        assert!(answers.windows(2).all(|w| w[0].score <= w[1].score));
    }

    #[test]
    fn answers_are_distinct() {
        let g = uniform_random(150, 450, 4, 6);
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(2)], 4);
        let answers = rc.search_fresh(&g, &q, 10);
        let mut ids: Vec<_> = answers
            .iter()
            .map(crate::answer::AnswerGraph::identity)
            .collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn all_pairs_within_r() {
        let g = uniform_random(120, 360, 3, 7);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1), LabelId(2)], 4);
        for a in rc.search(&g, &idx, &q, 5) {
            let picked: Vec<VId> = a.keyword_matches.iter().map(|m| m[0]).collect();
            for i in 0..picked.len() {
                for j in i + 1..picked.len() {
                    let d = idx.neighbor.distance(picked[i], picked[j]);
                    assert!(d.is_some() && d.unwrap() <= 4);
                }
            }
            assert!(a.validate(&g, &q.keywords));
        }
    }

    #[test]
    fn missing_keyword_empty() {
        let g = sample();
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(1), LabelId(9)], 4);
        assert!(rc.search_fresh(&g, &q, 5).is_empty());
    }

    #[test]
    fn second_best_found_by_decomposition() {
        let g = sample();
        let rc = RClique::default();
        let q = KeywordQuery::new(vec![LabelId(1)], 4);
        // Single keyword: both A-nodes are answers (weight 0 each).
        let answers = rc.search_fresh(&g, &q, 10);
        assert_eq!(answers.len(), 2);
        let mut nodes: Vec<VId> = answers.iter().map(|a| a.keyword_matches[0][0]).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![VId(1), VId(3)]);
    }
}
