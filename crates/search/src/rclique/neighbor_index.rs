//! The r-clique neighbor index.
//!
//! For each vertex `v`, stores every vertex within `R` *undirected* hops
//! together with its distance, sorted by vertex id for `O(log)` lookup.
//! Kargar & An keep exactly this `O(m·n)`-sized structure; the BiG-index
//! paper reports it reaching an estimated 16 TB on IMDB. We reproduce the
//! accounting via [`NeighborIndex::estimated_bytes`] and let callers
//! enforce a budget with [`NeighborIndex::try_build`].

use crate::cancel::Budget;
use bgi_graph::{DiGraph, VId};
use rustc_hash::FxHashMap;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// How many construction ops (BFS discoveries or dense-scan slots)
/// separate two budget polls during [`NeighborIndex::try_build_budgeted`].
///
/// The stride bounds cancellation latency: once the budget expires, the
/// build notices within one stride of ops — the regression test pins
/// the observed op count to `(checks + 1) × BUILD_POLL_STRIDE`.
pub const BUILD_POLL_STRIDE: u64 = 1024;

/// Parameters for the neighbor index.
#[derive(Debug, Clone, Copy)]
pub struct NeighborIndexParams {
    /// Distance bound `R` (the paper's experiments use 4).
    pub radius: u32,
    /// Optional memory budget in bytes; `try_build` fails when the
    /// index would exceed it.
    pub max_bytes: Option<usize>,
}

impl Default for NeighborIndexParams {
    fn default() -> Self {
        NeighborIndexParams {
            radius: 4,
            max_bytes: None,
        }
    }
}

/// Per-vertex bounded undirected neighborhoods with distances.
///
/// The materialized rows live in an `Arc`-shared CSR; an incrementally
/// [`NeighborIndex::patched`] copy overlays it with a set of *dirty*
/// rows that are recomputed lazily on first access (see
/// [`PendingRows`]). Equality is semantic — two indexes are equal when
/// every row agrees, regardless of how much of either is still pending.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    radius: u32,
    // CSR layout: entries[offsets[v]..offsets[v+1]] = (neighbor, dist),
    // sorted by neighbor id. Shared so a patched copy costs O(dirty
    // set), not O(index).
    offsets: Arc<Vec<u64>>,
    entries: Arc<Vec<(VId, u16)>>,
    pending: Option<Box<PendingRows>>,
}

/// Dirty-row overlay of a patched index: rows whose balls may have
/// changed since the CSR was materialized, recomputed against `graph`
/// on first access and cached. A single edge flip can invalidate the
/// balls of half the vertices (radius-`R` balls overlap heavily), so an
/// eager patch would cost as much as a rebuild; deferring the recompute
/// makes updates O(dirty-set discovery) and bills the BFS to the
/// queries that actually read an invalidated row.
#[derive(Debug, Clone)]
struct PendingRows {
    /// The graph every row of this index describes.
    graph: DiGraph,
    /// Total rows, including vertices appended past the CSR.
    n: usize,
    /// Dirty rows: an unset slot is recomputed (and cached) on first
    /// read; rows absent from the map are served from the CSR.
    rows: FxHashMap<u32, BallRow>,
}

/// One dirty row: the vertex's recomputed ball, filled on first read.
type BallRow = OnceLock<Arc<[(VId, u16)]>>;

/// Borrowed-or-owned CSR export of [`NeighborIndex::csr_parts`].
pub type CsrParts<'a> = (Cow<'a, [u64]>, Cow<'a, [(VId, u16)]>);

impl PartialEq for NeighborIndex {
    fn eq(&self, other: &Self) -> bool {
        self.radius == other.radius
            && self.num_rows() == other.num_rows()
            && (0..self.num_rows() as u32)
                .all(|v| self.neighbors(VId(v)) == other.neighbors(VId(v)))
    }
}

impl Eq for NeighborIndex {}

/// Error returned when the index would exceed its memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexTooLarge {
    /// Estimated size of the full index in bytes.
    pub estimated_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

impl std::fmt::Display for IndexTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "neighbor index would need ~{} bytes, over the {} byte budget",
            self.estimated_bytes, self.budget_bytes
        )
    }
}

impl std::error::Error for IndexTooLarge {}

/// Error from [`NeighborIndex::try_build_budgeted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The estimated index size exceeds the configured memory budget.
    TooLarge(IndexTooLarge),
    /// The execution budget expired mid-build.
    Interrupted {
        /// Construction ops performed before the build noticed the
        /// expiry — at most one [`BUILD_POLL_STRIDE`] past the op at
        /// which the budget ran out.
        ops_done: u64,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::TooLarge(e) => e.fmt(f),
            BuildError::Interrupted { ops_done } => {
                write!(f, "neighbor index build interrupted after {ops_done} ops")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl NeighborIndex {
    /// Builds the index unconditionally.
    pub fn build(g: &DiGraph, radius: u32) -> Self {
        Self::try_build(
            g,
            &NeighborIndexParams {
                radius,
                max_bytes: None,
            },
        )
        .expect("no budget set")
    }

    /// Builds an index whose every row is pending: construction costs
    /// one map insert per vertex, and each ball is computed on first
    /// read (then cached), exactly as a [`NeighborIndex::patched`]
    /// dirty row is. Compares equal to [`NeighborIndex::build`] on the
    /// same graph. This is the write-path rebuild fallback — when a
    /// patch declines mid-update, an eager rebuild would stall the
    /// commit for the full `O(m·n)` ball construction; deferring it
    /// bills that cost to the queries that actually read the rows.
    pub fn build_lazy(g: &DiGraph, radius: u32) -> Self {
        let n = g.num_vertices();
        let rows = (0..n as u32).map(|v| (v, OnceLock::new())).collect();
        NeighborIndex {
            radius,
            offsets: Arc::new(vec![0]),
            entries: Arc::new(Vec::new()),
            pending: Some(Box::new(PendingRows {
                graph: g.clone(),
                n,
                rows,
            })),
        }
    }

    /// Builds the index, failing early if the estimated size exceeds
    /// `params.max_bytes`. The estimate extrapolates from a prefix of
    /// vertices, mirroring how the original evaluation estimated 16 TB
    /// for IMDB without materializing the index.
    pub fn try_build(g: &DiGraph, params: &NeighborIndexParams) -> Result<Self, IndexTooLarge> {
        match Self::try_build_budgeted(g, params, &Budget::unlimited()) {
            Ok(ix) => Ok(ix),
            Err(BuildError::TooLarge(e)) => Err(e),
            Err(BuildError::Interrupted { .. }) => {
                unreachable!("an unlimited budget never interrupts")
            }
        }
    }

    /// [`NeighborIndex::try_build`] under a cooperative execution
    /// [`Budget`], polled every [`BUILD_POLL_STRIDE`] construction ops
    /// so an index rebuild can be cancelled with bounded latency even
    /// inside the O(n)-per-vertex dense-ball scan.
    pub fn try_build_budgeted(
        g: &DiGraph,
        params: &NeighborIndexParams,
        budget: &Budget,
    ) -> Result<Self, BuildError> {
        let n = g.num_vertices();
        if let Some(max) = params.max_bytes {
            let estimated = Self::estimate_bytes(g, params.radius);
            if estimated > max {
                return Err(BuildError::TooLarge(IndexTooLarge {
                    estimated_bytes: estimated,
                    budget_bytes: max,
                }));
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut entries = Vec::new();
        let mut scratch = Scratch::new(n);
        // Construction ops performed and the op count of the next
        // budget poll; both the per-vertex BFS and the dense scan
        // advance them at stride granularity.
        let mut ops: u64 = 0;
        let mut next_poll: u64 = BUILD_POLL_STRIDE;
        for v in g.vertices() {
            let start = entries.len();
            if !scratch.undirected_ball_polled(
                g,
                v,
                params.radius,
                &mut entries,
                budget,
                &mut ops,
                &mut next_poll,
            ) {
                return Err(BuildError::Interrupted { ops_done: ops });
            }
            let ball = entries.len() - start;
            if ball * 8 >= n {
                // Dense ball: emit in id order by scanning the distance
                // array — O(n), beating the O(ball·log ball) sort that
                // dominates construction when radius covers the graph.
                // The scan polls every stride so cancellation latency
                // stays bounded even when one ball covers the graph.
                entries.truncate(start);
                let mut lo = 0usize;
                while lo < n {
                    let hi = n.min(lo + BUILD_POLL_STRIDE as usize);
                    ops += (hi - lo) as u64;
                    if ops >= next_poll {
                        next_poll = ops + BUILD_POLL_STRIDE;
                        if budget.is_exhausted() {
                            return Err(BuildError::Interrupted { ops_done: ops });
                        }
                    }
                    for u in lo..hi {
                        let d = scratch.dist[u];
                        if d != u32::MAX && d != 0 {
                            entries.push((VId(u as u32), d as u16));
                        }
                    }
                    lo = hi;
                }
            } else {
                entries[start..].sort_unstable_by_key(|&(u, _)| u);
            }
            offsets.push(entries.len() as u64);
        }
        Ok(NeighborIndex {
            radius: params.radius,
            offsets: Arc::new(offsets),
            entries: Arc::new(entries),
            pending: None,
        })
    }

    /// Estimates the full index size in bytes by sampling the first
    /// `min(n, 64)` vertices' neighborhood sizes.
    pub fn estimate_bytes(g: &DiGraph, radius: u32) -> usize {
        let n = g.num_vertices();
        if n == 0 {
            return 0;
        }
        let sample = n.min(64);
        let mut scratch = Scratch::new(n);
        let mut tmp = Vec::new();
        let mut total = 0usize;
        for v in 0..sample as u32 {
            tmp.clear();
            scratch.undirected_ball(g, VId(v), radius, &mut tmp);
            total += tmp.len();
        }
        let avg = total as f64 / sample as f64;
        (avg * n as f64) as usize * std::mem::size_of::<(VId, u16)>()
    }

    /// Incrementally patched copy of this index for the graph described
    /// by `diff` (see [`crate::patch`]).
    ///
    /// A vertex's ball can only change if a path of length `≤ radius`
    /// from it crosses a changed edge, which puts it within
    /// `radius` undirected hops of a changed-edge endpoint in the graph
    /// where that path exists. The affected set is therefore the union
    /// of the endpoints' radius-balls in the *old* and *new* graphs,
    /// plus every appended vertex. Those rows are *not* recomputed here:
    /// they are marked dirty in a [`PendingRows`] overlay sharing the
    /// CSR of `self`, and each is recomputed against `new_g` on first
    /// access. The result compares equal to a full rebuild on `new_g`
    /// and costs O(affected-set discovery) up front — an edge touching
    /// a hub can invalidate half the graph's balls, and eagerly
    /// recomputing them would cost as much as the rebuild this patch
    /// exists to avoid.
    ///
    /// Patches chain: rows already dirty in `self` stay dirty (their
    /// balls are identical in `self`'s graph and `new_g` unless the new
    /// diff touched them again, so a later recompute against `new_g` is
    /// exact), cached recomputes survive unless re-invalidated.
    ///
    /// Returns `None` only when `self` cannot describe `old_g` (row
    /// count mismatch) — the caller should rebuild.
    pub fn patched(
        &self,
        old_g: &DiGraph,
        new_g: &DiGraph,
        diff: &crate::patch::GraphDiff,
    ) -> Option<NeighborIndex> {
        let n_new = new_g.num_vertices();
        let n_old = n_new - diff.added_labels.len();
        if self.num_rows() != n_old {
            return None;
        }
        let r = self.radius;
        let mut scratch = Scratch::new(n_new);
        let mut ball: Vec<(VId, u16)> = Vec::new();
        let mut endpoints: Vec<VId> = Vec::new();
        for &(u, v) in diff.inserted.iter().chain(diff.deleted.iter()) {
            endpoints.push(u);
            endpoints.push(v);
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut rows = match &self.pending {
            Some(p) => p.rows.clone(),
            None => FxHashMap::default(),
        };
        // The union of the endpoints' radius-balls is exactly one
        // multi-source BFS per graph (a vertex is in some ball iff its
        // distance to the *nearest* endpoint is ≤ radius), so dirty-set
        // discovery costs two traversals regardless of how many edits a
        // group-commit batch coalesced.
        for g in [old_g, new_g] {
            let seeds: Vec<VId> = endpoints
                .iter()
                .copied()
                .filter(|e| e.index() < g.num_vertices())
                .collect();
            if seeds.is_empty() {
                continue;
            }
            ball.clear();
            scratch.undirected_ball_multi(g, &seeds, r, &mut ball);
            // `insert` also discards a cached recompute that this
            // diff just re-invalidated.
            for &e in &seeds {
                rows.insert(e.0, OnceLock::new());
            }
            for &(u, _) in &ball {
                rows.insert(u.0, OnceLock::new());
            }
        }
        for v in n_old..n_new {
            rows.insert(v as u32, OnceLock::new());
        }
        Some(NeighborIndex {
            radius: r,
            offsets: Arc::clone(&self.offsets),
            entries: Arc::clone(&self.entries),
            pending: Some(Box::new(PendingRows {
                graph: new_g.clone(),
                n: n_new,
                rows,
            })),
        })
    }

    /// Reassembles an index from its CSR arrays (the persistence path).
    /// Offsets must be non-decreasing and cover `entries`; decoders
    /// validate this before calling.
    pub fn from_parts(radius: u32, offsets: Vec<u64>, entries: Vec<(VId, u16)>) -> Self {
        NeighborIndex {
            radius,
            offsets: Arc::new(offsets),
            entries: Arc::new(entries),
            pending: None,
        }
    }

    /// The CSR arrays `(offsets, entries)` (persistence export;
    /// [`NeighborIndex::neighbors`] is the per-vertex lookup). A
    /// patched index forces every still-dirty row first, so the export
    /// is always fully materialized — borrowed when nothing is pending,
    /// owned otherwise.
    pub fn csr_parts(&self) -> CsrParts<'_> {
        if self.pending.is_none() {
            return (
                Cow::Borrowed(&self.offsets[..]),
                Cow::Borrowed(&self.entries[..]),
            );
        }
        let n = self.num_rows();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut entries: Vec<(VId, u16)> = Vec::new();
        for v in 0..n {
            entries.extend_from_slice(self.neighbors(VId(v as u32)));
            offsets.push(entries.len() as u64);
        }
        (Cow::Owned(offsets), Cow::Owned(entries))
    }

    /// Number of per-vertex rows (the vertex count of the graph the
    /// index describes, including rows still pending recompute).
    pub fn num_rows(&self) -> usize {
        match &self.pending {
            Some(p) => p.n,
            None => self.offsets.len() - 1,
        }
    }

    /// The distance bound the index was built with.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Undirected bounded distance between `u` and `v`, if `≤ radius`.
    pub fn distance(&self, u: VId, v: VId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let list = self.neighbors(u);
        list.binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| list[i].1 as u32)
    }

    /// All `(neighbor, distance)` pairs of `v`, sorted by neighbor id.
    /// A row invalidated by [`NeighborIndex::patched`] is recomputed
    /// against the patched graph on first access and cached; clean rows
    /// are served straight from the shared CSR.
    pub fn neighbors(&self, v: VId) -> &[(VId, u16)] {
        if let Some(p) = &self.pending {
            if let Some(slot) = p.rows.get(&v.0) {
                return slot.get_or_init(|| Self::compute_row(&p.graph, v, self.radius));
            }
        }
        &self.entries[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// One vertex's ball on `g`, sorted by neighbor id — the lazy-row
    /// recompute, identical to what a full build stores for `v`.
    fn compute_row(g: &DiGraph, v: VId, radius: u32) -> Arc<[(VId, u16)]> {
        let mut scratch = Scratch::new(g.num_vertices());
        let mut out: Vec<(VId, u16)> = Vec::new();
        scratch.undirected_ball(g, v, radius, &mut out);
        out.sort_unstable_by_key(|&(u, _)| u);
        out.into()
    }

    /// Actual size of the materialized index in bytes (pending lazy
    /// rows are accounted at their CSR footprint).
    pub fn estimated_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(VId, u16)>()
            + self.offsets.len() * std::mem::size_of::<u64>()
    }
}

/// Reusable BFS scratch over the undirected view of a graph.
struct Scratch {
    dist: Vec<u32>,
    touched: Vec<VId>,
    queue: VecDeque<VId>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            dist: vec![u32::MAX; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Appends `(u, dist)` for every `u ≠ v` within `r` undirected hops
    /// of `v` to `out`.
    fn undirected_ball(&mut self, g: &DiGraph, v: VId, r: u32, out: &mut Vec<(VId, u16)>) {
        // `next_poll = u64::MAX` disables polling entirely, so the
        // unbudgeted path pays nothing.
        let (mut ops, mut next_poll) = (0u64, u64::MAX);
        self.undirected_ball_polled(g, v, r, out, &Budget::unlimited(), &mut ops, &mut next_poll);
    }

    /// Appends `(u, dist-to-nearest-seed)` for every `u` not in `seeds`
    /// within `r` undirected hops of *any* seed to `out` — the union of
    /// the seeds' radius-`r` balls in one traversal.
    fn undirected_ball_multi(
        &mut self,
        g: &DiGraph,
        seeds: &[VId],
        r: u32,
        out: &mut Vec<(VId, u16)>,
    ) {
        for &t in &self.touched {
            self.dist[t.index()] = u32::MAX;
        }
        self.touched.clear();
        self.queue.clear();
        for &s in seeds {
            if self.dist[s.index()] == u32::MAX {
                self.dist[s.index()] = 0;
                self.touched.push(s);
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let d = self.dist[u.index()];
            if d >= r {
                continue;
            }
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if self.dist[w.index()] == u32::MAX {
                    self.dist[w.index()] = d + 1;
                    self.touched.push(w);
                    self.queue.push_back(w);
                    out.push((w, (d + 1) as u16));
                }
            }
        }
    }

    /// [`Scratch::undirected_ball`] polling `budget` at op-count stride
    /// boundaries (`ops` counts BFS pops; `next_poll` is the op count of
    /// the next poll). Returns `false` — with `out` in an unspecified
    /// partial state — once the budget expires.
    #[allow(clippy::too_many_arguments)]
    fn undirected_ball_polled(
        &mut self,
        g: &DiGraph,
        v: VId,
        r: u32,
        out: &mut Vec<(VId, u16)>,
        budget: &Budget,
        ops: &mut u64,
        next_poll: &mut u64,
    ) -> bool {
        // budget-exempt: scratch reset, bounded by the previous ball
        for &t in &self.touched {
            self.dist[t.index()] = u32::MAX;
        }
        self.touched.clear();
        self.queue.clear();
        self.dist[v.index()] = 0;
        self.touched.push(v);
        self.queue.push_back(v);
        while let Some(u) = self.queue.pop_front() {
            *ops += 1;
            if *ops >= *next_poll {
                *next_poll = *ops + BUILD_POLL_STRIDE;
                if budget.is_exhausted() {
                    return false;
                }
            }
            let d = self.dist[u.index()];
            if d >= r {
                continue;
            }
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if self.dist[w.index()] == u32::MAX {
                    self.dist[w.index()] = d + 1;
                    self.touched.push(w);
                    self.queue.push_back(w);
                    out.push((w, (d + 1) as u16));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    /// 0 -> 1 -> 2, 3 -> 2 (undirected dist(0,3) = 3).
    fn sample() -> DiGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(3), VId(2));
        b.build()
    }

    #[test]
    fn undirected_distances() {
        let g = sample();
        let idx = NeighborIndex::build(&g, 4);
        assert_eq!(idx.distance(VId(0), VId(1)), Some(1));
        assert_eq!(idx.distance(VId(1), VId(0)), Some(1)); // ignores direction
        assert_eq!(idx.distance(VId(0), VId(3)), Some(3));
        assert_eq!(idx.distance(VId(2), VId(2)), Some(0));
    }

    #[test]
    fn radius_bounds_distances() {
        let g = sample();
        let idx = NeighborIndex::build(&g, 2);
        assert_eq!(idx.distance(VId(0), VId(2)), Some(2));
        assert_eq!(idx.distance(VId(0), VId(3)), None);
    }

    #[test]
    fn neighbors_sorted() {
        let g = sample();
        let idx = NeighborIndex::build(&g, 4);
        for v in g.vertices() {
            let ns = idx.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn budget_enforced() {
        let g = bgi_graph::generate::uniform_random(200, 800, 3, 5);
        let err = NeighborIndex::try_build(
            &g,
            &NeighborIndexParams {
                radius: 4,
                max_bytes: Some(16),
            },
        )
        .unwrap_err();
        assert!(err.estimated_bytes > 16);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn estimate_close_to_actual_on_uniform_graph() {
        let g = bgi_graph::generate::uniform_random(300, 900, 3, 9);
        let est = NeighborIndex::estimate_bytes(&g, 2);
        let idx = NeighborIndex::build(&g, 2);
        let actual = idx.entries.len() * std::mem::size_of::<(VId, u16)>();
        // Sampling the first 64 vertices of a uniform graph should land
        // within 3x of the truth.
        assert!(
            est > actual / 3 && est < actual * 3,
            "est {est}, actual {actual}"
        );
    }

    #[test]
    fn budgeted_build_matches_unbudgeted() {
        let g = bgi_graph::generate::uniform_random(300, 900, 3, 13);
        let params = NeighborIndexParams {
            radius: 4,
            max_bytes: None,
        };
        let plain = NeighborIndex::try_build(&g, &params).unwrap();
        let budgeted =
            NeighborIndex::try_build_budgeted(&g, &params, &Budget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn cancellation_latency_is_bounded_by_the_poll_stride() {
        // A graph big and dense enough that radius 4 covers most of it,
        // forcing the dense-ball branch and far more construction ops
        // than a few poll strides.
        let g = bgi_graph::generate::uniform_random(2000, 8000, 3, 21);
        let params = NeighborIndexParams {
            radius: 4,
            max_bytes: None,
        };
        for checks in [0u64, 1, 3] {
            let err =
                NeighborIndex::try_build_budgeted(&g, &params, &Budget::with_check_limit(checks))
                    .unwrap_err();
            match err {
                BuildError::Interrupted { ops_done } => {
                    // Polls are at most 2×stride of ops apart (stride
                    // spacing plus one dense-scan chunk), so the build
                    // must notice an expired budget within that many
                    // ops of the failing check.
                    assert!(
                        ops_done <= (checks + 1) * 2 * BUILD_POLL_STRIDE,
                        "checks={checks}: noticed only after {ops_done} ops"
                    );
                }
                other => panic!("expected interruption, got {other:?}"),
            }
        }
        // Sanity: the same build runs to completion unbudgeted, i.e.
        // the op count above truly truncated it early.
        assert!(NeighborIndex::try_build(&g, &params).is_ok());
    }

    #[test]
    fn lazy_build_matches_eager() {
        let g = bgi_graph::generate::uniform_random(300, 900, 3, 17);
        let eager = NeighborIndex::build(&g, 3);
        let lazy = NeighborIndex::build_lazy(&g, 3);
        assert_eq!(lazy, eager);
        let (lo, le) = lazy.csr_parts();
        let (eo, ee) = eager.csr_parts();
        assert_eq!((&*lo, &*le), (&*eo, &*ee));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let idx = NeighborIndex::build(&g, 3);
        assert_eq!(idx.estimated_bytes(), std::mem::size_of::<u64>());
        assert_eq!(NeighborIndex::estimate_bytes(&g, 3), 0);
    }
}
