//! The interruptible r-clique answer search space: greedy seed +
//! branch-and-bound improvement under a cooperative [`Budget`].
//!
//! A search (sub)space assigns each query keyword a *slot*: either
//! fixed to one content node or open over the keyword's content list
//! minus exclusions (Lawler decomposition, Sec. 5.2 of the BiG-index
//! paper). The engine explores spaces best-first:
//!
//! 1. **Greedy seed.** The root space's greedy answer (Kargar & An's
//!    2-approximation) is computed under a small deterministic op
//!    slice ([`GREEDY_SEED_CHECKS`], via [`Budget::grace`]) that is
//!    independent of the wall-clock budget — even a query whose
//!    deadline already fired gets a best-effort seed answer.
//! 2. **Branch and bound.** Each popped space either *emits* its
//!    greedy answer and Lawler-splits into disjoint subspaces, or — if
//!    greedy found nothing but the space is not provably infeasible —
//!    *binary-branches* on one candidate (fix it vs. exclude it), so
//!    no answer is ever silently dropped: run to completion, the
//!    enumeration is exhaustive over feasible spaces.
//! 3. **Admissible bounds.** Every frontier space carries a lower
//!    bound on the weight of any answer it can still contain
//!    (fixed–fixed pairs exact, fixed–open pairs the minimum candidate
//!    distance, open–open pairs 0). On interruption the engine reports
//!    `best_so_far − min_frontier_bound` as a sound optimality gap and
//!    sweeps the frontier's already-computed greedy answers into the
//!    result set, so interrupted searches return everything discovered.
//!
//! Exploration is deterministic for a given budget-check sequence:
//! with [`Budget::with_check_limit`] budgets, a larger limit explores
//! a strict superset of a smaller one (the discovered-answer stream
//! has the prefix property), which is what makes anytime quality
//! monotone in budget — the property test pins this down.

use super::neighbor_index::NeighborIndex;
use crate::cancel::Budget;
use crate::outcome::Completeness;
use bgi_graph::VId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic op slice the greedy seed always receives, even when
/// the real budget is already exhausted (one check per pivot
/// candidate scanned). Keeps "seed first" a guarantee rather than a
/// race against the deadline.
pub(crate) const GREEDY_SEED_CHECKS: u64 = 1024;

/// One slot of a search (sub)space.
#[derive(Debug, Clone)]
enum Slot {
    /// Fixed to a single content node (by decomposition or branching).
    Fixed(VId),
    /// The keyword's full content-node list minus exclusions.
    Open { excluded: Vec<VId> },
}

/// One frontier entry: a space, its admissible lower bound, and its
/// (possibly partial) greedy answer. Min-ordered by `key` — the greedy
/// answer's weight when one exists, the lower bound otherwise — with a
/// FIFO sequence tiebreak so exploration order is deterministic.
struct Node {
    key: u64,
    seq: u64,
    lb: u64,
    greedy: Option<(u64, Vec<VId>)>,
    /// False when the greedy scan was cut off by the budget — the
    /// recorded answer (if any) is valid but may not be the space's
    /// best greedy answer.
    scan_complete: bool,
    slots: Vec<Slot>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// What one engine run discovered.
pub(crate) struct AnytimeRun {
    /// Discovered `(weight, picked-nodes)` answers, unranked and
    /// possibly more than `k` (the caller ranks and truncates).
    pub answers: Vec<(u64, Vec<VId>)>,
    /// Marker describing how much of the space the run covered.
    pub completeness: Completeness,
}

/// Result of one greedy scan over a space.
struct GreedyScan {
    best: Option<(u64, Vec<VId>)>,
    complete: bool,
}

/// The anytime r-clique search engine over one query's content lists.
pub(crate) struct AnytimeSearch<'a> {
    /// Per-keyword content-node lists (the root space `SP`).
    pub content: Vec<&'a [VId]>,
    /// Bounded undirected distances.
    pub neighbor: &'a NeighborIndex,
    /// Effective distance bound `r` for this query.
    pub r: u32,
}

impl AnytimeSearch<'_> {
    fn dist(&self, u: VId, v: VId) -> Option<u32> {
        self.neighbor.distance(u, v).filter(|&d| d <= self.r)
    }

    /// Per-slot candidate lists with infeasibility folded in: open
    /// slots drop excluded nodes and anything beyond `r` from a fixed
    /// slot; fixed slots must be pairwise within `r`. `None` means the
    /// space provably contains no answer.
    fn filtered_candidates(&self, slots: &[Slot]) -> Option<Vec<Vec<VId>>> {
        let fixed: Vec<VId> = slots
            .iter()
            .filter_map(|s| match s {
                Slot::Fixed(v) => Some(*v),
                Slot::Open { .. } => None,
            })
            .collect();
        let mut lists = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let list: Vec<VId> = match slot {
                Slot::Fixed(v) => {
                    if fixed.iter().any(|&u| u != *v && self.dist(u, *v).is_none()) {
                        return None;
                    }
                    vec![*v]
                }
                Slot::Open { excluded } => self.content[i]
                    .iter()
                    .copied()
                    .filter(|v| !excluded.contains(v))
                    .filter(|&v| fixed.iter().all(|&u| self.dist(u, v).is_some()))
                    .collect(),
            };
            if list.is_empty() {
                return None;
            }
            lists.push(list);
        }
        Some(lists)
    }

    /// Admissible lower bound on the weight of any answer the space can
    /// contain: fixed–fixed pairs contribute their exact distance,
    /// fixed–open pairs the minimum distance to any surviving
    /// candidate, open–open pairs 0 (distances are non-negative).
    fn lower_bound(&self, slots: &[Slot], cands: &[Vec<VId>]) -> u64 {
        let n = slots.len();
        let mut lb = 0u64;
        let open_min = |u: VId, list: &[VId]| -> u64 {
            list.iter()
                .filter_map(|&w| self.dist(u, w))
                .min()
                .unwrap_or(0) as u64
        };
        for i in 0..n {
            for j in i + 1..n {
                match (&slots[i], &slots[j]) {
                    (Slot::Fixed(u), Slot::Fixed(v)) => {
                        lb += self.dist(*u, *v).unwrap_or(0) as u64;
                    }
                    (Slot::Fixed(u), Slot::Open { .. }) => lb += open_min(*u, &cands[j]),
                    (Slot::Open { .. }, Slot::Fixed(v)) => lb += open_min(*v, &cands[i]),
                    (Slot::Open { .. }, Slot::Open { .. }) => {}
                }
            }
        }
        lb
    }

    /// Kargar & An's greedy best answer over filtered candidate lists:
    /// for each pivot candidate (pivot = most selective list), take the
    /// nearest candidate of every other keyword, keep the assignment
    /// only if all pairwise distances are within `r`, and track the
    /// minimum-weight valid assignment. Interruptible per pivot
    /// candidate; an interrupted scan returns its best-so-far (still a
    /// fully validated answer) with `complete = false`.
    fn greedy(&self, cands: &[Vec<VId>], budget: &Budget) -> GreedyScan {
        let n = cands.len();
        let Some(pivot) = (0..n).min_by_key(|&i| cands[i].len()) else {
            return GreedyScan {
                best: None,
                complete: true,
            };
        };
        let mut best: Option<(u64, Vec<VId>)> = None;
        for &u in &cands[pivot] {
            if budget.is_exhausted() {
                return GreedyScan {
                    best,
                    complete: false,
                };
            }
            let mut picked = vec![u; n];
            let mut feasible = true;
            for j in 0..n {
                if j == pivot {
                    continue;
                }
                let mut best_j: Option<(u32, VId)> = None;
                for &w in &cands[j] {
                    if let Some(d) = self.dist(u, w) {
                        if best_j.is_none_or(|(bd, bw)| (d, w) < (bd, bw)) {
                            best_j = Some((d, w));
                        }
                    }
                }
                match best_j {
                    Some((_, w)) => picked[j] = w,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let mut weight = 0u64;
            let mut valid = true;
            'pairs: for a in 0..n {
                for b in a + 1..n {
                    match self.dist(picked[a], picked[b]) {
                        Some(d) => weight += d as u64,
                        None => {
                            valid = false;
                            break 'pairs;
                        }
                    }
                }
            }
            if valid
                && best
                    .as_ref()
                    .is_none_or(|(bw, ba)| (weight, &picked) < (*bw, ba))
            {
                best = Some((weight, picked));
            }
        }
        GreedyScan {
            best,
            complete: true,
        }
    }

    /// Evaluates a space (feasibility, bound, greedy answer) and pushes
    /// it onto the frontier; provably infeasible spaces are dropped.
    fn push(
        &self,
        frontier: &mut BinaryHeap<Reverse<Node>>,
        seq: &mut u64,
        slots: Vec<Slot>,
        budget: &Budget,
    ) {
        let Some(cands) = self.filtered_candidates(&slots) else {
            return;
        };
        let lb = self.lower_bound(&slots, &cands);
        let scan = self.greedy(&cands, budget);
        let key = match &scan.best {
            Some((w, _)) => *w,
            None => lb,
        };
        frontier.push(Reverse(Node {
            key,
            seq: *seq,
            lb,
            greedy: scan.best,
            scan_complete: scan.complete,
            slots,
        }));
        *seq += 1;
    }

    /// Runs the anytime search: seed, then branch-and-bound until the
    /// space is exhausted, `k` answers were emitted, or the budget runs
    /// out — in which case every answer already discovered (emitted or
    /// sitting in the frontier) is returned with a sound optimality
    /// bound.
    pub fn run(&self, k: usize, budget: &Budget) -> AnytimeRun {
        let n = self.content.len();
        let mut frontier: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
        let mut seq = 0u64;
        let root: Vec<Slot> = (0..n)
            .map(|_| Slot::Open {
                excluded: Vec::new(),
            })
            .collect();
        // The greedy seed's deterministic op slice: shares the cancel
        // flag (shutdown still interrupts) but not the deadline.
        self.push(
            &mut frontier,
            &mut seq,
            root,
            &budget.grace(GREEDY_SEED_CHECKS),
        );

        let mut results: Vec<(u64, Vec<VId>)> = Vec::new();
        let interrupted = loop {
            if frontier.is_empty() || results.len() >= k {
                break false;
            }
            if budget.is_exhausted() {
                break true;
            }
            let Some(Reverse(mut node)) = frontier.pop() else {
                break false;
            };
            if !node.scan_complete {
                // The seed slice (or an earlier interrupted scan) cut
                // this space's greedy short but the budget is live
                // again here: rescan in full, keep the better answer,
                // and requeue — the next pop processes it.
                if let Some(cands) = self.filtered_candidates(&node.slots) {
                    let scan = self.greedy(&cands, budget);
                    node.greedy = match (scan.best, node.greedy) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    node.scan_complete = scan.complete;
                    node.key = match &node.greedy {
                        Some((w, _)) => *w,
                        None => node.lb,
                    };
                    frontier.push(Reverse(node));
                }
                continue;
            }
            match node.greedy {
                Some((weight, picked)) => {
                    // Emit, then Lawler-split into disjoint subspaces
                    // that together cover every other answer.
                    results.push((weight, picked.clone()));
                    for i in 0..n {
                        if matches!(node.slots[i], Slot::Fixed(_)) {
                            continue;
                        }
                        let mut child: Vec<Slot> = Vec::with_capacity(n);
                        for (j, slot) in node.slots.iter().enumerate() {
                            if j < i {
                                child.push(match slot {
                                    Slot::Fixed(v) => Slot::Fixed(*v),
                                    Slot::Open { .. } => Slot::Fixed(picked[j]),
                                });
                            } else if j == i {
                                let mut excluded = match slot {
                                    Slot::Open { excluded } => excluded.clone(),
                                    Slot::Fixed(_) => Vec::new(),
                                };
                                excluded.push(picked[i]);
                                child.push(Slot::Open { excluded });
                            } else {
                                child.push(slot.clone());
                            }
                        }
                        self.push(&mut frontier, &mut seq, child, budget);
                    }
                }
                None => {
                    // Greedy found nothing but the space is not provably
                    // empty: binary-branch on one candidate of the most
                    // selective open slot (fix it vs. exclude it). Both
                    // children strictly shrink, so branching terminates,
                    // and together they cover the whole space — no
                    // feasible answer is dropped.
                    let Some(cands) = self.filtered_candidates(&node.slots) else {
                        continue;
                    };
                    let Some(j) = (0..n)
                        .filter(|&i| matches!(node.slots[i], Slot::Open { .. }))
                        .min_by_key(|&i| cands[i].len())
                    else {
                        // A fully fixed feasible space always has a
                        // greedy answer; unreachable, but dropping it
                        // is harmless.
                        continue;
                    };
                    let w = cands[j][0];
                    let mut fixed = node.slots.clone();
                    fixed[j] = Slot::Fixed(w);
                    self.push(&mut frontier, &mut seq, fixed, budget);
                    let mut excluded_slots = node.slots;
                    if let Slot::Open { excluded } = &mut excluded_slots[j] {
                        excluded.push(w);
                    }
                    self.push(&mut frontier, &mut seq, excluded_slots, budget);
                }
            }
        };

        if !interrupted {
            return AnytimeRun {
                answers: results,
                completeness: Completeness::Exact,
            };
        }
        // Interrupted: sweep the frontier's already-computed greedy
        // answers (each fully validated, each from a space disjoint
        // from every emitted answer) and derive the optimality gap
        // from the open frontier's minimum admissible bound.
        let mut min_lb = u64::MAX;
        // Reads precomputed node state only; no new search work.
        // budget-exempt: bounded frontier sweep after exhaustion
        for Reverse(node) in frontier.drain() {
            min_lb = min_lb.min(node.lb);
            if let Some(found) = node.greedy {
                results.push(found);
            }
        }
        let best = results.iter().map(|&(w, _)| w).min();
        let completeness = match best {
            // An empty interrupted run carries no bound; the caller
            // maps it to `Interrupted`.
            None => Completeness::Truncated,
            Some(best) => Completeness::Anytime {
                bound: if min_lb == u64::MAX {
                    0
                } else {
                    best.saturating_sub(min_lb)
                },
            },
        };
        AnytimeRun {
            answers: results,
            completeness,
        }
    }
}
