//! Cooperative query budgets: deadlines and cancellation.
//!
//! A [`Budget`] is threaded through the hot loops of the search
//! algorithms and BiG-index's specialization / answer-generation
//! pipeline so a long-running query can be abandoned mid-flight — the
//! serving layer (`bgi-service`) uses it to enforce per-request
//! deadlines without preemption. Checks are *cooperative*: each loop
//! calls [`Budget::is_exhausted`] (or the `Result`-flavoured
//! [`Budget::check`]) at its head, and the clock read is amortized over
//! [`CHECK_PERIOD`] calls so an unlimited budget costs two branch
//! predictions per iteration.
//!
//! A budget combines three independent stop conditions:
//!
//! - a **deadline** (`Instant`), for per-query timeouts;
//! - a shared **cancel flag** (`Arc<AtomicBool>`), for external
//!   cancellation (client disconnect, service shutdown); and
//! - a **check limit** (a deterministic op-count), for reproducible
//!   partial runs — the anytime-search tests and bounded wrap-up slices
//!   use it because wall-clock deadlines are nondeterministic.
//!
//! Budgets are cheap to clone and are owned by one worker thread at a
//! time (the amortization counter is a `Cell`, so `Budget` is `Send`
//! but deliberately not `Sync`; share the *flag*, not the budget).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many exhaustion checks share one `Instant::now()` read.
///
/// Once a budget observes exhaustion it latches, so the worst case is
/// overshooting a deadline by `CHECK_PERIOD` loop iterations.
pub const CHECK_PERIOD: u32 = 64;

/// The error a budgeted operation returns when its budget ran out.
///
/// Deliberately carries no payload. Under the strict
/// `search_budgeted` contract a truncated top-k is not a correct
/// top-k, so interruption discards partial results wholesale; callers
/// that *can* use best-effort partial results go through
/// `KeywordSearch::search_anytime`, which returns them with an
/// explicit `Completeness` marker instead of this error. `Interrupted`
/// therefore means "nothing usable was produced before the budget ran
/// out".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("query interrupted: budget exhausted (deadline or cancellation)")
    }
}

impl std::error::Error for Interrupted {}

/// A `Sync` snapshot of a [`Budget`]'s stop conditions, for fanning a
/// single request's budget out across worker threads.
///
/// `Budget` itself is `Send` but not `Sync` (its amortization counter
/// is a `Cell`), so a scatter–gather executor cannot share one budget
/// between legs. A seed captures the *conditions* — deadline, shared
/// cancel flag, and remaining check limit — without the per-thread
/// counters, and [`BudgetSeed::budget`] mints a fresh budget per leg.
/// All legs observe the same absolute deadline and the same cancel
/// flag; a check limit is copied per leg (each leg gets the full
/// remaining count), which preserves determinism per leg.
#[derive(Debug, Clone, Default)]
pub struct BudgetSeed {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    checks: Option<u64>,
}

impl BudgetSeed {
    /// Mints a fresh [`Budget`] with this seed's stop conditions.
    pub fn budget(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            checks_left: self.checks.map(Cell::new),
            countdown: Cell::new(0),
            expired: Cell::new(false),
        }
    }
}

/// A cooperative execution budget: optional deadline plus optional
/// shared cancel flag.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    // Checks remaining before a check-limited budget exhausts; `None`
    // disables the limit. Cloning copies the *remaining* count — clones
    // do not share the counter (share the cancel flag instead).
    checks_left: Option<Cell<u64>>,
    // Calls remaining until the next clock read; starts at 0 so the
    // very first check always consults the clock (a 0 ms deadline must
    // trip immediately).
    countdown: Cell<u32>,
    // Latched once exhaustion is observed: checks after the first hit
    // are branch-only.
    expired: Cell<bool>,
}

impl Budget {
    /// A budget that never runs out (the default).
    pub const fn unlimited() -> Self {
        Budget {
            deadline: None,
            cancel: None,
            checks_left: None,
            countdown: Cell::new(0),
            expired: Cell::new(false),
        }
    }

    /// A budget expiring `timeout` from now. A zero timeout is already
    /// expired — the first check fails.
    pub fn with_timeout(timeout: Duration) -> Self {
        // Saturate rather than wrap on absurd timeouts.
        match Instant::now().checked_add(timeout) {
            Some(at) => Self::with_deadline(at),
            None => Self::unlimited(),
        }
    }

    /// A budget expiring at the absolute instant `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Self::unlimited()
        }
    }

    /// A deterministic budget that exhausts after `checks` calls to
    /// [`Budget::is_exhausted`] (a zero limit is already expired — the
    /// first check fails).
    ///
    /// Unlike a wall-clock deadline this stop condition is exactly
    /// reproducible, which is what the anytime-search property tests
    /// (quality monotone in budget) and bounded wrap-up slices need.
    pub fn with_check_limit(checks: u64) -> Self {
        Budget {
            checks_left: Some(Cell::new(checks)),
            ..Self::unlimited()
        }
    }

    /// Attaches a shared cancel flag; setting the flag to `true` (from
    /// any thread) exhausts the budget at its next check.
    #[must_use]
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// A fresh op-limited budget for bounded *wrap-up* work after this
    /// budget exhausted: it shares this budget's cancel flag (shutdown
    /// still interrupts) but replaces the deadline with a deterministic
    /// limit of `checks` exhaustion checks, so best-effort
    /// materialization overshoots a deadline by a bounded op count
    /// rather than stopping with nothing.
    pub fn grace(&self, checks: u64) -> Budget {
        Budget {
            deadline: None,
            cancel: self.cancel.clone(),
            checks_left: Some(Cell::new(checks)),
            countdown: Cell::new(0),
            expired: Cell::new(false),
        }
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Captures this budget's stop conditions as a `Sync` [`BudgetSeed`]
    /// so they can be shared across scatter–gather worker threads. The
    /// seed copies the *remaining* check count, not the original limit.
    pub fn seed(&self) -> BudgetSeed {
        BudgetSeed {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            checks: self.checks_left.as_ref().map(Cell::get),
        }
    }

    /// True if no deadline, cancel flag, or check limit is attached —
    /// no check can ever fail.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.checks_left.is_none()
    }

    /// Cooperative check: true once the deadline passed or the cancel
    /// flag was raised. Amortizes clock reads over [`CHECK_PERIOD`]
    /// calls; once exhausted, stays exhausted.
    pub fn is_exhausted(&self) -> bool {
        if self.expired.get() {
            return true;
        }
        if let Some(flag) = &self.cancel {
            // Acquire pairs with the canceller's Release store so any
            // state written before raising the flag (shutdown reason,
            // drained-queue bookkeeping) is visible to the worker that
            // observes the cancellation.
            if flag.load(Ordering::Acquire) {
                self.expired.set(true);
                return true;
            }
        }
        if let Some(left) = &self.checks_left {
            let n = left.get();
            if n == 0 {
                self.expired.set(true);
                return true;
            }
            left.set(n - 1);
        }
        if let Some(deadline) = self.deadline {
            let left = self.countdown.get();
            if left == 0 {
                self.countdown.set(CHECK_PERIOD);
                if Instant::now() >= deadline {
                    self.expired.set(true);
                    return true;
                }
            } else {
                self.countdown.set(left - 1);
            }
        }
        false
    }

    /// Like [`Budget::is_exhausted`] but reads the clock unconditionally
    /// — for coarse checkpoints (phase boundaries) where amortization
    /// would delay detection by a whole phase.
    pub fn is_exhausted_now(&self) -> bool {
        self.countdown.set(0);
        self.is_exhausted()
    }

    /// `Result`-flavoured [`Budget::is_exhausted`] for `?` threading.
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.is_exhausted() {
            Err(Interrupted)
        } else {
            Ok(())
        }
    }

    /// `Result`-flavoured [`Budget::is_exhausted_now`].
    pub fn check_now(&self) -> Result<(), Interrupted> {
        if self.is_exhausted_now() {
            Err(Interrupted)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(!b.is_exhausted());
        }
        assert!(b.check().is_ok());
        assert!(b.is_unlimited());
    }

    #[test]
    fn zero_timeout_trips_on_first_check() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(b.is_exhausted());
        assert_eq!(b.check(), Err(Interrupted));
    }

    #[test]
    fn exhaustion_latches() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(b.is_exhausted());
        // Stays exhausted on every subsequent check.
        for _ in 0..100 {
            assert!(b.is_exhausted());
        }
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        for _ in 0..1000 {
            assert!(!b.is_exhausted());
        }
    }

    #[test]
    fn cancel_flag_exhausts_from_another_handle() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancelled_by(Arc::clone(&flag));
        assert!(!b.is_exhausted());
        flag.store(true, Ordering::Release);
        assert!(b.is_exhausted());
    }

    #[test]
    fn amortization_still_catches_deadline() {
        let b = Budget::with_timeout(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        // Within CHECK_PERIOD calls the clock must be consulted.
        let tripped = (0..=CHECK_PERIOD).any(|_| b.is_exhausted());
        assert!(tripped);
    }

    #[test]
    fn check_now_bypasses_amortization() {
        let b = Budget::with_timeout(Duration::from_millis(2));
        assert!(!b.is_exhausted()); // consumes the first clock read
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.is_exhausted_now());
    }

    #[test]
    fn check_limit_is_deterministic() {
        let b = Budget::with_check_limit(5);
        for _ in 0..5 {
            assert!(!b.is_exhausted());
        }
        assert!(b.is_exhausted());
        assert!(b.is_exhausted(), "exhaustion latches");
        assert!(!b.is_unlimited());

        // A zero limit trips on the first check, like a zero timeout.
        assert!(Budget::with_check_limit(0).is_exhausted());
    }

    #[test]
    fn grace_budget_keeps_cancel_flag_but_not_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::with_timeout(Duration::ZERO).cancelled_by(Arc::clone(&flag));
        assert!(b.is_exhausted());
        let g = b.grace(10);
        // The grace slice is fresh: the parent's expiry does not carry
        // over, and the op limit replaces the deadline.
        for _ in 0..10 {
            assert!(!g.is_exhausted());
        }
        assert!(g.is_exhausted());
        // But a raised cancel flag still interrupts a grace slice.
        let g2 = b.grace(1000);
        flag.store(true, Ordering::Release);
        assert!(g2.is_exhausted());
    }

    #[test]
    fn seed_reproduces_conditions_across_threads() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::with_check_limit(3).cancelled_by(Arc::clone(&flag));
        let seed = b.seed();
        // Seeds are Sync: usable from a scoped worker thread.
        std::thread::scope(|s| {
            let seed_ref = &seed;
            s.spawn(move || {
                let leg = seed_ref.budget();
                for _ in 0..3 {
                    assert!(!leg.is_exhausted());
                }
                assert!(leg.is_exhausted(), "check limit carries into the leg");
            });
        });
        // The cancel flag is shared, not copied.
        let leg = seed.budget();
        flag.store(true, Ordering::Release);
        assert!(leg.is_exhausted());

        // Seeding after partial consumption copies the remaining count.
        let c = Budget::with_check_limit(5);
        assert!(!c.is_exhausted());
        assert!(!c.is_exhausted());
        let leg = c.seed().budget();
        for _ in 0..3 {
            assert!(!leg.is_exhausted());
        }
        assert!(leg.is_exhausted());
    }

    #[test]
    fn clone_shares_flag_not_latch() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = Budget::unlimited().cancelled_by(Arc::clone(&flag));
        let b = a.clone();
        flag.store(true, Ordering::Release);
        assert!(a.is_exhausted());
        assert!(b.is_exhausted());
    }
}
