//! BLINKS query processing: backward expansion with top-k early
//! termination.
//!
//! The query expands backward (over in-edges) from each keyword's
//! vertex set in round-robin BFS levels — the paper's "expanding
//! backward … in a round-robin manner". A vertex reached by all
//! keywords is a candidate root with exact score `Σ_i dist(v, q_i)`;
//! block-level pruning drops candidates whose block misses some
//! keyword's block list. The search stops when the k-th best score is
//! no larger than `Σ_i depth_i`, the lower bound on any root not yet
//! completed. The per-keyword node lists seed the expansion and the
//! node-keyword map reconstructs answer paths; root *scores* come from
//! the expansion itself, so query cost is proportional to the traversed
//! region — exactly the cost BiG-index shrinks by evaluating on summary
//! graphs.

use super::index::{BlinksIndex, BlinksParams};
use crate::answer::{rank_and_truncate, AnswerGraph};
use crate::cancel::{Budget, Interrupted};
use crate::outcome::{Completeness, SearchOutcome};
use crate::query::KeywordQuery;
use crate::semantics::KeywordSearch;
use bgi_graph::{DiGraph, LabelId, VId};
use rustc_hash::FxHashMap;

/// The BLINKS ranked keyword search algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blinks {
    /// Index construction parameters.
    pub params: BlinksParams,
}

impl Blinks {
    /// BLINKS with the paper's experimental settings
    /// (block size 1000, `τ_prune` 5).
    pub fn new(params: BlinksParams) -> Self {
        Blinks { params }
    }

    /// Reconstructs the shortest path from `root` to the nearest
    /// `keyword`-node by greedy descent over the node-keyword map.
    fn descend_path(g: &DiGraph, index: &BlinksIndex, root: VId, keyword: LabelId) -> Vec<VId> {
        let mut path = vec![root];
        let mut cur = root;
        let mut d = index
            .node_keyword_distance(root, keyword)
            .expect("root must reach keyword");
        while d > 0 {
            let next = g
                .out_neighbors(cur)
                .iter()
                .copied()
                .find(|&w| index.node_keyword_distance(w, keyword) == Some(d - 1))
                .expect("node-keyword map must admit a descent step");
            path.push(next);
            cur = next;
            d -= 1;
        }
        path
    }
}

impl KeywordSearch for Blinks {
    type Index = BlinksIndex;

    fn name(&self) -> &'static str {
        "rkws"
    }

    fn build_index(&self, g: &DiGraph) -> BlinksIndex {
        BlinksIndex::build(g, &self.params)
    }

    fn search(
        &self,
        g: &DiGraph,
        index: &BlinksIndex,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph> {
        // An unlimited budget never interrupts.
        self.search_impl(g, index, query, k, &Budget::unlimited())
            .map(|o| o.answers)
            .unwrap_or_default()
    }

    fn search_budgeted(
        &self,
        g: &DiGraph,
        index: &BlinksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        // Strict contract: a truncated top-k is not a correct top-k.
        let outcome = self.search_impl(g, index, query, k, budget)?;
        if outcome.completeness.is_exact() {
            Ok(outcome.answers)
        } else {
            Err(Interrupted)
        }
    }

    fn search_anytime(
        &self,
        g: &DiGraph,
        index: &BlinksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        self.search_impl(g, index, query, k, budget)
    }
}

impl Blinks {
    /// The shared engine: best-effort under `budget`. Interruption
    /// during round-robin expansion surfaces the roots already
    /// *completed* (their scores are exact) marked
    /// [`Completeness::Anytime`]: the expansion's own termination bound
    /// — every not-yet-completed root still owes at least
    /// `min_i(depth_i + 1)` from some active keyword — also bounds how
    /// far the best completed root can sit above the true optimum.
    /// With no completed root there is nothing usable and the search
    /// fails with [`Interrupted`].
    fn search_impl(
        &self,
        g: &DiGraph,
        index: &BlinksIndex,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        if query.is_empty() || k == 0 {
            return Ok(SearchOutcome::exact(Vec::new()));
        }
        let dmax = query.dmax.min(index.prune_dist());
        let n = query.len();

        // Seeds: the distance-0 prefix of each keyword-node list (the
        // vertices containing the keyword). A missing list means the
        // keyword is absent.
        let mut frontiers: Vec<std::collections::VecDeque<VId>> = Vec::with_capacity(n);
        let mut dists: Vec<FxHashMap<VId, u32>> = vec![FxHashMap::default(); n];
        // budget-exempt: distance-0 seed prefixes, one per keyword
        for (i, &q) in query.keywords.iter().enumerate() {
            let Some(list) = index.keyword_node_list(q) else {
                return Ok(SearchOutcome::exact(Vec::new()));
            };
            let mut queue = std::collections::VecDeque::new();
            for &(d, v) in list.iter().take_while(|&&(d, _)| d == 0) {
                debug_assert_eq!(d, 0);
                dists[i].insert(v, 0);
                queue.push_back(v);
            }
            if queue.is_empty() {
                return Ok(SearchOutcome::exact(Vec::new()));
            }
            frontiers.push(queue);
        }

        // Blocks that can host a root: must appear in every keyword's
        // block list (block-level pruning of the bi-level index).
        let root_blocks: Vec<&[u32]> = query
            .keywords
            .iter()
            .map(|&q| index.keyword_blocks(q))
            .collect();
        let block_ok = |v: VId| {
            let b = index.partition().block_of(v);
            root_blocks.iter().all(|bl| bl.binary_search(&b).is_ok())
        };

        // Backward expansion state: how many keywords reached each
        // candidate and its accumulated score.
        let mut hit_count: FxHashMap<VId, (u8, u64)> = FxHashMap::default();
        // budget-exempt: one pass over the seed frontiers
        for f in frontiers.iter().enumerate().flat_map(|(i, q)| {
            let _ = i;
            q.iter().copied().collect::<Vec<_>>()
        }) {
            let e = hit_count.entry(f).or_insert((0, 0));
            e.0 += 1;
        }
        let mut depth = vec![0u32; n];
        let mut roots: Vec<(u64, VId)> = Vec::new();
        let mut best_k: std::collections::BinaryHeap<u64> = std::collections::BinaryHeap::new();
        // Record completed roots (exact scores known on completion).
        let complete = |entry: (u8, u64),
                        v: VId,
                        roots: &mut Vec<(u64, VId)>,
                        best_k: &mut std::collections::BinaryHeap<u64>| {
            if entry.0 as usize == n && block_ok(v) {
                roots.push((entry.1, v));
                best_k.push(entry.1);
                if best_k.len() > k {
                    best_k.pop();
                }
            }
        };
        // Seeds that are already complete (single-keyword queries).
        if n == 1 {
            // budget-exempt: seeds only
            for (&v, &e) in &hit_count {
                complete(e, v, &mut roots, &mut best_k);
            }
        }

        // Round-robin backward BFS, one level of one keyword at a time,
        // always advancing the keyword with the smallest current depth.
        // On interruption, `frontier_lb` holds the last computed lower
        // bound on any root not yet completed.
        let mut frontier_lb: Option<u64> = None;
        'expand: loop {
            // Termination: every unfinished root is missing at least one
            // *active* keyword i, which will contribute at least
            // depth[i] + 1 to its score (keywords that already reached
            // it contributed exact, non-negative sums). The sound lower
            // bound on any future completion is therefore
            // min_i(depth[i] + 1), not Σ_i depth_i — a root sitting at
            // distance 0 from all other keywords only needs one more
            // level from the nearest unfinished frontier.
            let active: Vec<usize> = (0..n)
                .filter(|&i| !frontiers[i].is_empty() && depth[i] < dmax)
                .collect();
            if active.is_empty() {
                break;
            }
            let bound: u64 = active
                .iter()
                .map(|&i| depth[i] as u64 + 1)
                .min()
                .unwrap_or(u64::MAX);
            if best_k.len() >= k && *best_k.peek().unwrap() <= bound {
                break;
            }
            let i = *active
                .iter()
                .min_by_key(|&&i| (depth[i], frontiers[i].len()))
                .unwrap();
            // Expand one full BFS level of keyword i.
            let level = frontiers[i].len();
            let next_depth = depth[i] + 1;
            for _ in 0..level {
                if budget.is_exhausted() {
                    // Depths only grow within a level, so the bound
                    // computed at the loop head still lower-bounds
                    // every future completion.
                    frontier_lb = Some(bound);
                    break 'expand;
                }
                let u = frontiers[i].pop_front().unwrap();
                for &w in g.in_neighbors(u) {
                    if dists[i].contains_key(&w) {
                        continue;
                    }
                    dists[i].insert(w, next_depth);
                    frontiers[i].push_back(w);
                    let e = hit_count.entry(w).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += next_depth as u64;
                    if e.0 as usize == n {
                        complete(*e, w, &mut roots, &mut best_k);
                    }
                }
            }
            depth[i] = next_depth;
        }

        if frontier_lb.is_some() && roots.is_empty() {
            // Nothing completed before the budget ran out.
            return Err(Interrupted);
        }
        // Materialize answers for the best roots.
        roots.sort_unstable();
        roots.truncate(k);
        let completeness = match (frontier_lb, roots.first()) {
            (Some(lb), Some(&(best, _))) => Completeness::Anytime {
                bound: best.saturating_sub(lb),
            },
            _ => Completeness::Exact,
        };
        let mut answers = Vec::with_capacity(roots.len());
        // budget-exempt: bounded wrap-up — at most k short path descents
        for (score, root) in roots {
            let mut vertices = Vec::new();
            let mut edges = Vec::new();
            let mut keyword_matches = vec![Vec::new(); n];
            for (i, &q) in query.keywords.iter().enumerate() {
                let path = Self::descend_path(g, index, root, q);
                for w in path.windows(2) {
                    edges.push((w[0], w[1]));
                }
                keyword_matches[i].push(*path.last().unwrap());
                vertices.extend(path);
            }
            answers.push(AnswerGraph::new(
                vertices,
                edges,
                keyword_matches,
                Some(root),
                score,
            ));
        }
        Ok(SearchOutcome {
            answers: rank_and_truncate(answers, k),
            completeness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banks::Banks;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::{GraphBuilder, LabelId};

    fn small_params() -> BlinksParams {
        BlinksParams {
            block_size: 8,
            prune_dist: 5,
        }
    }

    #[test]
    fn matches_banks_on_random_graphs() {
        // BLINKS implements the same distinct-root semantics as our
        // Banks baseline; top-k roots and scores must agree.
        for seed in 0..8 {
            let g = uniform_random(120, 360, 5, seed);
            let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
            let blinks = Blinks::new(small_params());
            let a = blinks.search_fresh(&g, &q, 1000);
            let b = Banks.search_fresh(&g, &q, 1000);
            let key = |ans: &AnswerGraph| (ans.root, ans.score);
            let mut ka: Vec<_> = a.iter().map(key).collect();
            let mut kb: Vec<_> = b.iter().map(key).collect();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb, "seed {seed}");
        }
    }

    #[test]
    fn top_k_early_termination_is_exact() {
        for seed in 0..5 {
            let g = uniform_random(200, 600, 4, seed + 100);
            let q = KeywordQuery::new(vec![LabelId(0), LabelId(2)], 5);
            let blinks = Blinks::new(small_params());
            let idx = blinks.build_index(&g);
            let top3 = blinks.search(&g, &idx, &q, 3);
            let all = blinks.search(&g, &idx, &q, usize::MAX / 2);
            assert_eq!(
                top3.iter().map(|a| a.score).collect::<Vec<_>>(),
                all.iter().take(3).map(|a| a.score).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn answers_validate() {
        let g = uniform_random(150, 450, 4, 7);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1), LabelId(3)], 4);
        let blinks = Blinks::new(small_params());
        for a in blinks.search_fresh(&g, &q, 10) {
            assert!(a.validate(&g, &q.keywords));
            assert!(a.score <= (q.dmax as u64) * q.len() as u64);
        }
    }

    #[test]
    fn prune_dist_clamps_dmax() {
        // Chain 0 -> 1 -> 2 -> 3(A): with prune_dist 2 the index cannot
        // see roots at distance 3.
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(LabelId(0));
        }
        b.add_vertex(LabelId(1));
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(3));
        let g = b.build();
        let blinks = Blinks::new(BlinksParams {
            block_size: 2,
            prune_dist: 2,
        });
        let q = KeywordQuery::new(vec![LabelId(1)], 5);
        let answers = blinks.search_fresh(&g, &q, 10);
        let roots: Vec<_> = answers.iter().map(|a| a.root.unwrap()).collect();
        assert!(roots.contains(&VId(1)));
        assert!(!roots.contains(&VId(0)), "beyond τ_prune");
    }

    #[test]
    fn missing_keyword_returns_empty() {
        let g = uniform_random(50, 100, 2, 3);
        let blinks = Blinks::new(small_params());
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(42)], 3);
        assert!(blinks.search_fresh(&g, &q, 5).is_empty());
    }

    #[test]
    fn single_keyword_best_root_is_keyword_node() {
        let g = uniform_random(80, 200, 3, 11);
        let blinks = Blinks::new(small_params());
        let q = KeywordQuery::new(vec![LabelId(1)], 3);
        let answers = blinks.search_fresh(&g, &q, 1);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].score, 0);
        assert_eq!(g.label(answers[0].root.unwrap()), LabelId(1));
    }
}
