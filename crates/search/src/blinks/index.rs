//! The BLINKS bi-level index.
//!
//! For every keyword `ℓ` appearing in the graph, a backward BFS bounded
//! by `τ_prune` computes `dist(v → nearest ℓ-node)` for every vertex `v`
//! that can reach an `ℓ`-node within the bound. The results are stored
//! three ways, mirroring He et al.'s structures:
//!
//! - **keyword-node list** `KNL[ℓ]`: `(dist, v)` pairs sorted by
//!   distance (and block, so entries of one block are adjacent within
//!   each distance band) — drives backward expansion in sorted order;
//! - **node-keyword map** `NKM[(v, ℓ)] = dist` — completes candidate
//!   roots with exact distances in O(1);
//! - **keyword-block list** `KBL[ℓ]`: blocks containing a matched
//!   vertex — block-level pruning.

use super::partition::{bfs_partition, GraphPartition};
use crate::banks::backward_reach;
use bgi_graph::{DiGraph, LabelId, VId};
use rustc_hash::FxHashMap;

/// Tuning parameters for the bi-level index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlinksParams {
    /// Target partition block size (the paper's experiments use 1000).
    pub block_size: usize,
    /// Pruning threshold `τ_prune`: maximum indexed keyword distance
    /// (the paper's experiments use 5, equal to `d_max`).
    pub prune_dist: u32,
}

impl Default for BlinksParams {
    fn default() -> Self {
        BlinksParams {
            block_size: 1000,
            prune_dist: 5,
        }
    }
}

/// The bi-level index over one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlinksIndex {
    partition: GraphPartition,
    prune_dist: u32,
    /// `KNL[ℓ]`: entries sorted by (dist, block, vertex).
    knl: FxHashMap<LabelId, Vec<(u16, VId)>>,
    /// `NKM[(v, ℓ)]`: exact bounded distance from `v` to nearest ℓ-node.
    nkm: FxHashMap<(VId, LabelId), u16>,
    /// `KBL[ℓ]`: sorted blocks containing a vertex within the bound.
    kbl: FxHashMap<LabelId, Vec<u32>>,
}

impl BlinksIndex {
    /// Builds the index for `g`.
    pub fn build(g: &DiGraph, params: &BlinksParams) -> Self {
        let partition = bfs_partition(g, params.block_size.max(1));
        Self::build_with_partition(g, partition, params.prune_dist)
    }

    /// Builds the index for `g` over a caller-supplied partition.
    ///
    /// The partition only drives block-level pruning; any partition
    /// covering `g`'s vertices yields a correct index. This is the
    /// reference constructor the incremental [`BlinksIndex::patched`]
    /// path is equivalent to.
    pub fn build_with_partition(g: &DiGraph, partition: GraphPartition, prune_dist: u32) -> Self {
        let mut knl: FxHashMap<LabelId, Vec<(u16, VId)>> = FxHashMap::default();
        let mut nkm: FxHashMap<(VId, LabelId), u16> = FxHashMap::default();
        let mut kbl: FxHashMap<LabelId, Vec<u32>> = FxHashMap::default();

        // Group vertices by label once.
        let mut by_label: FxHashMap<LabelId, Vec<VId>> = FxHashMap::default();
        for v in g.vertices() {
            by_label.entry(g.label(v)).or_default().push(v);
        }

        for (&label, sources) in &by_label {
            let reach = backward_reach(g, sources, prune_dist);
            let mut entries: Vec<(u16, VId)> =
                reach.iter().map(|(&v, &(d, _))| (d as u16, v)).collect();
            // Sort by distance, then block, then vertex: within a
            // distance band the entries of one block are adjacent.
            entries.sort_unstable_by_key(|&(d, v)| (d, partition.block_of(v), v));
            let mut blocks: Vec<u32> = entries
                .iter()
                .map(|&(_, v)| partition.block_of(v))
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            for &(d, v) in &entries {
                nkm.insert((v, label), d);
            }
            knl.insert(label, entries);
            kbl.insert(label, blocks);
        }

        BlinksIndex {
            partition,
            prune_dist,
            knl,
            nkm,
            kbl,
        }
    }

    /// Reassembles an index from its partition and keyword-node lists
    /// (the persistence path). `NKM` and `KBL` are fully derivable from
    /// `KNL` and the partition, so only those two need to be stored;
    /// the derived maps are rebuilt here. Entries of each list must
    /// already be in the build's `(dist, block, vertex)` order —
    /// persisting and restoring them verbatim preserves it.
    pub fn from_parts(
        partition: GraphPartition,
        prune_dist: u32,
        knl: FxHashMap<LabelId, Vec<(u16, VId)>>,
    ) -> Self {
        let mut nkm: FxHashMap<(VId, LabelId), u16> = FxHashMap::default();
        let mut kbl: FxHashMap<LabelId, Vec<u32>> = FxHashMap::default();
        for (&label, entries) in &knl {
            let mut blocks: Vec<u32> = entries
                .iter()
                .map(|&(_, v)| partition.block_of(v))
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            for &(d, v) in entries {
                nkm.insert((v, label), d);
            }
            kbl.insert(label, blocks);
        }
        BlinksIndex {
            partition,
            prune_dist,
            knl,
            nkm,
            kbl,
        }
    }

    /// Incrementally patched copy of this index for the graph described
    /// by `diff` (see [`crate::patch`]).
    ///
    /// The partition is kept (appended vertices become fresh singleton
    /// blocks) — it only drives block-level pruning, so any partition
    /// yields exact answers. A vertex's keyword distances can change
    /// only if a bounded path from it crosses a changed edge, which
    /// requires reaching that edge's source within `τ_prune − 1` hops;
    /// the *affected set* is the union of those backward balls in the
    /// old and new graphs plus all appended vertices. Affected
    /// distances are recomputed by bounded relaxation against boundary
    /// distances (provably unchanged — a non-affected vertex cannot
    /// route a bounded path over a changed edge in either graph), and
    /// per-label lists are spliced in `(dist, block, vertex)` order.
    /// The result equals [`BlinksIndex::build_with_partition`] on the
    /// new graph with the extended partition. Returns `None` when the
    /// affected set covers half the graph or more — rebuild instead.
    pub fn patched(
        &self,
        old_g: &DiGraph,
        new_g: &DiGraph,
        diff: &crate::patch::GraphDiff,
    ) -> Option<BlinksIndex> {
        let n_new = new_g.num_vertices();
        let n_old = n_new - diff.added_labels.len();
        let prune = self.prune_dist;

        // Extend the partition: appended vertices get fresh singleton
        // blocks, existing assignments are untouched.
        let mut block_of = self.partition.block_table().to_vec();
        let mut num_blocks = self.partition.num_blocks();
        for _ in n_old..n_new {
            block_of.push(num_blocks as u32);
            num_blocks += 1;
        }
        let partition = GraphPartition::from_parts(block_of, num_blocks);

        // Affected set: backward balls of radius τ_prune − 1 around
        // changed-edge sources, in both graph versions, plus appended
        // vertices. A bounded path using edge (a, b) reaches `a` in at
        // most τ_prune − 1 hops, so every vertex whose distances can
        // change is marked.
        let mut in_a = vec![false; n_new];
        let mut sources: Vec<VId> = diff
            .inserted
            .iter()
            .chain(diff.deleted.iter())
            .map(|&(u, _)| u)
            .collect();
        sources.sort_unstable();
        sources.dedup();
        let back = prune.saturating_sub(1);
        for g in [old_g, new_g] {
            for &s in &sources {
                if s.index() >= g.num_vertices() {
                    continue;
                }
                for &v in backward_reach(g, &[s], back).keys() {
                    in_a[v.index()] = true;
                }
            }
        }
        for a in in_a.iter_mut().skip(n_old) {
            *a = true;
        }
        let a_list: Vec<VId> = (0..n_new as u32)
            .map(VId)
            .filter(|v| in_a[v.index()])
            .collect();
        if a_list.len() * 2 > n_new {
            return None;
        }

        // Boundary: out-neighbors of affected vertices outside the set.
        let mut boundary: Vec<VId> = Vec::new();
        for &v in &a_list {
            for &w in new_g.out_neighbors(v) {
                if !in_a[w.index()] {
                    boundary.push(w);
                }
            }
        }
        boundary.sort_unstable();
        boundary.dedup();

        // Candidate labels: anything an affected vertex carries in the
        // new graph (fresh 0-distance entries), plus any label with an
        // old entry on an affected vertex (stale entries to revise) or
        // a boundary vertex (distances that may now extend inward).
        let mut candidates: Vec<LabelId> = a_list.iter().map(|&v| new_g.label(v)).collect();
        for &l in self.knl.keys() {
            if a_list
                .iter()
                .chain(boundary.iter())
                .any(|&v| self.nkm.contains_key(&(v, l)))
            {
                candidates.push(l);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        // The relaxation below costs |candidates| × |affected| × deg;
        // a rebuild costs roughly one bounded BFS per label, ~the entry
        // count it produces. When the patch would approach rebuild cost
        // (coalesced group-commit diffs can push the affected set near
        // the n/2 cap, where nearly every label is a candidate), decline
        // and let the caller rebuild — the 2× margin keeps the write
        // path on the predictable side of the crossover.
        if candidates.len() * a_list.len() * 2 > self.nkm.len() + n_new {
            return None;
        }

        let mut knl = self.knl.clone();
        let mut nkm = self.nkm.clone();
        let mut kbl = self.kbl.clone();
        const INF: u32 = u32::MAX;
        let mut dist = vec![INF; n_new];
        for &l in &candidates {
            // Exact bounded distances for affected vertices: seed with
            // own-label zeros and boundary hops, then relax within the
            // set. A path leaving the set is covered by its first
            // boundary vertex's term (a true shortest distance, even if
            // the path re-enters the set later).
            for &v in &a_list {
                let mut d = if new_g.label(v) == l { 0 } else { INF };
                for &w in new_g.out_neighbors(v) {
                    if !in_a[w.index()] {
                        if let Some(&dw) = self.nkm.get(&(w, l)) {
                            let c = dw as u32 + 1;
                            if c <= prune && c < d {
                                d = c;
                            }
                        }
                    }
                }
                dist[v.index()] = d;
            }
            loop {
                let mut changed = false;
                for &v in &a_list {
                    let mut d = dist[v.index()];
                    for &w in new_g.out_neighbors(v) {
                        if in_a[w.index()] && dist[w.index()] != INF {
                            let c = dist[w.index()] + 1;
                            if c <= prune && c < d {
                                d = c;
                            }
                        }
                    }
                    if d < dist[v.index()] {
                        dist[v.index()] = d;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut fresh: Vec<(u16, VId)> = a_list
                .iter()
                .filter(|&&v| dist[v.index()] != INF)
                .map(|&v| (dist[v.index()] as u16, v))
                .collect();
            let old_count = a_list
                .iter()
                .filter(|&&v| nkm.contains_key(&(v, l)))
                .count();
            let unchanged = fresh.len() == old_count
                && fresh.iter().all(|&(d, v)| nkm.get(&(v, l)) == Some(&d));
            if unchanged {
                continue;
            }
            for &v in &a_list {
                nkm.remove(&(v, l));
            }
            for &(d, v) in &fresh {
                nkm.insert((v, l), d);
            }
            // Splice: retained entries stay in their original relative
            // order (already sorted by this key — block ids of old
            // vertices are unchanged), fresh ones merge in.
            fresh.sort_unstable_by_key(|&(d, v)| (d, partition.block_of(v), v));
            let retained: Vec<(u16, VId)> = knl
                .remove(&l)
                .unwrap_or_default()
                .into_iter()
                .filter(|&(_, v)| !in_a[v.index()])
                .collect();
            let mut merged = Vec::with_capacity(retained.len() + fresh.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < retained.len() && j < fresh.len() {
                let ki = (
                    retained[i].0,
                    partition.block_of(retained[i].1),
                    retained[i].1,
                );
                let kj = (fresh[j].0, partition.block_of(fresh[j].1), fresh[j].1);
                if ki <= kj {
                    merged.push(retained[i]);
                    i += 1;
                } else {
                    merged.push(fresh[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&retained[i..]);
            merged.extend_from_slice(&fresh[j..]);
            if merged.is_empty() {
                kbl.remove(&l);
            } else {
                let mut blocks: Vec<u32> =
                    merged.iter().map(|&(_, v)| partition.block_of(v)).collect();
                blocks.sort_unstable();
                blocks.dedup();
                kbl.insert(l, blocks);
                knl.insert(l, merged);
            }
        }

        Some(BlinksIndex {
            partition,
            prune_dist: prune,
            knl,
            nkm,
            kbl,
        })
    }

    /// The full keyword-node-list table (persistence export;
    /// [`BlinksIndex::keyword_node_list`] is the per-label lookup).
    pub fn knl_table(&self) -> &FxHashMap<LabelId, Vec<(u16, VId)>> {
        &self.knl
    }

    /// The pruning threshold the index was built with.
    pub fn prune_dist(&self) -> u32 {
        self.prune_dist
    }

    /// The underlying partition.
    pub fn partition(&self) -> &GraphPartition {
        &self.partition
    }

    /// The keyword-node list for `l` (sorted by distance), if any vertex
    /// can reach the keyword within the bound.
    pub fn keyword_node_list(&self, l: LabelId) -> Option<&[(u16, VId)]> {
        self.knl.get(&l).map(Vec::as_slice)
    }

    /// `dist(v → nearest l-node)` within the bound, if reachable.
    pub fn node_keyword_distance(&self, v: VId, l: LabelId) -> Option<u32> {
        self.nkm.get(&(v, l)).map(|&d| d as u32)
    }

    /// Blocks containing at least one vertex within the bound of `l`.
    pub fn keyword_blocks(&self, l: LabelId) -> &[u32] {
        self.kbl.get(&l).map_or(&[], Vec::as_slice)
    }

    /// Total number of (vertex, keyword) entries — the index's dominant
    /// space cost.
    pub fn num_entries(&self) -> usize {
        self.nkm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    /// 0(R) -> 1(A); 2(R) -> 3(C) -> 1(A)
    fn sample() -> DiGraph {
        let mut b = GraphBuilder::new();
        let r0 = b.add_vertex(LabelId(0));
        let a = b.add_vertex(LabelId(1));
        let r2 = b.add_vertex(LabelId(0));
        let c = b.add_vertex(LabelId(2));
        b.add_edge(r0, a);
        b.add_edge(r2, c);
        b.add_edge(c, a);
        b.build()
    }

    #[test]
    fn nkm_distances_are_exact() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        assert_eq!(idx.node_keyword_distance(VId(0), LabelId(1)), Some(1));
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(1)), Some(2));
        assert_eq!(idx.node_keyword_distance(VId(1), LabelId(1)), Some(0));
        assert_eq!(idx.node_keyword_distance(VId(0), LabelId(2)), None);
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(2)), Some(1));
    }

    #[test]
    fn knl_sorted_by_distance() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        let list = idx.keyword_node_list(LabelId(1)).unwrap();
        assert!(list.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(list[0], (0, VId(1)));
        assert_eq!(list.len(), 4); // every vertex reaches A within 5
    }

    #[test]
    fn prune_dist_bounds_entries() {
        let g = sample();
        let idx = BlinksIndex::build(
            &g,
            &BlinksParams {
                block_size: 2,
                prune_dist: 1,
            },
        );
        // At bound 1, vertex 2 (distance 2 from A) is not indexed for A.
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(1)), None);
        let list = idx.keyword_node_list(LabelId(1)).unwrap();
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn keyword_blocks_cover_matched_vertices() {
        let g = sample();
        let idx = BlinksIndex::build(
            &g,
            &BlinksParams {
                block_size: 2,
                prune_dist: 5,
            },
        );
        for (d, v) in idx.keyword_node_list(LabelId(1)).unwrap() {
            let _ = d;
            let b = idx.partition().block_of(*v);
            assert!(idx.keyword_blocks(LabelId(1)).contains(&b));
        }
    }

    #[test]
    fn entry_count_matches_reach() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        // A: 4 entries, R: {0,2} at 0 = 2 entries, C: {3 at 0, 2 at 1}.
        assert_eq!(idx.num_entries(), 4 + 2 + 2);
    }
}
