//! The BLINKS bi-level index.
//!
//! For every keyword `ℓ` appearing in the graph, a backward BFS bounded
//! by `τ_prune` computes `dist(v → nearest ℓ-node)` for every vertex `v`
//! that can reach an `ℓ`-node within the bound. The results are stored
//! three ways, mirroring He et al.'s structures:
//!
//! - **keyword-node list** `KNL[ℓ]`: `(dist, v)` pairs sorted by
//!   distance (and block, so entries of one block are adjacent within
//!   each distance band) — drives backward expansion in sorted order;
//! - **node-keyword map** `NKM[(v, ℓ)] = dist` — completes candidate
//!   roots with exact distances in O(1);
//! - **keyword-block list** `KBL[ℓ]`: blocks containing a matched
//!   vertex — block-level pruning.

use super::partition::{bfs_partition, GraphPartition};
use crate::banks::backward_reach;
use bgi_graph::{DiGraph, LabelId, VId};
use rustc_hash::FxHashMap;

/// Tuning parameters for the bi-level index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlinksParams {
    /// Target partition block size (the paper's experiments use 1000).
    pub block_size: usize,
    /// Pruning threshold `τ_prune`: maximum indexed keyword distance
    /// (the paper's experiments use 5, equal to `d_max`).
    pub prune_dist: u32,
}

impl Default for BlinksParams {
    fn default() -> Self {
        BlinksParams {
            block_size: 1000,
            prune_dist: 5,
        }
    }
}

/// The bi-level index over one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlinksIndex {
    partition: GraphPartition,
    prune_dist: u32,
    /// `KNL[ℓ]`: entries sorted by (dist, block, vertex).
    knl: FxHashMap<LabelId, Vec<(u16, VId)>>,
    /// `NKM[(v, ℓ)]`: exact bounded distance from `v` to nearest ℓ-node.
    nkm: FxHashMap<(VId, LabelId), u16>,
    /// `KBL[ℓ]`: sorted blocks containing a vertex within the bound.
    kbl: FxHashMap<LabelId, Vec<u32>>,
}

impl BlinksIndex {
    /// Builds the index for `g`.
    pub fn build(g: &DiGraph, params: &BlinksParams) -> Self {
        let partition = bfs_partition(g, params.block_size.max(1));
        let mut knl: FxHashMap<LabelId, Vec<(u16, VId)>> = FxHashMap::default();
        let mut nkm: FxHashMap<(VId, LabelId), u16> = FxHashMap::default();
        let mut kbl: FxHashMap<LabelId, Vec<u32>> = FxHashMap::default();

        // Group vertices by label once.
        let mut by_label: FxHashMap<LabelId, Vec<VId>> = FxHashMap::default();
        for v in g.vertices() {
            by_label.entry(g.label(v)).or_default().push(v);
        }

        for (&label, sources) in &by_label {
            let reach = backward_reach(g, sources, params.prune_dist);
            let mut entries: Vec<(u16, VId)> =
                reach.iter().map(|(&v, &(d, _))| (d as u16, v)).collect();
            // Sort by distance, then block, then vertex: within a
            // distance band the entries of one block are adjacent.
            entries.sort_unstable_by_key(|&(d, v)| (d, partition.block_of(v), v));
            let mut blocks: Vec<u32> = entries
                .iter()
                .map(|&(_, v)| partition.block_of(v))
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            for &(d, v) in &entries {
                nkm.insert((v, label), d);
            }
            knl.insert(label, entries);
            kbl.insert(label, blocks);
        }

        BlinksIndex {
            partition,
            prune_dist: params.prune_dist,
            knl,
            nkm,
            kbl,
        }
    }

    /// Reassembles an index from its partition and keyword-node lists
    /// (the persistence path). `NKM` and `KBL` are fully derivable from
    /// `KNL` and the partition, so only those two need to be stored;
    /// the derived maps are rebuilt here. Entries of each list must
    /// already be in the build's `(dist, block, vertex)` order —
    /// persisting and restoring them verbatim preserves it.
    pub fn from_parts(
        partition: GraphPartition,
        prune_dist: u32,
        knl: FxHashMap<LabelId, Vec<(u16, VId)>>,
    ) -> Self {
        let mut nkm: FxHashMap<(VId, LabelId), u16> = FxHashMap::default();
        let mut kbl: FxHashMap<LabelId, Vec<u32>> = FxHashMap::default();
        for (&label, entries) in &knl {
            let mut blocks: Vec<u32> = entries
                .iter()
                .map(|&(_, v)| partition.block_of(v))
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            for &(d, v) in entries {
                nkm.insert((v, label), d);
            }
            kbl.insert(label, blocks);
        }
        BlinksIndex {
            partition,
            prune_dist,
            knl,
            nkm,
            kbl,
        }
    }

    /// The full keyword-node-list table (persistence export;
    /// [`BlinksIndex::keyword_node_list`] is the per-label lookup).
    pub fn knl_table(&self) -> &FxHashMap<LabelId, Vec<(u16, VId)>> {
        &self.knl
    }

    /// The pruning threshold the index was built with.
    pub fn prune_dist(&self) -> u32 {
        self.prune_dist
    }

    /// The underlying partition.
    pub fn partition(&self) -> &GraphPartition {
        &self.partition
    }

    /// The keyword-node list for `l` (sorted by distance), if any vertex
    /// can reach the keyword within the bound.
    pub fn keyword_node_list(&self, l: LabelId) -> Option<&[(u16, VId)]> {
        self.knl.get(&l).map(Vec::as_slice)
    }

    /// `dist(v → nearest l-node)` within the bound, if reachable.
    pub fn node_keyword_distance(&self, v: VId, l: LabelId) -> Option<u32> {
        self.nkm.get(&(v, l)).map(|&d| d as u32)
    }

    /// Blocks containing at least one vertex within the bound of `l`.
    pub fn keyword_blocks(&self, l: LabelId) -> &[u32] {
        self.kbl.get(&l).map_or(&[], Vec::as_slice)
    }

    /// Total number of (vertex, keyword) entries — the index's dominant
    /// space cost.
    pub fn num_entries(&self) -> usize {
        self.nkm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};

    /// 0(R) -> 1(A); 2(R) -> 3(C) -> 1(A)
    fn sample() -> DiGraph {
        let mut b = GraphBuilder::new();
        let r0 = b.add_vertex(LabelId(0));
        let a = b.add_vertex(LabelId(1));
        let r2 = b.add_vertex(LabelId(0));
        let c = b.add_vertex(LabelId(2));
        b.add_edge(r0, a);
        b.add_edge(r2, c);
        b.add_edge(c, a);
        b.build()
    }

    #[test]
    fn nkm_distances_are_exact() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        assert_eq!(idx.node_keyword_distance(VId(0), LabelId(1)), Some(1));
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(1)), Some(2));
        assert_eq!(idx.node_keyword_distance(VId(1), LabelId(1)), Some(0));
        assert_eq!(idx.node_keyword_distance(VId(0), LabelId(2)), None);
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(2)), Some(1));
    }

    #[test]
    fn knl_sorted_by_distance() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        let list = idx.keyword_node_list(LabelId(1)).unwrap();
        assert!(list.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(list[0], (0, VId(1)));
        assert_eq!(list.len(), 4); // every vertex reaches A within 5
    }

    #[test]
    fn prune_dist_bounds_entries() {
        let g = sample();
        let idx = BlinksIndex::build(
            &g,
            &BlinksParams {
                block_size: 2,
                prune_dist: 1,
            },
        );
        // At bound 1, vertex 2 (distance 2 from A) is not indexed for A.
        assert_eq!(idx.node_keyword_distance(VId(2), LabelId(1)), None);
        let list = idx.keyword_node_list(LabelId(1)).unwrap();
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn keyword_blocks_cover_matched_vertices() {
        let g = sample();
        let idx = BlinksIndex::build(
            &g,
            &BlinksParams {
                block_size: 2,
                prune_dist: 5,
            },
        );
        for (d, v) in idx.keyword_node_list(LabelId(1)).unwrap() {
            let _ = d;
            let b = idx.partition().block_of(*v);
            assert!(idx.keyword_blocks(LabelId(1)).contains(&b));
        }
    }

    #[test]
    fn entry_count_matches_reach() {
        let g = sample();
        let idx = BlinksIndex::build(&g, &BlinksParams::default());
        // A: 4 entries, R: {0,2} at 0 = 2 entries, C: {3 at 0, 2 at 1}.
        assert_eq!(idx.num_entries(), 4 + 2 + 2);
    }
}
