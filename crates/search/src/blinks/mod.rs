//! `rkws`: ranked keyword search after BLINKS (He et al. [12]).
//!
//! BLINKS answers the *distinct-root* semantics: for each root `r` that
//! reaches at least one node per query keyword within the pruning bound,
//! the best answer rooted at `r` is scored by
//! `scr(a) = Σ_i dist(r, p_i)`; the query returns the top-k roots.
//!
//! The implementation follows the paper's bi-level design (Sec. 5.3 of
//! the BiG-index paper summarizes it):
//!
//! - a **graph partitioner** splits vertices into blocks of a target size
//!   ([`partition`]; BFS-grown blocks stand in for METIS, see DESIGN.md);
//! - per keyword, a **keyword-node list** of `(distance, vertex)` entries
//!   sorted by distance, organized block-by-block, bounded by the
//!   pruning threshold `τ_prune`;
//! - a **node-keyword map** giving `dist(v → nearest q-node)` exactly;
//! - a **keyword-block list** for block-level pruning.
//!
//! Search pops the per-keyword lists in ascending distance (backward
//! expansion in sorted order), completes candidate roots via the
//! node-keyword map, and terminates early once the k-th best score is no
//! worse than the sum of the current frontier distances.

pub mod index;
pub mod partition;
pub mod search;

pub use index::{BlinksIndex, BlinksParams};
pub use partition::{bfs_partition, GraphPartition};
pub use search::Blinks;
