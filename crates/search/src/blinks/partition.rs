//! Graph partitioning for the BLINKS bi-level index.
//!
//! The original system uses METIS with an average block size of 1000;
//! this BFS-grown partitioner targets the same block size with decent
//! edge locality and no external dependency (see DESIGN.md,
//! "Substitutions"). Blocks are grown one at a time by undirected BFS
//! from the lowest-id unassigned vertex until the target size is reached.

use bgi_graph::{DiGraph, VId};
use std::collections::VecDeque;

/// A partition of graph vertices into contiguous blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPartition {
    block_of: Vec<u32>,
    num_blocks: usize,
}

impl GraphPartition {
    /// The block containing `v`.
    #[inline]
    pub fn block_of(&self, v: VId) -> u32 {
        self.block_of[v.index()]
    }

    /// The full block-assignment table (persistence export).
    pub fn block_table(&self) -> &[u32] {
        &self.block_of
    }

    /// Reassembles a partition from its block-assignment table (the
    /// persistence path). `num_blocks` must cover every id in the table;
    /// decoders validate this before calling.
    pub fn from_parts(block_of: Vec<u32>, num_blocks: usize) -> Self {
        GraphPartition {
            block_of,
            num_blocks,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Materializes block member lists.
    pub fn members(&self) -> Vec<Vec<VId>> {
        let mut blocks = vec![Vec::new(); self.num_blocks];
        for (i, &b) in self.block_of.iter().enumerate() {
            blocks[b as usize].push(VId(i as u32));
        }
        blocks
    }

    /// Number of edges of `g` crossing block boundaries (a locality
    /// quality measure; lower is better).
    pub fn crossing_edges(&self, g: &DiGraph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.block_of(u) != self.block_of(v))
            .count()
    }

    /// True if a vertex has an edge crossing into another block — a
    /// *portal* in BLINKS terms.
    pub fn is_portal(&self, g: &DiGraph, v: VId) -> bool {
        let b = self.block_of(v);
        g.out_neighbors(v)
            .iter()
            .chain(g.in_neighbors(v))
            .any(|&u| self.block_of(u) != b)
    }
}

/// Partitions `g` into blocks of roughly `target_size` vertices by
/// repeated undirected BFS growth.
pub fn bfs_partition(g: &DiGraph, target_size: usize) -> GraphPartition {
    assert!(target_size > 0, "block size must be positive");
    let n = g.num_vertices();
    const UNASSIGNED: u32 = u32::MAX;
    let mut block_of = vec![UNASSIGNED; n];
    let mut num_blocks = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if block_of[start as usize] != UNASSIGNED {
            continue;
        }
        let block = num_blocks as u32;
        num_blocks += 1;
        let mut size = 0usize;
        queue.clear();
        queue.push_back(VId(start));
        block_of[start as usize] = block;
        size += 1;
        while size < target_size {
            let Some(v) = queue.pop_front() else { break };
            for &u in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if block_of[u.index()] == UNASSIGNED {
                    block_of[u.index()] = block;
                    size += 1;
                    queue.push_back(u);
                    if size >= target_size {
                        break;
                    }
                }
            }
        }
    }
    GraphPartition {
        block_of,
        num_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::{GraphBuilder, LabelId};

    #[test]
    fn covers_all_vertices() {
        let g = uniform_random(500, 1500, 4, 1);
        let p = bfs_partition(&g, 50);
        for v in g.vertices() {
            assert!((p.block_of(v) as usize) < p.num_blocks());
        }
        let total: usize = p.members().iter().map(Vec::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn block_sizes_near_target() {
        let g = uniform_random(1000, 3000, 4, 2);
        let p = bfs_partition(&g, 100);
        for m in p.members() {
            assert!(m.len() <= 100);
            assert!(!m.is_empty());
        }
        // At least n / target blocks; fragmentation from greedy growth is
        // allowed but the mean block size must stay reasonable.
        assert!(p.num_blocks() >= 10);
        let mean = 1000.0 / p.num_blocks() as f64;
        assert!(mean >= 8.0, "mean block size {mean}");
    }

    #[test]
    fn locality_beats_random_assignment() {
        // On a long chain, BFS partitioning should cut far fewer edges
        // than round-robin.
        let mut b = GraphBuilder::new();
        for _ in 0..400 {
            b.add_vertex(LabelId(0));
        }
        for i in 0..399u32 {
            b.add_edge(VId(i), VId(i + 1));
        }
        let g = b.build();
        let p = bfs_partition(&g, 50);
        // Chain of 400 in blocks of 50 -> exactly 7 cuts.
        assert_eq!(p.crossing_edges(&g), 7);
    }

    #[test]
    fn portals_are_boundary_vertices() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(LabelId(0));
        }
        for i in 0..3u32 {
            b.add_edge(VId(i), VId(i + 1));
        }
        let g = b.build();
        let p = bfs_partition(&g, 2);
        assert_eq!(p.num_blocks(), 2);
        // The chain 0-1 | 2-3: vertices 1 and 2 are portals.
        assert!(p.is_portal(&g, VId(1)));
        assert!(p.is_portal(&g, VId(2)));
        assert!(!p.is_portal(&g, VId(0)));
    }

    #[test]
    fn singleton_blocks_for_isolated_vertices() {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(LabelId(0));
        }
        let g = b.build();
        let p = bfs_partition(&g, 10);
        // No edges: BFS cannot grow, 3 singleton blocks.
        assert_eq!(p.num_blocks(), 3);
    }
}
