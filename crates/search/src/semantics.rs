//! The plug-in surface for keyword search semantics — the `f` of the
//! paper's problem statement (Def. 2.3).
//!
//! BiG-index only assumes `f` is *label-based* (vertices match keywords
//! by label) and *traversal-based* (its answers survive path-preserving
//! summarization). Any [`KeywordSearch`] implementation can therefore be
//! evaluated on the data graph or on any summary layer unchanged; the
//! index for the layer is rebuilt by [`KeywordSearch::build_index`].

use crate::answer::AnswerGraph;
use crate::cancel::{Budget, Interrupted};
use crate::outcome::SearchOutcome;
use crate::query::KeywordQuery;
use bgi_graph::DiGraph;

/// A keyword search algorithm with a per-graph index.
pub trait KeywordSearch {
    /// The algorithm's precomputed per-graph index.
    type Index;

    /// Human-readable algorithm name (for reports).
    fn name(&self) -> &'static str;

    /// Builds the algorithm's index over `g`.
    fn build_index(&self, g: &DiGraph) -> Self::Index;

    /// Evaluates `query` on `g` using `index`, returning up to `k`
    /// answers ranked best (lowest score) first.
    fn search(
        &self,
        g: &DiGraph,
        index: &Self::Index,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph>;

    /// [`KeywordSearch::search`] under a cooperative [`Budget`]: the
    /// algorithm checks the budget inside its expansion/enumeration
    /// loops and returns [`Interrupted`] (discarding partial results —
    /// a truncated top-k is not a correct top-k) once it is exhausted.
    ///
    /// The default implementation checks once up front and then runs
    /// uninterruptible; the built-in algorithms override it with
    /// in-loop checks.
    fn search_budgeted(
        &self,
        g: &DiGraph,
        index: &Self::Index,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<AnswerGraph>, Interrupted> {
        budget.check_now()?;
        Ok(self.search(g, index, query, k))
    }

    /// Best-effort [`KeywordSearch::search`] under a cooperative
    /// [`Budget`]: on budget exhaustion the algorithm returns whatever
    /// answers it already discovered, marked with a
    /// [`crate::Completeness`] describing how much of the search space
    /// backs them, instead of discarding them. [`Interrupted`] is
    /// reserved for the case where *nothing* was found before the
    /// budget ran out — a caller never receives an empty best-effort
    /// success.
    ///
    /// The default implementation delegates to
    /// [`KeywordSearch::search_budgeted`] (all-or-nothing): exact on
    /// success, [`Interrupted`] otherwise. The built-in algorithms
    /// override it with real partial-result support.
    fn search_anytime(
        &self,
        g: &DiGraph,
        index: &Self::Index,
        query: &KeywordQuery,
        k: usize,
        budget: &Budget,
    ) -> Result<SearchOutcome, Interrupted> {
        self.search_budgeted(g, index, query, k, budget)
            .map(SearchOutcome::exact)
    }

    /// Convenience: build the index and search in one call.
    fn search_fresh(&self, g: &DiGraph, query: &KeywordQuery, k: usize) -> Vec<AnswerGraph> {
        let index = self.build_index(g);
        self.search(g, &index, query, k)
    }
}
