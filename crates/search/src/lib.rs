//! # bgi-search
//!
//! Keyword search algorithms on directed labeled graphs — the plug-in
//! semantics `f` of the BiG-index paper (Secs. 2 and 5):
//!
//! - [`banks`]: **bkws**, backward keyword search in the style of BANKS
//!   (Bhalotia et al., ICDE'02): find roots that reach one node per query
//!   keyword within `d_max` hops, ranked by total root-to-keyword distance.
//! - [`blinks`]: **rkws**, ranked keyword search with a bi-level index in
//!   the style of BLINKS (He et al., SIGMOD'07): a graph partitioner
//!   (stand-in for METIS), per-keyword node lists sorted by distance, a
//!   node-keyword distance map, and sorted backward expansion with
//!   top-k early termination under the distinct-root semantics.
//! - [`rclique`]: **dkws**, distance-based keyword search in the style of
//!   r-clique (Kargar & An, VLDB'11): a bounded neighbor index, a greedy
//!   approximate best answer, and top-k enumeration by search-space
//!   decomposition.
//!
//! All three implement the [`semantics::KeywordSearch`] trait, which is
//! the exact surface BiG-index needs: they are label-based (match
//! `L(v) = q`) and traversal-based (path-preserving summaries keep their
//! answers), so they run unchanged on summary graphs.
//!
//! For deadline-bound serving, every algorithm also supports
//! *cooperative* interruption through [`cancel::Budget`] — see
//! [`semantics::KeywordSearch::search_budgeted`] for the strict
//! all-or-nothing contract and
//! [`semantics::KeywordSearch::search_anytime`] for best-effort
//! results with an explicit [`outcome::Completeness`] marker (the
//! r-clique implementation is a true anytime branch-and-bound with a
//! sound optimality bound).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod banks;
pub mod bidirectional;
pub mod blinks;
pub mod cancel;
pub mod outcome;
pub mod patch;
pub mod query;
pub mod rclique;
pub mod semantics;

pub use answer::AnswerGraph;
pub use banks::Banks;
pub use bidirectional::Bidirectional;
pub use blinks::Blinks;
pub use cancel::{Budget, BudgetSeed, Interrupted};
pub use outcome::{Completeness, SearchOutcome};
pub use patch::{diff_graphs, GraphDiff};
pub use query::KeywordQuery;
pub use rclique::RClique;
pub use semantics::KeywordSearch;
