//! Best-effort search results with an explicit completeness marker.
//!
//! Deadline-bound serving must degrade, not fail: when a [`crate::Budget`]
//! exhausts mid-search, throwing away everything the search already
//! found turns load pressure into empty timeouts. A [`SearchOutcome`]
//! instead carries whatever answers were discovered together with a
//! [`Completeness`] marker that tells the caller exactly how much trust
//! the ranking deserves — from "this is the true top-k" down to "a
//! correct but arbitrarily incomplete subset".

use crate::answer::AnswerGraph;

/// How complete a search result is.
///
/// Ordered by degradation: [`Completeness::Exact`] is the strongest
/// claim, [`Completeness::Truncated`] the weakest. Multi-stage
/// pipelines combine per-stage markers with [`Completeness::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// The enumeration ran to its own termination condition: the
    /// answers are the algorithm's true top-k.
    Exact,
    /// Best-first improvement was interrupted: the answers are the best
    /// found so far, and `bound` is a *sound optimality gap* — the best
    /// reported answer's weight exceeds the true optimum by at most
    /// `bound` (0 means the best answer is provably optimal even though
    /// enumeration did not finish).
    Anytime {
        /// Upper bound on `best_reported_weight − true_optimum_weight`.
        bound: u64,
    },
    /// The enumeration was interrupted without a usable frontier bound:
    /// every answer is individually correct, but the set may be
    /// arbitrarily far from the true top-k.
    Truncated,
}

impl Completeness {
    /// True for [`Completeness::Exact`].
    pub fn is_exact(self) -> bool {
        matches!(self, Completeness::Exact)
    }

    /// The optimality-gap bound, if this marker carries one
    /// (`Exact` is a zero gap by definition).
    pub fn bound(self) -> Option<u64> {
        match self {
            Completeness::Exact => Some(0),
            Completeness::Anytime { bound } => Some(bound),
            Completeness::Truncated => None,
        }
    }

    /// Combines two stage markers into the weaker overall claim: a
    /// pipeline is only as complete as its least complete stage. Two
    /// `Anytime` bounds keep the larger gap.
    #[must_use]
    pub fn merge(self, other: Completeness) -> Completeness {
        use Completeness::{Anytime, Exact, Truncated};
        match (self, other) {
            (Exact, c) | (c, Exact) => c,
            (Truncated, _) | (_, Truncated) => Truncated,
            (Anytime { bound: a }, Anytime { bound: b }) => Anytime { bound: a.max(b) },
        }
    }
}

impl std::fmt::Display for Completeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completeness::Exact => f.write_str("exact"),
            Completeness::Anytime { bound } => write!(f, "anytime(bound={bound})"),
            Completeness::Truncated => f.write_str("truncated"),
        }
    }
}

/// Ranked answers plus how complete they are — what
/// [`crate::KeywordSearch::search_anytime`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Final answers, ranked best (lowest weight) first, at most `k`.
    pub answers: Vec<AnswerGraph>,
    /// How much of the search space backs the ranking.
    pub completeness: Completeness,
}

impl SearchOutcome {
    /// An exact outcome (the default for algorithms that ran to
    /// completion).
    pub fn exact(answers: Vec<AnswerGraph>) -> SearchOutcome {
        SearchOutcome {
            answers,
            completeness: Completeness::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_the_weaker_claim() {
        use Completeness::{Anytime, Exact, Truncated};
        assert_eq!(Exact.merge(Exact), Exact);
        assert_eq!(Exact.merge(Anytime { bound: 3 }), Anytime { bound: 3 });
        assert_eq!(
            Anytime { bound: 3 }.merge(Anytime { bound: 7 }),
            Anytime { bound: 7 }
        );
        assert_eq!(Anytime { bound: 3 }.merge(Truncated), Truncated);
        assert_eq!(Truncated.merge(Exact), Truncated);
    }

    #[test]
    fn bound_reflects_the_marker() {
        assert_eq!(Completeness::Exact.bound(), Some(0));
        assert_eq!(Completeness::Anytime { bound: 9 }.bound(), Some(9));
        assert_eq!(Completeness::Truncated.bound(), None);
    }

    #[test]
    fn display_is_wire_friendly() {
        assert_eq!(Completeness::Exact.to_string(), "exact");
        assert_eq!(
            Completeness::Anytime { bound: 4 }.to_string(),
            "anytime(bound=4)"
        );
        assert_eq!(Completeness::Truncated.to_string(), "truncated");
    }
}
