//! Bidirectional expansion keyword search, after Kacholia et al.
//! (VLDB'05) — listed by the BiG-index paper among the algorithms its
//! framework supports (Sec. 5, "e.g., [12], [15], [1], [14], [32]").
//!
//! Answers follow the same distinct-root semantics as [`crate::Banks`],
//! so the two implementations cross-validate each other; the *strategy*
//! differs: expansion runs backward from keyword nodes prioritized by
//! *spreading activation* (keyword nodes inject `1/|V_q|`, activation
//! decays by `μ` per edge), and a vertex reached by some — but not all —
//! keywords is *forward-validated* by a bounded forward BFS instead of
//! waiting for every backward frontier to arrive. High-activation hubs
//! therefore complete early, which is exactly Kacholia et al.'s case
//! for bidirectional search.

use crate::answer::{rank_and_truncate, AnswerGraph};
use crate::banks::{backward_reach, path_to_keyword, BanksIndex};
use crate::query::KeywordQuery;
use crate::semantics::KeywordSearch;
use bgi_graph::traversal::{BfsScratch, Direction};
use bgi_graph::{DiGraph, VId};
use rustc_hash::FxHashMap;

/// Bidirectional expansion search.
#[derive(Debug, Clone, Copy)]
pub struct Bidirectional {
    /// Activation decay per edge (`μ`); Kacholia et al. suggest values
    /// well below 1 so distant matches contribute little.
    pub decay: f64,
}

impl Default for Bidirectional {
    fn default() -> Self {
        Bidirectional { decay: 0.5 }
    }
}

impl KeywordSearch for Bidirectional {
    type Index = BanksIndex;

    fn name(&self) -> &'static str {
        "bidir"
    }

    fn build_index(&self, g: &DiGraph) -> BanksIndex {
        use crate::banks::Banks;
        Banks.build_index(g)
    }

    fn search(
        &self,
        g: &DiGraph,
        index: &BanksIndex,
        query: &KeywordQuery,
        k: usize,
    ) -> Vec<AnswerGraph> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let n = query.len();
        // Bidirectional split: the most selective keyword expands
        // backward the full d_max (every root must appear in its reach);
        // the others expand only half-way and are completed by forward
        // validation from the candidates — the bidirectional meeting in
        // the middle.
        let pivot = (0..n)
            .min_by_key(|&i| index.vertices_with(query.keywords[i]).len())
            .unwrap();
        let half = query.dmax.div_ceil(2);
        let mut reaches = Vec::with_capacity(n);
        for (i, &q) in query.keywords.iter().enumerate() {
            let sources = index.vertices_with(q);
            if sources.is_empty() {
                return Vec::new();
            }
            let bound = if i == pivot { query.dmax } else { half };
            reaches.push(backward_reach(g, sources, bound));
        }

        // Activation: Σ_i decay^{dist_i(v)} / |V_{q_i}| over keywords
        // that reached v — the spreading-activation score.
        let mut activation: FxHashMap<VId, f64> = FxHashMap::default();
        let mut hits: FxHashMap<VId, usize> = FxHashMap::default();
        for (i, reach) in reaches.iter().enumerate() {
            let denom = index.vertices_with(query.keywords[i]).len().max(1) as f64;
            for (&v, &(d, _)) in reach {
                *activation.entry(v).or_insert(0.0) += self.decay.powi(d as i32) / denom;
                *hits.entry(v).or_insert(0) += 1;
            }
        }

        // Candidates ordered by activation, highest first: hub-like
        // vertices are validated before the fringe. Every valid root is
        // a candidate because the pivot keyword's reach is complete.
        let mut order: Vec<(VId, f64)> = activation.into_iter().collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let mut scratch = BfsScratch::new(g.num_vertices());
        let mut answers = Vec::new();
        for (v, _act) in order {
            if !reaches[pivot].contains_key(&v) {
                continue; // cannot reach the pivot keyword within d_max
            }
            let hit = hits[&v];
            if hit == 0 {
                continue;
            }
            // Forward validation: one bounded forward BFS from v gives
            // the distances to every keyword the backward frontiers have
            // not (yet) established.
            let mut dists = vec![None; n];
            let mut need_forward = false;
            for (i, reach) in reaches.iter().enumerate() {
                match reach.get(&v) {
                    Some(&(d, _)) => dists[i] = Some(d),
                    None => need_forward = true,
                }
            }
            if need_forward {
                scratch.run(g, &[v], Direction::Forward, query.dmax, |_, _| true);
                for (i, dist) in dists.iter_mut().enumerate() {
                    if dist.is_none() {
                        let best = index
                            .vertices_with(query.keywords[i])
                            .iter()
                            .map(|&t| scratch.dist(t))
                            .min()
                            .unwrap_or(u32::MAX);
                        if best <= query.dmax {
                            *dist = Some(best);
                        }
                    }
                }
            }
            if dists.iter().any(Option::is_none) {
                continue;
            }
            // Build the answer tree: backward-reach paths where known,
            // forward shortest paths otherwise.
            let mut vertices = Vec::new();
            let mut edges = Vec::new();
            let mut keyword_matches = vec![Vec::new(); n];
            let mut score = 0u64;
            let mut ok = true;
            for (i, reach) in reaches.iter().enumerate() {
                score += dists[i].unwrap() as u64;
                let path = if reach.contains_key(&v) {
                    path_to_keyword(reach, v)
                } else {
                    match forward_path(g, v, index.vertices_with(query.keywords[i]), query.dmax) {
                        Some(p) => p,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                };
                for w in path.windows(2) {
                    edges.push((w[0], w[1]));
                }
                keyword_matches[i].push(*path.last().unwrap());
                vertices.extend(path);
            }
            if ok {
                answers.push(AnswerGraph::new(
                    vertices,
                    edges,
                    keyword_matches,
                    Some(v),
                    score,
                ));
            }
        }
        rank_and_truncate(answers, k)
    }
}

/// Shortest forward path from `root` to the nearest of `targets` within
/// `dmax`, via parent pointers.
fn forward_path(g: &DiGraph, root: VId, targets: &[VId], dmax: u32) -> Option<Vec<VId>> {
    use std::collections::VecDeque;
    let target_set: rustc_hash::FxHashSet<VId> = targets.iter().copied().collect();
    if target_set.contains(&root) {
        return Some(vec![root]);
    }
    let mut parent: FxHashMap<VId, VId> = FxHashMap::default();
    let mut dist: FxHashMap<VId, u32> = FxHashMap::default();
    let mut queue = VecDeque::new();
    dist.insert(root, 0);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if d >= dmax {
            continue;
        }
        for &w in g.out_neighbors(u) {
            if dist.contains_key(&w) {
                continue;
            }
            dist.insert(w, d + 1);
            parent.insert(w, u);
            if target_set.contains(&w) {
                let mut path = vec![w];
                let mut cur = w;
                while cur != root {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banks::Banks;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::LabelId;

    #[test]
    fn matches_banks_on_random_graphs() {
        for seed in 0..8 {
            let g = uniform_random(120, 360, 5, seed);
            let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
            let a = Bidirectional::default().search_fresh(&g, &q, 1000);
            let b = Banks.search_fresh(&g, &q, 1000);
            let key = |x: &AnswerGraph| (x.root, x.score);
            let mut ka: Vec<_> = a.iter().map(key).collect();
            let mut kb: Vec<_> = b.iter().map(key).collect();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb, "seed {seed}");
        }
    }

    #[test]
    fn answers_validate() {
        let g = uniform_random(150, 450, 4, 31);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(2), LabelId(3)], 3);
        for a in Bidirectional::default().search_fresh(&g, &q, 20) {
            assert!(a.validate(&g, &q.keywords));
        }
    }

    #[test]
    fn missing_keyword_is_empty() {
        let g = uniform_random(60, 120, 2, 3);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(7)], 3);
        assert!(Bidirectional::default().search_fresh(&g, &q, 5).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let g = uniform_random(100, 300, 3, 5);
        let q = KeywordQuery::new(vec![LabelId(0)], 3);
        let a = Bidirectional::default().search_fresh(&g, &q, 3);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].score <= w[1].score));
    }
}
