//! Cooperative-budget behavior of the three plugged-in semantics:
//! an exhausted budget interrupts mid-search, an unlimited budget (or
//! a generous deadline) reproduces the plain `search` results exactly.

use bgi_graph::generate::uniform_random;
use bgi_graph::LabelId;
use bgi_search::{Banks, Blinks, Budget, Interrupted, KeywordQuery, KeywordSearch, RClique};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn check_semantics<F: KeywordSearch>(algo: &F) {
    let g = uniform_random(200, 600, 5, 42);
    let index = algo.build_index(&g);
    let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);

    // Zero deadline: interrupted, never hangs.
    let expired = Budget::with_timeout(Duration::ZERO);
    assert_eq!(
        algo.search_budgeted(&g, &index, &q, 10, &expired),
        Err(Interrupted),
        "{}: zero budget must interrupt",
        algo.name()
    );

    // Pre-raised cancel flag: interrupted.
    let flag = Arc::new(AtomicBool::new(true));
    let cancelled = Budget::unlimited().cancelled_by(Arc::clone(&flag));
    assert_eq!(
        algo.search_budgeted(&g, &index, &q, 10, &cancelled),
        Err(Interrupted),
        "{}: raised cancel flag must interrupt",
        algo.name()
    );
    flag.store(false, Ordering::Relaxed);

    // Unlimited and generous budgets agree with plain search.
    let plain = algo.search(&g, &index, &q, 10);
    let unlimited = algo
        .search_budgeted(&g, &index, &q, 10, &Budget::unlimited())
        .expect("unlimited budget never interrupts");
    let generous = algo
        .search_budgeted(
            &g,
            &index,
            &q,
            10,
            &Budget::with_timeout(Duration::from_secs(600)),
        )
        .expect("generous budget should not interrupt this tiny search");
    let key = |answers: &[bgi_search::AnswerGraph]| {
        answers
            .iter()
            .map(|a| (a.root, a.score))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&plain), key(&unlimited), "{}", algo.name());
    assert_eq!(key(&plain), key(&generous), "{}", algo.name());
}

#[test]
fn banks_respects_budget() {
    check_semantics(&Banks);
}

#[test]
fn blinks_respects_budget() {
    check_semantics(&Blinks::default());
}

#[test]
fn rclique_respects_budget() {
    check_semantics(&RClique::default());
}
