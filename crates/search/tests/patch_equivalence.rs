//! Patched indexes must be indistinguishable from rebuilt ones.
//!
//! Each index type's `patched` entry point claims exact equivalence to
//! a full rebuild (for BLINKS: a rebuild over the same extended
//! partition). These tests drive randomized edit scripts — edge
//! deletions, edge insertions, vertex appends — over random graphs and
//! compare the patched structure against the reference constructor with
//! `==` (all index types derive `PartialEq` over their full contents).

use bgi_graph::generate::uniform_random;
use bgi_graph::{DiGraph, GraphBuilder, LabelId, VId};
use bgi_search::blinks::{BlinksIndex, BlinksParams};
use bgi_search::patch::diff_graphs;
use bgi_search::rclique::NeighborIndex;
use bgi_search::{Banks, KeywordSearch, RClique};

/// Tiny deterministic generator (xorshift64*) so the edit scripts are
/// reproducible without an external rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Applies a random edit script to `old`: `dels` edge deletions,
/// `ins` edge insertions, `adds` appended vertices (each wired to one
/// random existing vertex so it is not isolated).
fn mutate(old: &DiGraph, seed: u64, dels: usize, ins: usize, adds: usize) -> DiGraph {
    let mut rng = Rng(seed | 1);
    let mut labels = old.labels().to_vec();
    let mut edges: Vec<(VId, VId)> = old.edges().collect();
    let alphabet = old.alphabet_size().max(1);
    for _ in 0..dels {
        if edges.is_empty() {
            break;
        }
        let i = rng.below(edges.len());
        edges.swap_remove(i);
    }
    let n_old = old.num_vertices();
    for _ in 0..ins {
        let u = VId(rng.below(n_old) as u32);
        let v = VId(rng.below(n_old) as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    for _ in 0..adds {
        let id = VId(labels.len() as u32);
        labels.push(LabelId(rng.below(alphabet) as u32));
        let anchor = VId(rng.below(n_old) as u32);
        if rng.next().is_multiple_of(2) {
            edges.push((anchor, id));
        } else {
            edges.push((id, anchor));
        }
    }
    GraphBuilder::from_edges(labels, edges)
}

/// Edit-script shapes exercised by every test below: pure deletions,
/// pure insertions, pure vertex appends, and mixed batches.
const SCRIPTS: &[(usize, usize, usize)] = &[(2, 0, 0), (0, 2, 0), (0, 0, 2), (2, 3, 2), (1, 1, 1)];

#[test]
fn banks_patch_equals_rebuild() {
    for seed in 0..8u64 {
        let old = uniform_random(150, 450, 6, seed);
        for &(dels, ins, adds) in SCRIPTS {
            let new = mutate(&old, seed * 31 + 7, dels, ins, adds);
            let diff = diff_graphs(&old, &new, usize::MAX).expect("compatible by construction");
            let patched = Banks.build_index(&old).patched(&new, &diff);
            assert_eq!(patched, Banks.build_index(&new), "seed {seed}");
        }
    }
}

#[test]
fn neighbor_patch_equals_rebuild() {
    for seed in 0..6u64 {
        // Sparse enough that radius-2 balls stay local and the patch
        // path accepts the edit.
        let old = uniform_random(600, 900, 6, seed);
        let base = NeighborIndex::build(&old, 2);
        for &(dels, ins, adds) in SCRIPTS {
            let new = mutate(&old, seed * 131 + 5, dels, ins, adds);
            let diff = diff_graphs(&old, &new, usize::MAX).expect("compatible by construction");
            let patched = base
                .patched(&old, &new, &diff)
                .expect("small edit on a sparse graph must stay local");
            assert_eq!(patched, NeighborIndex::build(&new, 2), "seed {seed}");
        }
    }
}

#[test]
fn neighbor_patch_survives_global_damage_lazily() {
    // A star: every vertex is within one hop of the hub, so touching a
    // hub edge invalidates every ball. The patch must still succeed —
    // the dirty rows are deferred, recomputed on first read — and the
    // result must be indistinguishable from a full rebuild, including
    // its persistence export.
    let n = 64u32;
    let labels = vec![LabelId(0); n as usize];
    let edges: Vec<(VId, VId)> = (1..n).map(|v| (VId(0), VId(v))).collect();
    let old = GraphBuilder::from_edges(labels.clone(), edges.clone());
    let mut fewer = edges;
    fewer.pop();
    let new = GraphBuilder::from_edges(labels.clone(), fewer.clone());
    let diff = diff_graphs(&old, &new, usize::MAX).unwrap();
    let patched = NeighborIndex::build(&old, 2)
        .patched(&old, &new, &diff)
        .expect("lazy patch never declines a compatible diff");
    let rebuilt = NeighborIndex::build(&new, 2);
    assert_eq!(patched, rebuilt);
    let (po, pe) = patched.csr_parts();
    let (ro, re) = rebuilt.csr_parts();
    assert_eq!(
        (&*po, &*pe),
        (&*ro, &*re),
        "export must materialize dirty rows"
    );

    // Patches chain: a second edit on the already-patched index keeps
    // surviving cached rows and re-invalidates the rest.
    fewer.pop();
    let newer = GraphBuilder::from_edges(labels, fewer);
    let diff2 = diff_graphs(&new, &newer, usize::MAX).unwrap();
    let twice = patched.patched(&new, &newer, &diff2).unwrap();
    assert_eq!(twice, NeighborIndex::build(&newer, 2));
}

#[test]
fn blinks_patch_equals_rebuild_over_same_partition() {
    let params = BlinksParams {
        block_size: 40,
        prune_dist: 3,
    };
    for seed in 0..6u64 {
        let old = uniform_random(400, 700, 6, seed);
        let base = BlinksIndex::build(&old, &params);
        for &(dels, ins, adds) in SCRIPTS {
            let new = mutate(&old, seed * 977 + 3, dels, ins, adds);
            let diff = diff_graphs(&old, &new, usize::MAX).expect("compatible by construction");
            let Some(patched) = base.patched(&old, &new, &diff) else {
                // Affected set crossed the size threshold — a legal
                // fallback, but the sparse setup should keep it rare.
                continue;
            };
            let rebuilt = BlinksIndex::build_with_partition(
                &new,
                patched.partition().clone(),
                params.prune_dist,
            );
            assert_eq!(patched, rebuilt, "seed {seed} script {dels}/{ins}/{adds}");
        }
    }
}

#[test]
fn blinks_patch_extends_partition_with_singletons() {
    let params = BlinksParams {
        block_size: 25,
        prune_dist: 3,
    };
    let old = uniform_random(120, 240, 4, 9);
    let base = BlinksIndex::build(&old, &params);
    let new = mutate(&old, 77, 0, 0, 3);
    let diff = diff_graphs(&old, &new, usize::MAX).unwrap();
    let patched = base
        .patched(&old, &new, &diff)
        .expect("3 appends are local");
    let p = patched.partition();
    assert_eq!(p.num_blocks(), base.partition().num_blocks() + 3);
    for k in 0..3u32 {
        let v = VId(120 + k);
        assert_eq!(
            p.block_of(v) as usize,
            base.partition().num_blocks() + k as usize
        );
    }
    // Existing assignments are untouched.
    for v in 0..120u32 {
        assert_eq!(p.block_of(VId(v)), base.partition().block_of(VId(v)));
    }
}

#[test]
fn rclique_patch_equals_rebuild() {
    let algo = RClique {
        radius: 2,
        max_index_bytes: None,
    };
    for seed in 0..4u64 {
        let old = uniform_random(500, 750, 5, seed);
        let base = algo.build_index(&old);
        for &(dels, ins, adds) in SCRIPTS {
            let new = mutate(&old, seed * 613 + 11, dels, ins, adds);
            let diff = diff_graphs(&old, &new, usize::MAX).expect("compatible by construction");
            let patched = base
                .patched(&old, &new, &diff)
                .expect("small edit on a sparse graph must stay local");
            assert_eq!(patched, algo.build_index(&new), "seed {seed}");
        }
    }
}
