//! Property tests for the anytime r-clique search.
//!
//! Exploration is deterministic for a given check-limit budget and a
//! larger limit performs a strict superset of a smaller limit's work,
//! so two properties must hold:
//!
//! 1. **Quality is monotone in budget** — the best reported answer's
//!    weight never gets worse as the check limit grows, and once any
//!    budget produces answers, every larger budget does too.
//! 2. **The optimality bound is sound** — for instances small enough to
//!    solve exhaustively, the best reported answer exceeds the true
//!    optimum by at most the reported `Anytime` bound, and an `Exact`
//!    run with unbounded `k` finds the true optimum itself.

use bgi_graph::generate::uniform_random;
use bgi_graph::LabelId;
use bgi_search::{Budget, Completeness, KeywordQuery, KeywordSearch, RClique};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn anytime_quality_is_monotone_in_budget(
        n in 30usize..90,
        extra in 0usize..120,
        seed in 0u64..1_000,
    ) {
        let g = uniform_random(n, n + extra, 4, seed);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        let mut prev_best: Option<u64> = None;
        for limit in [0u64, 1, 2, 4, 8, 16, 32, 64, 256, 1024, 1 << 20] {
            let best = rc
                .search_anytime(&g, &idx, &q, 5, &Budget::with_check_limit(limit))
                .ok()
                .and_then(|o| o.answers.first().map(|a| a.score));
            match (prev_best, best) {
                (Some(p), Some(b)) => {
                    prop_assert!(
                        b <= p,
                        "limit {limit}: best {b} worse than {p} at a smaller budget"
                    );
                }
                (Some(_), None) => prop_assert!(
                    false,
                    "limit {limit}: answers vanished as the budget grew"
                ),
                _ => {}
            }
            prev_best = best.or(prev_best);
        }
    }

    #[test]
    fn reported_bound_is_sound_vs_exhaustive_optimum(
        n in 20usize..60,
        seed in 0u64..1_000,
        limit in 0u64..200,
    ) {
        let g = uniform_random(n, 2 * n, 3, seed);
        let rc = RClique::default();
        let idx = rc.build_index(&g);
        let q = KeywordQuery::new(vec![LabelId(0), LabelId(1)], 4);
        // Exhaustive ground truth: the instance is small enough to try
        // every content pair.
        let lists = idx.label_lists();
        let mut opt: Option<u64> = None;
        for &u in &lists[0] {
            for &v in &lists[1] {
                if let Some(d) = idx.neighbor.distance(u, v) {
                    if d <= 4 {
                        let w = d as u64;
                        opt = Some(opt.map_or(w, |o: u64| o.min(w)));
                    }
                }
            }
        }
        match rc.search_anytime(&g, &idx, &q, 1_000, &Budget::with_check_limit(limit)) {
            Ok(outcome) => match outcome.completeness {
                Completeness::Exact => {
                    // With k larger than the answer count, an exact run
                    // enumerates everything: the top answer is the true
                    // optimum (both empty when no answer exists).
                    prop_assert_eq!(
                        outcome.answers.first().map(|a| a.score),
                        opt
                    );
                }
                Completeness::Anytime { bound } => {
                    let opt = opt.expect("an answer was found, so one exists");
                    let best = outcome.answers[0].score;
                    prop_assert!(
                        best <= opt + bound,
                        "best {best} exceeds optimum {opt} by more than the bound {bound}"
                    );
                }
                Completeness::Truncated => prop_assert!(
                    false,
                    "rclique never returns a truncated success"
                ),
            },
            // Nothing usable found before the limit: allowed only while
            // the budget is genuinely tiny; with answers present the
            // greedy seed's own op slice guarantees one.
            Err(_) => prop_assert!(
                opt.is_none(),
                "non-empty instance returned Interrupted despite the seed slice"
            ),
        }
    }
}
