//! Structured diagnostics: the [`Report`] returned by
//! [`crate::check_index`], its per-invariant [`Check`]s, and the
//! [`Witness`] values that pin a violation to a concrete vertex, edge,
//! or label mapping.

use bgi_graph::{LabelId, VId};
use std::fmt;

/// The invariants [`crate::check_index`] verifies, each traceable to a
/// statement in the paper (see DESIGN.md, "Verification layer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// `G_Ont` is an acyclic DAG with a coherent topological order.
    OntologyAcyclic,
    /// Every configuration entry `ℓ → ℓ′` maps a label to a *strict
    /// ancestor* in `G_Ont` (Def. 2.2: label-preserving generalization).
    ConfigAncestry,
    /// Each layer's dense label map agrees with its configuration
    /// (`map[ℓ] = Cᵐ(ℓ)`, identity off the domain).
    LabelMapConsistent,
    /// Every `G^{m-1}` edge maps to a `G^m` edge under `χ` — by
    /// induction, every path is preserved (Def. 2.1).
    PathPreserving,
    /// Every vertex keeps its (generalized) label across summarization.
    LabelPreserving,
    /// No summary edge lacks a pre-image: `G^m` has no connectivity
    /// beyond the quotient of `Gen(G^{m-1}, Cᵐ)`.
    NoPhantomEdges,
    /// The summary partition is stable on the generalized graph (only
    /// checked for the maximal summarizer; k-bounded partitions are
    /// stable only to depth `k`).
    PartitionStable,
    /// `χ⁻¹` round-trips: `Bisim⁻¹(Bisim(v)) ∋ v` for every vertex.
    ChiRoundTrip,
    /// The `χ⁻¹` member lists partition the lower layer exactly: no
    /// vertex missing, none duplicated, no empty supernode, and every
    /// member maps back up to its list's supernode.
    MembersPartition,
    /// The index's precomputed per-layer label supports match a fresh
    /// recount of each layer graph.
    SupportCounts,
    /// Sharded deployments only: every ownership-crossing edge of the
    /// base graph appears in exactly one cut list (the list of the
    /// shard owning its source), and no cut list carries an edge that
    /// is absent or internal. Checked by
    /// [`crate::check_shard_cuts`], not part of [`Invariant::ALL`]
    /// (monolithic indexes have no shards).
    ShardCutAccounting,
}

impl Invariant {
    /// All invariants, in report order.
    pub const ALL: [Invariant; 10] = [
        Invariant::OntologyAcyclic,
        Invariant::ConfigAncestry,
        Invariant::LabelMapConsistent,
        Invariant::PathPreserving,
        Invariant::LabelPreserving,
        Invariant::NoPhantomEdges,
        Invariant::PartitionStable,
        Invariant::ChiRoundTrip,
        Invariant::MembersPartition,
        Invariant::SupportCounts,
    ];

    /// Short stable name (used by the CLI and log lines).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::OntologyAcyclic => "ontology-acyclic",
            Invariant::ConfigAncestry => "config-ancestry",
            Invariant::LabelMapConsistent => "label-map-consistent",
            Invariant::PathPreserving => "path-preserving",
            Invariant::LabelPreserving => "label-preserving",
            Invariant::NoPhantomEdges => "no-phantom-edges",
            Invariant::PartitionStable => "partition-stable",
            Invariant::ChiRoundTrip => "chi-round-trip",
            Invariant::MembersPartition => "members-partition",
            Invariant::SupportCounts => "support-counts",
            Invariant::ShardCutAccounting => "shard-cut-accounting",
        }
    }
}

/// Outcome of one invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The invariant holds everywhere it applies.
    Pass,
    /// At least one violation was found (see the witnesses).
    Fail,
    /// The invariant does not apply to this index (e.g. partition
    /// stability under a k-bounded summarizer).
    Skipped,
}

/// A concrete offender pinning a violation to index coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A vertex of the layer-`layer` graph.
    Vertex {
        /// Layer the vertex lives in.
        layer: usize,
        /// The offending vertex.
        v: VId,
    },
    /// An edge of the layer-`layer` graph.
    Edge {
        /// Layer the edge lives in.
        layer: usize,
        /// Edge source.
        u: VId,
        /// Edge target.
        v: VId,
    },
    /// A label mapping of layer `layer`'s configuration (or an ontology
    /// subtype edge when `layer == 0`).
    Mapping {
        /// Layer whose configuration contains the mapping.
        layer: usize,
        /// Source label `ℓ`.
        from: LabelId,
        /// Target label `ℓ′`.
        to: LabelId,
    },
    /// A precomputed-vs-recounted support mismatch.
    Support {
        /// Layer of the mismatch.
        layer: usize,
        /// The label whose count disagrees.
        label: LabelId,
        /// The index's precomputed count.
        stored: u64,
        /// The fresh recount.
        actual: u64,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Witness::Vertex { layer, v } => write!(f, "L{layer} vertex {}", v.0),
            Witness::Edge { layer, u, v } => {
                write!(f, "L{layer} edge {} -> {}", u.0, v.0)
            }
            Witness::Mapping { layer, from, to } => {
                write!(f, "L{layer} mapping {} -> {}", from.0, to.0)
            }
            Witness::Support {
                layer,
                label,
                stored,
                actual,
            } => write!(
                f,
                "L{layer} label {}: stored {stored}, recounted {actual}",
                label.0
            ),
        }
    }
}

/// Maximum number of witnesses retained per invariant; further
/// violations are counted but not materialized.
pub(crate) const MAX_WITNESSES: usize = 8;

/// Result of checking one invariant across the whole hierarchy.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which invariant this is.
    pub invariant: Invariant,
    /// Pass, fail, or skipped.
    pub status: Status,
    /// Total number of violations found (may exceed `witnesses.len()`).
    pub violations: usize,
    /// A capped sample of concrete offenders.
    pub witnesses: Vec<Witness>,
    /// Human-oriented context (what was checked, why it was skipped).
    pub detail: String,
}

impl Check {
    pub(crate) fn pass(invariant: Invariant, detail: impl Into<String>) -> Self {
        Check {
            invariant,
            status: Status::Pass,
            violations: 0,
            witnesses: Vec::new(),
            detail: detail.into(),
        }
    }

    pub(crate) fn skipped(invariant: Invariant, detail: impl Into<String>) -> Self {
        Check {
            invariant,
            status: Status::Skipped,
            violations: 0,
            witnesses: Vec::new(),
            detail: detail.into(),
        }
    }

    pub(crate) fn record(&mut self, w: Witness) {
        self.status = Status::Fail;
        self.violations += 1;
        if self.witnesses.len() < MAX_WITNESSES {
            self.witnesses.push(w);
        }
    }
}

/// The structured diagnostic returned by [`crate::check_index`]: one
/// [`Check`] per [`Invariant`], in [`Invariant::ALL`] order.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-invariant results.
    pub checks: Vec<Check>,
}

impl Report {
    /// True when no invariant failed (skipped checks do not count
    /// against cleanliness).
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.status != Status::Fail)
    }

    /// The result for one invariant, or `None` if the report lacks it
    /// (never the case for reports produced by [`crate::check_index`],
    /// which always emits every [`Invariant::ALL`] entry).
    pub fn check(&self, invariant: Invariant) -> Option<&Check> {
        self.checks.iter().find(|c| c.invariant == invariant)
    }

    /// The invariants that failed, in report order.
    pub fn failed(&self) -> Vec<Invariant> {
        self.checks
            .iter()
            .filter(|c| c.status == Status::Fail)
            .map(|c| c.invariant)
            .collect()
    }

    /// Total violations across all invariants.
    pub fn total_violations(&self) -> usize {
        self.checks.iter().map(|c| c.violations).sum()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            let tag = match c.status {
                Status::Pass => "PASS",
                Status::Fail => "FAIL",
                Status::Skipped => "SKIP",
            };
            write!(f, "{tag} {:<22} {}", c.invariant.name(), c.detail)?;
            if c.status == Status::Fail {
                write!(f, " [{} violation(s)]", c.violations)?;
                for w in &c.witnesses {
                    write!(f, "\n       witness: {w}")?;
                }
                if c.violations > c.witnesses.len() {
                    write!(
                        f,
                        "\n       … and {} more",
                        c.violations - c.witnesses.len()
                    )?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
