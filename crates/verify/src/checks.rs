//! The invariant checks behind [`check_index`].
//!
//! Every check is defensive: a corrupted index must produce a `Fail`
//! with a witness, never a panic, so all cross-layer lookups are
//! bounds-guarded before use.

use crate::report::{Check, Invariant, Report, Status};
use crate::view::IndexView;
use crate::Witness;
use bgi_bisim::BisimDirection;
use bgi_graph::{DiGraph, LabelId, VId};
use rustc_hash::FxHashSet;

/// Check every structural invariant of a built BiG-index and return a
/// structured [`Report`].
///
/// The checks, in order (see [`Invariant`] for the paper references):
/// ontology acyclicity, configuration ancestry (Def. 2.2), label-map
/// consistency, path preservation (Def. 2.1), label preservation,
/// absence of phantom edges, partition stability (maximal summarizer
/// only), `χ`/`χ⁻¹` round-trips, member-list partitioning, and
/// per-layer label-support recounts.
pub fn check_index<I: IndexView + ?Sized>(idx: &I) -> Report {
    let h = idx.num_layers();
    let checks = vec![
        check_ontology_acyclic(idx),
        check_config_ancestry(idx, h),
        check_label_map_consistent(idx, h),
        check_path_preserving(idx, h),
        check_label_preserving(idx, h),
        check_no_phantom_edges(idx, h),
        check_partition_stable(idx, h),
        check_chi_round_trip(idx, h),
        check_members_partition(idx, h),
        check_support_counts(idx, h),
    ];
    Report { checks }
}

/// `G_Ont` acyclicity: the stored topological order must enumerate each
/// label exactly once and place every supertype before its subtypes. A
/// violated edge is reported as a `Mapping { layer: 0, sup, sub }`.
fn check_ontology_acyclic<I: IndexView + ?Sized>(idx: &I) -> Check {
    let ont = idx.ontology();
    let n = ont.num_labels();
    let mut c = Check::pass(
        Invariant::OntologyAcyclic,
        format!("{n} labels, {} subtype edges", ont.num_edges()),
    );

    // Position of each label in the topological order; u32::MAX marks
    // "absent", which itself is a violation.
    let mut pos = vec![u32::MAX; n];
    for (i, &l) in ont.topological_order().iter().enumerate() {
        if l.index() >= n || pos[l.index()] != u32::MAX {
            c.record(Witness::Mapping {
                layer: 0,
                from: l,
                to: l,
            });
            continue;
        }
        pos[l.index()] = i as u32;
    }
    for (i, &p) in pos.iter().enumerate() {
        if p == u32::MAX {
            let l = LabelId(i as u32);
            c.record(Witness::Mapping {
                layer: 0,
                from: l,
                to: l,
            });
        }
    }
    for (sup, sub) in ont.subtype_edges() {
        let (ps, pb) = (pos[sup.index()], pos[sub.index()]);
        if ps == u32::MAX || pb == u32::MAX || ps >= pb {
            c.record(Witness::Mapping {
                layer: 0,
                from: sup,
                to: sub,
            });
        }
    }
    c
}

/// Def. 2.2: every configuration entry `ℓ → ℓ′` must map a label to a
/// *strict* ancestor in `G_Ont` (self-maps and non-ancestor targets are
/// both label-destroying).
fn check_config_ancestry<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let ont = idx.ontology();
    let mut total = 0usize;
    let mut c = Check::pass(Invariant::ConfigAncestry, String::new());
    for m in 1..=h {
        for &(from, to) in idx.config_mappings(m) {
            total += 1;
            if from == to || !ont.is_supertype_of(to, from) {
                c.record(Witness::Mapping { layer: m, from, to });
            }
        }
    }
    c.detail = format!("{total} mappings across {h} layer(s)");
    c
}

/// The dense label map stored with each layer must agree with its
/// configuration: `map[ℓ] = Cᵐ(ℓ)` on the domain, identity elsewhere,
/// and it must cover the lower layer's alphabet.
fn check_label_map_consistent<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut c = Check::pass(Invariant::LabelMapConsistent, format!("{h} layer map(s)"));
    for m in 1..=h {
        let map = idx.label_map(m);
        let mut domain = vec![None; map.len()];
        for &(from, to) in idx.config_mappings(m) {
            // A mapping for a label beyond the stored map is fine as
            // long as no lower vertex carries that label — the
            // alphabet-coverage check below catches the case where one
            // does.
            if from.index() < map.len() {
                domain[from.index()] = Some(to);
            }
        }
        for (i, &mapped) in map.iter().enumerate() {
            let l = LabelId(i as u32);
            let expect = domain[i].unwrap_or(l);
            if mapped != expect {
                c.record(Witness::Mapping {
                    layer: m,
                    from: l,
                    to: mapped,
                });
            }
        }
        // The map must be total over the labels the lower layer uses.
        let lower = idx.graph_at(m - 1);
        if lower.alphabet_size() > map.len() {
            if let Some(v) = lower
                .vertices()
                .find(|&v| lower.label(v).index() >= map.len())
            {
                c.record(Witness::Vertex { layer: m - 1, v });
            }
        }
    }
    c
}

/// Applies `Cᵐ` to a label, tolerating a short map (returns `None` so
/// the caller can report instead of panic).
fn gen_label(map: &[LabelId], l: LabelId) -> Option<LabelId> {
    map.get(l.index()).copied()
}

/// Def. 2.1 (path preservation), checked edge-wise: every `G^{m-1}`
/// edge `(u, v)` must have a `G^m` edge `(χ(u), χ(v))`. Edge-wise
/// preservation implies path preservation by induction.
fn check_path_preserving<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut edges = 0usize;
    let mut c = Check::pass(Invariant::PathPreserving, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let upper = idx.graph_at(m);
        let nu = upper.num_vertices();
        for (u, v) in lower.edges() {
            edges += 1;
            let (su, sv) = (idx.up(m, u), idx.up(m, v));
            if su.index() >= nu || sv.index() >= nu || !upper.has_edge(su, sv) {
                c.record(Witness::Edge { layer: m - 1, u, v });
            }
        }
    }
    c.detail = format!("{edges} lower edge(s) mapped through chi");
    c
}

/// Label preservation: each supernode carries exactly the generalized
/// label of its members, `label(χ(v)) = Cᵐ(label(v))`.
fn check_label_preserving<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut verts = 0usize;
    let mut c = Check::pass(Invariant::LabelPreserving, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let upper = idx.graph_at(m);
        let map = idx.label_map(m);
        let nu = upper.num_vertices();
        for v in lower.vertices() {
            verts += 1;
            let s = idx.up(m, v);
            let ok = s.index() < nu && gen_label(map, lower.label(v)) == Some(upper.label(s));
            if !ok {
                c.record(Witness::Vertex { layer: m - 1, v });
            }
        }
    }
    c.detail = format!("{verts} vertex label(s) compared");
    c
}

/// No phantom edges: every `G^m` edge must be the image of at least one
/// `G^{m-1}` edge — the summary adds no connectivity that Prop. 4.1's
/// refinement step could not specialize away.
fn check_no_phantom_edges<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut edges = 0usize;
    let mut c = Check::pass(Invariant::NoPhantomEdges, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let upper = idx.graph_at(m);
        let image: FxHashSet<(VId, VId)> = lower
            .edges()
            .map(|(u, v)| (idx.up(m, u), idx.up(m, v)))
            .collect();
        for (s, t) in upper.edges() {
            edges += 1;
            if !image.contains(&(s, t)) {
                c.record(Witness::Edge {
                    layer: m,
                    u: s,
                    v: t,
                });
            }
        }
    }
    c.detail = format!("{edges} summary edge(s) traced to pre-images");
    c
}

/// The block signature stability compares: the sorted, deduplicated set
/// of neighbor blocks of `v` in the given direction.
fn block_signature<I: IndexView + ?Sized>(
    idx: &I,
    m: usize,
    g: &DiGraph,
    v: VId,
    out: bool,
) -> Vec<VId> {
    let ns = if out {
        g.out_neighbors(v)
    } else {
        g.in_neighbors(v)
    };
    let mut sig: Vec<VId> = ns.iter().map(|&n| idx.up(m, n)).collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// Stability of the summary partition on the *generalized* lower graph:
/// all members of a block must have identical generalized labels and
/// see the same set of neighbor blocks in the summarizer's direction.
/// Only the maximal bisimulation guarantees this — a k-bounded
/// partition is stable only to depth `k` — so the check is `Skipped`
/// for bounded summarizers.
fn check_partition_stable<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    if !idx.is_maximal_summarizer() {
        return Check::skipped(
            Invariant::PartitionStable,
            "k-bounded summarizer: partitions are stable only to depth k",
        );
    }
    let dir = idx.direction();
    let (chk_out, chk_in) = match dir {
        BisimDirection::Forward => (true, false),
        BisimDirection::Backward => (false, true),
        BisimDirection::Both => (true, true),
    };
    let mut blocks = 0usize;
    let mut c = Check::pass(Invariant::PartitionStable, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let map = idx.label_map(m);
        let gen = lower.relabel(map);
        let nu = idx.graph_at(m).num_vertices();
        blocks += nu;
        for s in 0..nu {
            let members = idx.down(m, VId(s as u32));
            let Some((&first, rest)) = members.split_first() else {
                continue; // empty blocks belong to MembersPartition
            };
            if first.index() >= gen.num_vertices() {
                c.record(Witness::Vertex {
                    layer: m - 1,
                    v: first,
                });
                continue;
            }
            let label0 = gen.label(first);
            let out0 = chk_out.then(|| block_signature(idx, m, &gen, first, true));
            let in0 = chk_in.then(|| block_signature(idx, m, &gen, first, false));
            for &v in rest {
                if v.index() >= gen.num_vertices() {
                    c.record(Witness::Vertex { layer: m - 1, v });
                    continue;
                }
                let same = gen.label(v) == label0
                    && out0
                        .as_ref()
                        .is_none_or(|s0| *s0 == block_signature(idx, m, &gen, v, true))
                    && in0
                        .as_ref()
                        .is_none_or(|s0| *s0 == block_signature(idx, m, &gen, v, false));
                if !same {
                    c.record(Witness::Vertex { layer: m - 1, v });
                }
            }
        }
    }
    c.detail = format!("{blocks} block(s) checked ({dir:?} direction)");
    c
}

/// `χ⁻¹` round-trips: for every lower vertex `v`, the member list of
/// its supernode contains `v` (`Bisim⁻¹(Bisim(v)) ∋ v`). This is the
/// hash-table lookup that query specialization descends through.
fn check_chi_round_trip<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut verts = 0usize;
    let mut c = Check::pass(Invariant::ChiRoundTrip, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let nu = idx.graph_at(m).num_vertices();
        for v in lower.vertices() {
            verts += 1;
            let s = idx.up(m, v);
            if s.index() >= nu || !idx.down(m, s).contains(&v) {
                c.record(Witness::Vertex { layer: m - 1, v });
            }
        }
    }
    c.detail = format!("{verts} round-trip(s) through chi tables");
    c
}

/// The `χ⁻¹` member lists must partition the lower layer exactly: every
/// supernode non-empty, members mapping back up to it, no lower vertex
/// claimed twice, and none left unclaimed.
fn check_members_partition<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut lists = 0usize;
    let mut c = Check::pass(Invariant::MembersPartition, String::new());
    for m in 1..=h {
        let lower = idx.graph_at(m - 1);
        let nl = lower.num_vertices();
        let nu = idx.graph_at(m).num_vertices();
        let mut claimed = vec![false; nl];
        for si in 0..nu {
            lists += 1;
            let s = VId(si as u32);
            let members = idx.down(m, s);
            if members.is_empty() {
                // An empty supernode summarizes nothing.
                c.record(Witness::Vertex { layer: m, v: s });
            }
            for &v in members {
                if v.index() >= nl || idx.up(m, v) != s || claimed[v.index()] {
                    c.record(Witness::Vertex { layer: m - 1, v });
                } else {
                    claimed[v.index()] = true;
                }
            }
        }
        for (i, &hit) in claimed.iter().enumerate() {
            if !hit {
                c.record(Witness::Vertex {
                    layer: m - 1,
                    v: VId(i as u32),
                });
            }
        }
    }
    c.detail = format!("{lists} member list(s)");
    c
}

/// The index's precomputed per-layer label supports (used for workload
/// statistics and generalized-mass accounting) must match a fresh
/// recount of each layer's graph.
fn check_support_counts<I: IndexView + ?Sized>(idx: &I, h: usize) -> Check {
    let mut labels = 0usize;
    let mut c = Check::pass(Invariant::SupportCounts, String::new());
    for m in 0..=h {
        let counts = idx.graph_at(m).label_counts();
        for (i, &actual) in counts.iter().enumerate() {
            labels += 1;
            let l = LabelId(i as u32);
            let stored = idx.support_count(m, l);
            if stored != actual {
                c.record(Witness::Support {
                    layer: m,
                    label: l,
                    stored: u64::from(stored),
                    actual: u64::from(actual),
                });
            }
        }
    }
    c.detail = format!("{labels} (layer, label) support(s) recounted");
    c
}

/// Sharded-deployment boundary accounting: every ownership-crossing
/// edge of `g` must appear in exactly one cut list — the list of the
/// shard owning its source — and cut lists must contain nothing else
/// (no internal edges, no edges `g` does not have, no misfiled
/// entries). `owner[v]` is the owning shard of vertex `v`; `cuts[s]`
/// is shard `s`'s claimed cut list.
///
/// Not part of [`Invariant::ALL`]: monolithic indexes have no shards,
/// so the check only runs when the caller has a partition in hand.
pub fn check_shard_cuts(g: &DiGraph, owner: &[u32], cuts: &[Vec<(VId, VId)>]) -> Check {
    let mut c = Check::pass(
        Invariant::ShardCutAccounting,
        String::new(), // detail filled below
    );
    let shards = cuts.len() as u32;
    if owner.len() != g.num_vertices() {
        c.record(Witness::Vertex {
            layer: 0,
            v: VId(owner.len().min(g.num_vertices()) as u32),
        });
        c.detail = format!(
            "owner table covers {} vertices, graph has {}",
            owner.len(),
            g.num_vertices()
        );
        return c;
    }
    for (v, &o) in owner.iter().enumerate() {
        if o >= shards {
            c.record(Witness::Vertex {
                layer: 0,
                v: VId(v as u32),
            });
        }
    }
    if c.status == Status::Fail {
        c.detail = format!("owner id(s) out of range for {shards} shard(s)");
        return c;
    }
    // Claimed cut entries, with the shard that filed each.
    let mut claimed: FxHashSet<(VId, VId)> = FxHashSet::default();
    for (s, list) in cuts.iter().enumerate() {
        for &(u, v) in list {
            let valid = u.index() < owner.len()
                && v.index() < owner.len()
                && owner[u.index()] == s as u32
                && owner[v.index()] != s as u32;
            let fresh = claimed.insert((u, v));
            if !valid || !fresh {
                // Out of range, misfiled (wrong shard's list, or an
                // internal edge), or listed twice.
                c.record(Witness::Edge { layer: 0, u, v });
            }
        }
    }
    // Every claimed entry must be a real edge, and every real crossing
    // edge must be claimed.
    let mut crossing = 0usize;
    let mut edges: FxHashSet<(VId, VId)> = FxHashSet::default();
    for (u, v) in g.edges() {
        edges.insert((u, v));
        if owner[u.index()] != owner[v.index()] {
            crossing += 1;
            if !claimed.contains(&(u, v)) {
                c.record(Witness::Edge { layer: 0, u, v });
            }
        }
    }
    for &(u, v) in &claimed {
        if !edges.contains(&(u, v)) {
            c.record(Witness::Edge { layer: 0, u, v });
        }
    }
    c.detail = format!(
        "{crossing} crossing edge(s) accounted across {} cut list(s)",
        cuts.len()
    );
    c
}
