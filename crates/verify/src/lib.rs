//! # bgi-verify
//!
//! Whole-index static verification for the BiG-index.
//!
//! The index's correctness rests on formal invariants the construction
//! is supposed to establish — summaries must be *path-preserving*
//! (Def. 2.1), generalizations *label-preserving* w.r.t. the ontology
//! (Def. 2.2), and the `χ`/`χ⁻¹` correspondence tables mutually inverse
//! (the specialization step that Prop. 4.1's candidate filtering relies
//! on). The `bgi-bisim` crate checks single summaries with boolean
//! predicates; this crate checks an **assembled hierarchy end to end**
//! and returns a structured [`Report`] with per-invariant pass/fail
//! status and offending vertex/edge/label *witnesses* instead of bare
//! booleans.
//!
//! To stay below `big-index` in the dependency graph (so `big-index`
//! can validate itself at build time), the checker is generic over the
//! [`IndexView`] trait rather than taking a concrete index type;
//! `big-index` implements `IndexView` for `BiGIndex`. Tests use wrapper
//! views to inject corruption (a broken `χ⁻¹` table, a non-ancestor
//! configuration entry, a phantom summary edge) and prove each class is
//! caught with a witness.
//!
//! ```
//! use bgi_verify::{check_index, IndexView};
//! # use bgi_verify::Status;
//! // let report = check_index(&index);
//! // assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod report;
mod view;

pub use checks::{check_index, check_shard_cuts};
pub use report::{Check, Invariant, Report, Status, Witness};
pub use view::IndexView;
