//! The [`IndexView`] abstraction over an assembled BiG-index.
//!
//! `bgi-verify` sits *below* `big-index` in the dependency graph so the
//! index can validate itself during construction. The checker therefore
//! cannot name `BiGIndex`; instead it reads the hierarchy through this
//! trait. `big-index` implements it for `BiGIndex`, and tests implement
//! it on wrapper types to inject targeted corruption.

use bgi_bisim::BisimDirection;
use bgi_graph::{DiGraph, LabelId, Ontology, VId};

/// Read access to every part of a built index that the invariants
/// quantify over.
///
/// Layer indices follow the paper's convention: `m = 0` is the data
/// graph `G⁰`; layers `1..=num_layers()` are summary graphs. Per-layer
/// accessors (`config_mappings`, `label_map`, `up`, `down`) take the
/// *upper* layer's index `m ≥ 1` and describe the step between
/// `G^{m-1}` and `G^m`.
pub trait IndexView {
    /// The ontology `G_Ont` the index was built against.
    fn ontology(&self) -> &Ontology;

    /// Number of summary layers `h` (excluding the data graph).
    fn num_layers(&self) -> usize;

    /// The graph at layer `m` (`0 ≤ m ≤ h`).
    fn graph_at(&self, m: usize) -> &DiGraph;

    /// The configuration `Cᵐ` applied between `G^{m-1}` and `G^m`, as
    /// `ℓ → ℓ′` pairs (`1 ≤ m ≤ h`).
    fn config_mappings(&self, m: usize) -> &[(LabelId, LabelId)];

    /// The dense label map of `Cᵐ` over the full alphabet
    /// (`map[ℓ] = Cᵐ(ℓ)`).
    fn label_map(&self, m: usize) -> &[LabelId];

    /// `χ` one step up: the supernode of `G^{m-1}`-vertex `v` in `G^m`.
    fn up(&self, m: usize, v: VId) -> VId;

    /// `χ⁻¹` one step down: the `G^{m-1}` members of `G^m`-supernode `s`
    /// (the hash-table entry `Bisim⁻¹(s)`).
    fn down(&self, m: usize, s: VId) -> &[VId];

    /// The bisimulation direction the summaries were computed under.
    fn direction(&self) -> BisimDirection;

    /// True if the summarizer is the *maximal* bisimulation, whose
    /// partitions must be stable; bounded (k-) bisimulation partitions
    /// are only stable up to depth `k`, so stability is skipped.
    fn is_maximal_summarizer(&self) -> bool;

    /// The index's precomputed count of label `l` at layer `m`
    /// (cross-checked against a fresh recount).
    fn support_count(&self, m: usize, l: LabelId) -> u32;
}
