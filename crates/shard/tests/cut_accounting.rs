//! The plan's cut lists satisfy bgi-verify's boundary-edge accounting
//! invariant, and the check actually catches every corruption mode.

use bgi_datasets::DatasetSpec;
use bgi_graph::VId;
use bgi_shard::{ShardPlan, ShardSpec};
use bgi_verify::{check_shard_cuts, Invariant, Status};

fn plan(n: usize, shards: usize) -> (bgi_graph::DiGraph, ShardPlan) {
    let ds = DatasetSpec::yago_like(n).generate();
    let plan = ShardPlan::build(
        &ds.graph,
        &ShardSpec {
            shards,
            dmax_ceiling: 2,
            partition_block: 0,
        },
    )
    .unwrap();
    (ds.graph, plan)
}

#[test]
fn built_plans_pass_cut_accounting() {
    for shards in [1, 2, 4, 7] {
        let (g, p) = plan(900, shards);
        let cuts: Vec<Vec<(VId, VId)>> = p.cut_lists().to_vec();
        let check = check_shard_cuts(&g, p.owners(), &cuts);
        assert_eq!(check.invariant, Invariant::ShardCutAccounting);
        assert_eq!(
            check.status,
            Status::Pass,
            "{shards} shards: {:?}",
            check.witnesses
        );
    }
}

#[test]
fn missing_crossing_edge_is_caught_with_witness() {
    let (g, p) = plan(700, 3);
    let mut cuts: Vec<Vec<(VId, VId)>> = p.cut_lists().to_vec();
    let victim_shard = (0..3).find(|&s| !cuts[s].is_empty()).unwrap();
    let dropped = cuts[victim_shard].pop().unwrap();
    let check = check_shard_cuts(&g, p.owners(), &cuts);
    assert_eq!(check.status, Status::Fail);
    assert!(check
        .witnesses
        .iter()
        .any(|w| matches!(w, bgi_verify::Witness::Edge { u, v, .. } if (*u, *v) == dropped)));
}

#[test]
fn misfiled_edge_is_caught() {
    let (g, p) = plan(700, 3);
    let mut cuts: Vec<Vec<(VId, VId)>> = p.cut_lists().to_vec();
    let from = (0..3).find(|&s| !cuts[s].is_empty()).unwrap();
    let edge = cuts[from].pop().unwrap();
    let to = (from + 1) % 3;
    cuts[to].push(edge);
    let check = check_shard_cuts(&g, p.owners(), &cuts);
    assert_eq!(check.status, Status::Fail, "edge filed under wrong shard");
}

#[test]
fn phantom_cut_entry_is_caught() {
    let (g, p) = plan(700, 2);
    let mut cuts: Vec<Vec<(VId, VId)>> = p.cut_lists().to_vec();
    // Fabricate a crossing "edge" the graph does not have.
    let u = (0..g.num_vertices() as u32)
        .map(VId)
        .find(|&v| p.owner_of(v) == Some(0))
        .unwrap();
    let v = (0..g.num_vertices() as u32)
        .map(VId)
        .find(|&w| p.owner_of(w) == Some(1) && !g.out_neighbors(u).contains(&w))
        .unwrap();
    cuts[0].push((u, v));
    let check = check_shard_cuts(&g, p.owners(), &cuts);
    assert_eq!(check.status, Status::Fail, "phantom entry accepted");
}

#[test]
fn duplicate_cut_entry_is_caught() {
    let (g, p) = plan(700, 3);
    let mut cuts: Vec<Vec<(VId, VId)>> = p.cut_lists().to_vec();
    let s = (0..3).find(|&s| !cuts[s].is_empty()).unwrap();
    let dup = cuts[s][0];
    cuts[s].push(dup);
    let check = check_shard_cuts(&g, p.owners(), &cuts);
    assert_eq!(check.status, Status::Fail, "duplicate entry accepted");
}

#[test]
fn shard_cut_accounting_not_in_default_suite() {
    // Monolithic indexes have no shards; the invariant must not be
    // demanded of every report.
    assert!(!Invariant::ALL.contains(&Invariant::ShardCutAccounting));
    assert_eq!(Invariant::ShardCutAccounting.name(), "shard-cut-accounting");
}
