//! Per-shard hierarchy construction: cut the base graph along a
//! [`ShardPlan`], then build one independent BiG-index bundle per
//! shard, optionally fanned out over threads.

use crate::plan::ShardPlan;
use bgi_graph::par::par_map;
use bgi_graph::subgraph::InducedSubgraph;
use bgi_graph::{induced_subgraph, DiGraph, Ontology};
use bgi_search::blinks::BlinksParams;
use bgi_search::rclique::RClique;
use bgi_store::IndexBundle;
use big_index::{BiGIndex, EvalOptions};

/// Knobs for per-shard index construction.
#[derive(Debug, Clone)]
pub struct ShardBuildParams {
    /// Maximum generalization layers per shard hierarchy.
    pub max_layers: usize,
    /// BLINKS parameters for every shard's layer indexes.
    pub blinks: BlinksParams,
    /// r-clique parameters for every shard's layer indexes.
    pub rclique: RClique,
    /// Evaluation options baked into each bundle.
    pub eval: EvalOptions,
    /// Fan-out width for building shards in parallel. The bundles are
    /// byte-identical at any thread count: each shard's build is fully
    /// self-contained and `par_map` returns results in index order.
    pub threads: usize,
}

impl Default for ShardBuildParams {
    fn default() -> Self {
        ShardBuildParams {
            max_layers: 3,
            blinks: BlinksParams::default(),
            rclique: RClique::default(),
            eval: EvalOptions::default(),
            threads: 1,
        }
    }
}

/// Cuts `g` into per-shard universe subgraphs. Universes are sorted,
/// so shard-local ids are monotone in the global ids and
/// `InducedSubgraph::original` equals the plan's universe slice.
pub fn shard_graphs(g: &DiGraph, plan: &ShardPlan) -> Vec<InducedSubgraph> {
    (0..plan.num_shards())
        .map(|s| induced_subgraph(g, plan.universe(s)))
        .collect()
}

/// Builds one [`IndexBundle`] per shard: induced universe subgraph,
/// greedy full-step generalization ladder, then every layer index.
/// Fanned out over up to `params.threads` workers; deterministic for
/// any thread count.
pub fn build_shard_bundles(
    g: &DiGraph,
    ontology: &Ontology,
    plan: &ShardPlan,
    params: &ShardBuildParams,
) -> Vec<IndexBundle> {
    par_map(params.threads, plan.num_shards(), |s| {
        let sub = induced_subgraph(g, plan.universe(s));
        let configs = big_index::greedy_full_step_configs(
            &sub.graph,
            ontology,
            params.max_layers,
            bgi_bisim::BisimDirection::Forward,
        );
        let index = BiGIndex::build_with_configs(
            sub.graph,
            ontology.clone(),
            configs,
            bgi_bisim::BisimDirection::Forward,
        );
        IndexBundle::build(index, params.blinks, params.rclique, params.eval)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ShardPlan, ShardSpec};
    use bgi_datasets::DatasetSpec;

    fn spec(shards: usize) -> ShardSpec {
        ShardSpec {
            shards,
            dmax_ceiling: 2,
            partition_block: 0,
        }
    }

    #[test]
    fn shard_graphs_match_universes() {
        let ds = DatasetSpec::yago_like(600).generate();
        let plan = ShardPlan::build(&ds.graph, &spec(3)).unwrap();
        let subs = shard_graphs(&ds.graph, &plan);
        assert_eq!(subs.len(), 3);
        for (s, sub) in subs.iter().enumerate() {
            assert_eq!(sub.original, plan.universe(s));
            assert_eq!(sub.graph.num_vertices(), plan.universe(s).len());
            // Labels survive the cut.
            for v in sub.graph.vertices() {
                assert_eq!(sub.graph.label(v), ds.graph.label(sub.to_original(v)));
            }
        }
    }

    #[test]
    fn bundles_deterministic_across_thread_counts() {
        let ds = DatasetSpec::yago_like(500).generate();
        let plan = ShardPlan::build(&ds.graph, &spec(2)).unwrap();
        let serial =
            build_shard_bundles(&ds.graph, &ds.ontology, &plan, &ShardBuildParams::default());
        let threaded = build_shard_bundles(
            &ds.graph,
            &ds.ontology,
            &plan,
            &ShardBuildParams {
                threads: 4,
                ..ShardBuildParams::default()
            },
        );
        assert_eq!(serial.len(), 2);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn each_bundle_covers_its_universe() {
        let ds = DatasetSpec::yago_like(400).generate();
        let plan = ShardPlan::build(&ds.graph, &spec(2)).unwrap();
        let bundles =
            build_shard_bundles(&ds.graph, &ds.ontology, &plan, &ShardBuildParams::default());
        for (s, b) in bundles.iter().enumerate() {
            assert_eq!(b.index.graph_at(0).num_vertices(), plan.universe(s).len());
            assert!(b.num_layers() >= 1);
        }
    }
}
