//! # bgi-shard
//!
//! Sharding for BiG-index serving: partition the base graph into `S`
//! shards, build an **independent BiG-index hierarchy per shard**, and
//! keep persistence and ingest shard-local so one hot shard can
//! recover or rebuild without freezing the rest.
//!
//! The decomposition leans on the paper's own query shape (Algo. 2):
//! generalize once, search the summary layer, specialize survivors.
//! Each of those steps is local to whatever graph the hierarchy was
//! built over, so a scatter–gather executor (`bgi-service`) can run
//! the pipeline per shard and merge ranked answers afterwards —
//! provided every answer is *fully visible* to at least one shard.
//!
//! The partition contract that makes the merge exact at layer 0:
//!
//! 1. **Ownership** — every base vertex is owned by exactly one shard
//!    ([`ShardPlan::owner_of`]). Block growth uses the BLINKS BFS
//!    partitioner (`bgi_search::blinks::bfs_partition`) folded onto
//!    shards by deterministic longest-processing-time assignment.
//! 2. **Halo closure** — each shard's *universe* is its owned set
//!    plus every vertex within undirected distance `2 · d_ceil` of it
//!    (`d_ceil` = [`ShardSpec::dmax_ceiling`]). Any answer of any of
//!    the three semantics with `d_max ≤ d_ceil` is contained, with
//!    exact internal distances, in the universe of the shard owning
//!    its *anchor* (the root for rooted semantics, the minimum vertex
//!    otherwise): every answer vertex lies within `2 · d_max` of the
//!    anchor, and so does every vertex of every witnessing path.
//! 3. **Cut accounting** — every ownership-crossing edge appears in
//!    exactly one cut list: the one of the shard owning its source
//!    ([`ShardPlan::cuts`]; checked by `bgi_verify`).
//!
//! [`build_shard_bundles`] fans per-shard hierarchy construction out
//! via `bgi_graph::par::par_map`; shard `s`'s bundle is byte-identical
//! at any thread count. [`ShardedStore`] lays the shards out as
//! independent generation directories + WALs (`shard-000/`, …) under
//! one root with the encoded plan, plus a root-level *meta WAL*
//! journaling global vertex numbering and cut-only edge events.
//! [`ShardRouter`] translates global-id update batches into per-shard
//! local batches and maintains live cut lists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod plan;
pub mod route;
pub mod store;

pub use build::{build_shard_bundles, shard_graphs, ShardBuildParams};
pub use plan::{PlanError, ShardPlan, ShardSpec};
pub use route::{RouteError, RoutedBatch, ShardRouter};
pub use store::{is_sharded, ShardStoreError, ShardedStore, META_DIR, PLAN_FILE};
