//! Shard-local persistence layout: one generation store + WAL per
//! shard under a common root, the encoded plan alongside them, and a
//! root-level meta WAL for global numbering and cut-only edges.
//!
//! ```text
//! root/
//!   SHARDPLAN        encoded ShardPlan (checksummed)
//!   meta/wal.log     meta WAL: AddVertex numbering + crossing edges
//!   shard-000/       independent bgi-store root (generations + WAL)
//!   shard-001/
//!   ...
//! ```
//!
//! Each shard directory is a full, self-contained [`Store`]: its
//! generations and WAL never reference another shard, which is what
//! lets one shard crash, recover, or background-rebuild while the
//! rest keep serving.

use crate::plan::{PlanError, ShardPlan};
use bgi_store::{Failpoints, IndexBundle, RetryPolicy, Store, StoreError, UpdateBatch, Wal};
use std::path::{Path, PathBuf};

/// File name of the encoded [`ShardPlan`] under a sharded root.
pub const PLAN_FILE: &str = "SHARDPLAN";

/// Name of the meta-WAL subdirectory under a sharded root.
pub const META_DIR: &str = "meta";

/// Why a sharded store could not be created or opened.
#[derive(Debug)]
pub enum ShardStoreError {
    /// Filesystem work outside the per-shard stores failed.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A per-shard store (or the meta WAL) failed.
    Store(StoreError),
    /// The plan file failed to decode.
    Plan(PlanError),
    /// The root exists but holds no `SHARDPLAN`.
    NotSharded(PathBuf),
}

impl std::fmt::Display for ShardStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStoreError::Io { context, source } => write!(f, "{context}: {source}"),
            ShardStoreError::Store(e) => write!(f, "shard store: {e}"),
            ShardStoreError::Plan(e) => write!(f, "shard plan: {e}"),
            ShardStoreError::NotSharded(p) => {
                write!(f, "{} is not a sharded store (no {PLAN_FILE})", p.display())
            }
        }
    }
}

impl std::error::Error for ShardStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardStoreError::Io { source, .. } => Some(source),
            ShardStoreError::Store(e) => Some(e),
            ShardStoreError::Plan(e) => Some(e),
            ShardStoreError::NotSharded(_) => None,
        }
    }
}

impl From<StoreError> for ShardStoreError {
    fn from(e: StoreError) -> Self {
        ShardStoreError::Store(e)
    }
}

impl From<PlanError> for ShardStoreError {
    fn from(e: PlanError) -> Self {
        ShardStoreError::Plan(e)
    }
}

/// `S` independent per-shard stores plus the plan that cut them.
#[derive(Debug)]
pub struct ShardedStore {
    root: PathBuf,
    plan: ShardPlan,
    stores: Vec<Store>,
}

/// True iff `root` holds a sharded store (its `SHARDPLAN` exists).
pub fn is_sharded(root: &Path) -> bool {
    root.join(PLAN_FILE).is_file()
}

fn shard_dir(root: &Path, s: usize) -> PathBuf {
    root.join(format!("shard-{s:03}"))
}

fn io_err(context: &str, path: &Path, source: std::io::Error) -> ShardStoreError {
    ShardStoreError::Io {
        context: format!("{context} {}", path.display()),
        source,
    }
}

impl ShardedStore {
    /// Creates a sharded root: writes the encoded plan, the meta-WAL
    /// directory, and one empty store per shard.
    pub fn create(root: impl Into<PathBuf>, plan: ShardPlan) -> Result<Self, ShardStoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create sharded root", &root, e))?;
        let plan_path = root.join(PLAN_FILE);
        std::fs::write(&plan_path, plan.encode())
            .map_err(|e| io_err("write shard plan", &plan_path, e))?;
        let meta = root.join(META_DIR);
        std::fs::create_dir_all(&meta).map_err(|e| io_err("create meta dir", &meta, e))?;
        let stores = (0..plan.num_shards())
            .map(|s| Store::open(shard_dir(&root, s)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedStore { root, plan, stores })
    }

    /// Opens an existing sharded root with default (disabled)
    /// failpoints on every shard.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ShardStoreError> {
        Self::open_with(root, |_| (Failpoints::disabled(), RetryPolicy::default()))
    }

    /// [`ShardedStore::open`] with a per-shard fault-injection
    /// factory — the crash-matrix entry point, letting a test arm
    /// failpoints on one shard while the others run clean.
    pub fn open_with(
        root: impl Into<PathBuf>,
        per_shard: impl Fn(usize) -> (Failpoints, RetryPolicy),
    ) -> Result<Self, ShardStoreError> {
        let root = root.into();
        let plan_path = root.join(PLAN_FILE);
        let bytes = match std::fs::read(&plan_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardStoreError::NotSharded(root));
            }
            Err(e) => return Err(io_err("read shard plan", &plan_path, e)),
        };
        let plan = ShardPlan::decode(&bytes)?;
        let meta = root.join(META_DIR);
        std::fs::create_dir_all(&meta).map_err(|e| io_err("create meta dir", &meta, e))?;
        let stores = (0..plan.num_shards())
            .map(|s| {
                let (fp, retry) = per_shard(s);
                Store::open_with(shard_dir(&root, s), fp, retry)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedStore { root, plan, stores })
    }

    /// The sharded root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The plan this root was cut by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.stores.len()
    }

    /// Shard `s`'s own store.
    pub fn store(&self, s: usize) -> &Store {
        &self.stores[s]
    }

    /// Saves one bundle per shard as each shard's next generation.
    /// Returns the per-shard generation numbers.
    pub fn save_all(
        &self,
        bundles: &[IndexBundle],
        threads: usize,
    ) -> Result<Vec<u64>, ShardStoreError> {
        bundles
            .iter()
            .enumerate()
            .map(|(s, b)| {
                self.stores[s]
                    .save_with_threads(b, threads)
                    .map_err(ShardStoreError::Store)
            })
            .collect()
    }

    /// Loads every shard's latest generation. Returns per-shard
    /// `(generation, bundle)` pairs.
    pub fn load_all(&self) -> Result<Vec<(u64, IndexBundle)>, ShardStoreError> {
        self.stores
            .iter()
            .map(|st| st.load_latest().map_err(ShardStoreError::Store))
            .collect()
    }

    /// Opens the root-level meta WAL (replaying its committed
    /// prefix), with explicit fault injection.
    pub fn meta_wal(&self, fp: Failpoints) -> Result<(Wal, Vec<UpdateBatch>), ShardStoreError> {
        Wal::open(&self.root.join(META_DIR), fp).map_err(ShardStoreError::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_shard_bundles, ShardBuildParams};
    use crate::plan::ShardSpec;
    use bgi_datasets::DatasetSpec;
    use bgi_store::GraphUpdate;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bgi-shard-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_open_roundtrip_preserves_plan() {
        let ds = DatasetSpec::yago_like(300).generate();
        let plan = ShardPlan::build(&ds.graph, &ShardSpec::new(2)).unwrap();
        let dir = tmpdir("roundtrip");
        let created = ShardedStore::create(&dir, plan.clone()).unwrap();
        assert_eq!(created.num_shards(), 2);
        assert!(is_sharded(&dir));
        let opened = ShardedStore::open(&dir).unwrap();
        assert_eq!(opened.plan(), &plan);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_non_sharded_root_is_a_clean_error() {
        let dir = tmpdir("notsharded");
        std::fs::create_dir_all(&dir).unwrap();
        match ShardedStore::open(&dir) {
            Err(ShardStoreError::NotSharded(p)) => assert_eq!(p, dir),
            other => panic!("expected NotSharded, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_all_load_all_roundtrip() {
        let ds = DatasetSpec::yago_like(300).generate();
        let plan = ShardPlan::build(&ds.graph, &ShardSpec::new(2)).unwrap();
        let bundles =
            build_shard_bundles(&ds.graph, &ds.ontology, &plan, &ShardBuildParams::default());
        let dir = tmpdir("saveload");
        let store = ShardedStore::create(&dir, plan).unwrap();
        let gens = store.save_all(&bundles, 1).unwrap();
        assert_eq!(gens.len(), 2);
        let loaded = store.load_all().unwrap();
        for (s, (gen, bundle)) in loaded.iter().enumerate() {
            assert_eq!(*gen, gens[s]);
            assert_eq!(bundle, &bundles[s]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_wal_survives_reopen() {
        let ds = DatasetSpec::yago_like(300).generate();
        let plan = ShardPlan::build(&ds.graph, &ShardSpec::new(2)).unwrap();
        let dir = tmpdir("metawal");
        let store = ShardedStore::create(&dir, plan).unwrap();
        {
            let (mut wal, replayed) = store.meta_wal(Failpoints::disabled()).unwrap();
            assert!(replayed.is_empty());
            wal.append(&[GraphUpdate::AddVertex {
                label: 0,
                expected: 7,
            }])
            .unwrap();
        }
        let reopened = ShardedStore::open(&dir).unwrap();
        let (_, replayed) = reopened.meta_wal(Failpoints::disabled()).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(
            replayed[0].updates,
            vec![GraphUpdate::AddVertex {
                label: 0,
                expected: 7,
            }]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
