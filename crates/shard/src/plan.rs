//! Partition plans: who owns which vertex, which halo each shard
//! carries, and which edges cross shards.

use bgi_graph::{DiGraph, VId};
use bgi_search::blinks::bfs_partition;
use std::collections::VecDeque;

/// How to cut a graph into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards (≥ 1, ≤ number of vertices).
    pub shards: usize,
    /// The largest `d_max` the sharded deployment promises to answer
    /// exactly; halos extend `2 · dmax_ceiling` undirected hops beyond
    /// the owned set. Queries above the ceiling are refused by the
    /// sharded executor.
    pub dmax_ceiling: u32,
    /// Target block size handed to the BLINKS BFS partitioner; `0`
    /// picks `n / (8 · shards)` so the longest-processing-time fold
    /// has ~8 blocks per shard to balance with.
    pub partition_block: usize,
}

impl ShardSpec {
    /// A spec for `shards` shards with the default ceiling (4) and
    /// auto-sized partition blocks.
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards,
            dmax_ceiling: 4,
            partition_block: 0,
        }
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::new(1)
    }
}

/// Why a plan could not be built or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The shard count is zero or exceeds the vertex count.
    InvalidShardCount {
        /// Requested shards.
        shards: usize,
        /// Vertices available.
        vertices: usize,
    },
    /// A serialized plan failed validation.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidShardCount { shards, vertices } => {
                write!(f, "cannot cut {vertices} vertices into {shards} shards")
            }
            PlanError::Corrupt { detail } => write!(f, "corrupt shard plan: {detail}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete, immutable sharding of one base graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_shards: usize,
    halo_radius: u32,
    dmax_ceiling: u32,
    /// `owner[v]` = shard owning base vertex `v`.
    owner: Vec<u32>,
    /// Per shard: owned ∪ halo vertices, sorted ascending. Sortedness
    /// makes `universe[i]` the global id of shard-local vertex `i`
    /// under `bgi_graph::induced_subgraph`.
    universes: Vec<Vec<VId>>,
    /// Per shard: ownership-crossing edges whose *source* the shard
    /// owns — each cross edge appears in exactly one list.
    cuts: Vec<Vec<(VId, VId)>>,
}

impl ShardPlan {
    /// Partitions `g` per `spec`: BFS-grown blocks, LPT-folded onto
    /// shards, halos of radius `2 · dmax_ceiling`, source-owned cut
    /// lists. Deterministic: same graph + spec ⇒ identical plan.
    pub fn build(g: &DiGraph, spec: &ShardSpec) -> Result<ShardPlan, PlanError> {
        let n = g.num_vertices();
        if spec.shards == 0 || spec.shards > n {
            return Err(PlanError::InvalidShardCount {
                shards: spec.shards,
                vertices: n,
            });
        }
        let shards = spec.shards;
        let target = if spec.partition_block > 0 {
            spec.partition_block
        } else {
            (n / (shards * 8)).max(1)
        };
        let mut partition = bfs_partition(g, target);
        if partition.num_blocks() < shards {
            // Tiny graph or huge blocks: fall back to singleton blocks
            // so every shard can own at least one vertex.
            partition = bfs_partition(g, 1);
        }
        // Longest-processing-time fold: biggest block first onto the
        // least-loaded shard; stable tie-breaks (block id, shard id)
        // keep the fold deterministic.
        let members = partition.members();
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&b| (std::cmp::Reverse(members[b].len()), b));
        let mut load = vec![0usize; shards];
        let mut owner = vec![0u32; n];
        for &b in &order {
            let mut best = 0usize;
            for s in 1..shards {
                if load[s] < load[best] {
                    best = s;
                }
            }
            load[best] += members[b].len();
            for &v in &members[b] {
                owner[v.index()] = best as u32;
            }
        }
        let halo_radius = spec.dmax_ceiling.saturating_mul(2);
        let universes = halo_universes(g, &owner, shards, halo_radius);
        let mut cuts = vec![Vec::new(); shards];
        for (u, v) in g.edges() {
            let ou = owner[u.index()];
            if ou != owner[v.index()] {
                cuts[ou as usize].push((u, v));
            }
        }
        Ok(ShardPlan {
            num_shards: shards,
            halo_radius,
            dmax_ceiling: spec.dmax_ceiling,
            owner,
            universes,
            cuts,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Undirected halo radius (`2 · dmax_ceiling`).
    pub fn halo_radius(&self) -> u32 {
        self.halo_radius
    }

    /// The largest `d_max` this plan answers exactly.
    pub fn dmax_ceiling(&self) -> u32 {
        self.dmax_ceiling
    }

    /// Base-graph vertex count the plan was built for.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The owning shard of base vertex `v`, if `v` is in range.
    pub fn owner_of(&self, v: VId) -> Option<u32> {
        self.owner.get(v.index()).copied()
    }

    /// The full ownership table (`owner[v]` = shard of vertex `v`).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Shard `s`'s universe: owned ∪ halo, sorted ascending.
    pub fn universe(&self, s: usize) -> &[VId] {
        &self.universes[s]
    }

    /// Shard `s`'s cut list: crossing edges whose source `s` owns.
    pub fn cuts(&self, s: usize) -> &[(VId, VId)] {
        &self.cuts[s]
    }

    /// All cut lists, indexed by shard.
    pub fn cut_lists(&self) -> &[Vec<(VId, VId)>] {
        &self.cuts
    }

    /// Translates base-global `v` to shard `s`'s local id, if `v` is
    /// in `s`'s universe.
    pub fn local_of(&self, s: usize, v: VId) -> Option<VId> {
        let univ = self.universes.get(s)?;
        univ.binary_search(&v).ok().map(|i| VId(i as u32))
    }

    /// Translates shard `s`'s local id back to the base-global id.
    pub fn global_of(&self, s: usize, local: VId) -> Option<VId> {
        self.universes.get(s)?.get(local.index()).copied()
    }

    /// Vertices shard `s` owns (not its halo copies).
    pub fn owned_count(&self, s: usize) -> usize {
        self.owner.iter().filter(|&&o| o as usize == s).count()
    }

    /// Serializes the plan (versioned, checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, self.num_shards as u32);
        put_u32(&mut out, self.halo_radius);
        put_u32(&mut out, self.dmax_ceiling);
        put_u64(&mut out, self.owner.len() as u64);
        for &o in &self.owner {
            put_u32(&mut out, o);
        }
        for s in 0..self.num_shards {
            put_u64(&mut out, self.universes[s].len() as u64);
            for &v in &self.universes[s] {
                put_u32(&mut out, v.0);
            }
            put_u64(&mut out, self.cuts[s].len() as u64);
            for &(u, v) in &self.cuts[s] {
                put_u32(&mut out, u.0);
                put_u32(&mut out, v.0);
            }
        }
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes and validates a serialized plan: checksum, ranges,
    /// sorted universes, owned ⊆ universe, and cut-list ownership all
    /// verified before a plan is returned.
    pub fn decode(bytes: &[u8]) -> Result<ShardPlan, PlanError> {
        let corrupt = |detail: &str| PlanError::Corrupt {
            detail: detail.to_string(),
        };
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt("file too short"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let mut want = [0u8; 8];
        want.copy_from_slice(trailer);
        if u64::from_le_bytes(want) != fnv1a64(body) {
            return Err(corrupt("checksum mismatch"));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic (not a shard plan, or wrong version)"));
        }
        let mut r = Reader {
            bytes: body,
            at: MAGIC.len(),
        };
        let num_shards = r.u32()? as usize;
        let halo_radius = r.u32()?;
        let dmax_ceiling = r.u32()?;
        let n = r.u64()? as usize;
        if num_shards == 0 || num_shards > n {
            return Err(corrupt("shard count out of range"));
        }
        let mut owner = Vec::with_capacity(n);
        for _ in 0..n {
            let o = r.u32()?;
            if o as usize >= num_shards {
                return Err(corrupt("owner out of range"));
            }
            owner.push(o);
        }
        let mut universes = Vec::with_capacity(num_shards);
        let mut cuts = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let len = r.u64()? as usize;
            if len > n {
                return Err(corrupt("universe longer than graph"));
            }
            let mut univ = Vec::with_capacity(len);
            for _ in 0..len {
                let v = r.u32()?;
                if v as usize >= n {
                    return Err(corrupt("universe vertex out of range"));
                }
                univ.push(VId(v));
            }
            if !univ.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("universe not sorted"));
            }
            let clen = r.u64()? as usize;
            let mut cut = Vec::with_capacity(clen);
            for _ in 0..clen {
                let u = r.u32()?;
                let v = r.u32()?;
                if u as usize >= n || v as usize >= n {
                    return Err(corrupt("cut endpoint out of range"));
                }
                if owner[u as usize] as usize != s || owner[v as usize] as usize == s {
                    return Err(corrupt("cut edge in the wrong shard's list"));
                }
                cut.push((VId(u), VId(v)));
            }
            universes.push(univ);
            cuts.push(cut);
        }
        if r.at != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        // Owned vertices must appear in their shard's universe.
        for (v, &o) in owner.iter().enumerate() {
            if universes[o as usize].binary_search(&VId(v as u32)).is_err() {
                return Err(corrupt("owned vertex missing from its universe"));
            }
        }
        Ok(ShardPlan {
            num_shards,
            halo_radius,
            dmax_ceiling,
            owner,
            universes,
            cuts,
        })
    }
}

/// Per-shard universes: multi-source undirected BFS of depth `radius`
/// from each shard's owned set.
fn halo_universes(g: &DiGraph, owner: &[u32], shards: usize, radius: u32) -> Vec<Vec<VId>> {
    let n = g.num_vertices();
    let mut seen = vec![u32::MAX; n];
    let mut dist = vec![0u32; n];
    let mut universes = Vec::with_capacity(shards);
    for s in 0..shards {
        let stamp = s as u32;
        let mut queue: VecDeque<VId> = VecDeque::new();
        let mut univ: Vec<VId> = Vec::new();
        for (v, &o) in owner.iter().enumerate().take(n) {
            if o == stamp {
                let v = VId(v as u32);
                seen[v.index()] = stamp;
                dist[v.index()] = 0;
                queue.push_back(v);
                univ.push(v);
            }
        }
        while let Some(u) = queue.pop_front() {
            let d = dist[u.index()];
            if d >= radius {
                continue;
            }
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if seen[w.index()] != stamp {
                    seen[w.index()] = stamp;
                    dist[w.index()] = d + 1;
                    queue.push_back(w);
                    univ.push(w);
                }
            }
        }
        univ.sort_unstable();
        universes.push(univ);
    }
    universes
}

const MAGIC: &[u8] = b"BGIPLN01";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, len: usize) -> Result<&[u8], PlanError> {
        let end = self.at.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(PlanError::Corrupt {
                detail: "truncated".to_string(),
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, PlanError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PlanError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// FNV-1a 64-bit, matching the store's MANIFEST checksum choice.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_datasets::DatasetSpec;
    use bgi_graph::{GraphBuilder, LabelId};

    fn yago(n: usize) -> DiGraph {
        DatasetSpec::yago_like(n).generate().graph
    }

    fn spec(shards: usize) -> ShardSpec {
        ShardSpec {
            shards,
            dmax_ceiling: 2,
            partition_block: 0,
        }
    }

    #[test]
    fn every_vertex_owned_every_shard_nonempty() {
        let g = yago(1500);
        let plan = ShardPlan::build(&g, &spec(4)).unwrap();
        assert_eq!(plan.num_vertices(), g.num_vertices());
        for s in 0..4 {
            assert!(plan.owned_count(s) > 0, "shard {s} owns nothing");
        }
        let total: usize = (0..4).map(|s| plan.owned_count(s)).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn lpt_fold_balances_ownership() {
        let g = yago(2000);
        let plan = ShardPlan::build(&g, &spec(4)).unwrap();
        let loads: Vec<usize> = (0..4).map(|s| plan.owned_count(s)).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // LPT with ~8 blocks per shard keeps the spread modest.
        assert!(max <= min * 2 + g.num_vertices() / 4, "loads {loads:?}");
    }

    #[test]
    fn build_is_deterministic() {
        let g = yago(1200);
        let a = ShardPlan::build(&g, &spec(3)).unwrap();
        let b = ShardPlan::build(&g, &spec(3)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn universes_contain_halo_closure() {
        let g = yago(800);
        let plan = ShardPlan::build(&g, &spec(3)).unwrap();
        let radius = plan.halo_radius();
        // Every vertex within `radius` undirected hops of an owned
        // vertex must be in the universe; spot-check from every owned
        // vertex's direct neighborhood expanded exactly.
        for s in 0..3 {
            let univ = plan.universe(s);
            assert!(univ.windows(2).all(|w| w[0] < w[1]), "universe sorted");
            // Frontier check: the universe is closed under ≤radius
            // expansion from owned vertices. Verify on a sample.
            for v in g.vertices().take(200) {
                if plan.owner_of(v) != Some(s as u32) {
                    continue;
                }
                let mut frontier = vec![v];
                for _ in 0..radius {
                    let mut next = Vec::new();
                    for &u in &frontier {
                        for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                            next.push(w);
                        }
                    }
                    for &w in &next {
                        assert!(
                            univ.binary_search(&w).is_ok(),
                            "vertex {w:?} within {radius} of owned {v:?} missing from shard {s}"
                        );
                    }
                    frontier = next;
                    if frontier.len() > 512 {
                        frontier.truncate(512);
                    }
                }
            }
        }
    }

    #[test]
    fn cut_lists_partition_crossing_edges() {
        let g = yago(1000);
        let plan = ShardPlan::build(&g, &spec(4)).unwrap();
        let mut listed = 0usize;
        for s in 0..4 {
            for &(u, v) in plan.cuts(s) {
                assert_eq!(plan.owner_of(u), Some(s as u32));
                assert_ne!(plan.owner_of(v), Some(s as u32));
                listed += 1;
            }
        }
        let crossing = g
            .edges()
            .filter(|&(u, v)| plan.owner_of(u) != plan.owner_of(v))
            .count();
        assert_eq!(listed, crossing);
    }

    #[test]
    fn local_global_roundtrip() {
        let g = yago(600);
        let plan = ShardPlan::build(&g, &spec(2)).unwrap();
        for s in 0..2 {
            for (i, &v) in plan.universe(s).iter().enumerate() {
                assert_eq!(plan.local_of(s, v), Some(VId(i as u32)));
                assert_eq!(plan.global_of(s, VId(i as u32)), Some(v));
            }
        }
        // A vertex outside the universe maps to nothing.
        let s0 = plan.universe(0);
        let outside = g.vertices().find(|v| s0.binary_search(v).is_err());
        if let Some(outside) = outside {
            assert_eq!(plan.local_of(0, outside), None);
        }
    }

    #[test]
    fn encode_decode_roundtrip_and_corruption() {
        let g = yago(700);
        let plan = ShardPlan::build(&g, &spec(3)).unwrap();
        let bytes = plan.encode();
        let back = ShardPlan::decode(&bytes).unwrap();
        assert_eq!(back, plan);
        // Any flipped byte is caught by the checksum.
        for at in [0usize, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xFF;
            assert!(ShardPlan::decode(&bad).is_err(), "flip at {at} accepted");
        }
        assert!(ShardPlan::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(ShardPlan::decode(b"nope").is_err());
    }

    #[test]
    fn rejects_bad_shard_counts() {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(LabelId(0));
        }
        let g = b.build();
        assert!(matches!(
            ShardPlan::build(&g, &spec(0)),
            Err(PlanError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            ShardPlan::build(&g, &spec(4)),
            Err(PlanError::InvalidShardCount { .. })
        ));
        // shards == n works via the singleton fallback.
        let plan = ShardPlan::build(&g, &spec(3)).unwrap();
        assert_eq!(plan.num_shards(), 3);
        for s in 0..3 {
            assert_eq!(plan.owned_count(s), 1);
        }
    }

    #[test]
    fn single_shard_universe_is_everything() {
        let g = yago(400);
        let plan = ShardPlan::build(&g, &spec(1)).unwrap();
        assert_eq!(plan.universe(0).len(), g.num_vertices());
        assert!(plan.cuts(0).is_empty());
    }
}
