//! Update routing: translate global-id ingest batches into per-shard
//! local batches, assign global ids to new vertices, and keep the
//! live cut lists current.
//!
//! The router is the single authority for global vertex numbering
//! after the base build: base vertices keep their plan ownership,
//! vertices grown at runtime are owned round-robin (`gid % shards`)
//! and exist *only* on their owning shard. An edge is applied to
//! every shard whose universe contains both endpoints; an edge whose
//! endpoints have different owners is additionally recorded in the
//! owner-of-source's cut set and journaled to the meta WAL, so it is
//! never lost even when no shard can apply it locally.

use crate::plan::ShardPlan;
use bgi_graph::VId;
use bgi_ingest::IngestUpdate;
use bgi_store::{GraphUpdate, UpdateBatch};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Why a batch could not be routed. Routing validates exactly what
/// the per-shard engines would: unknown ids and labels are rejected
/// up front so no shard applies half a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// An edge endpoint is not a known global vertex.
    UnknownVertex(u32),
    /// An `AddVertex` label is outside the ontology alphabet.
    UnknownLabel(u32),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownVertex(v) => write!(f, "unknown global vertex {v}"),
            RouteError::UnknownLabel(l) => write!(f, "label {l} outside the alphabet"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed batch: per-shard local-id updates plus the meta-WAL
/// records that keep global numbering and cross-shard edges durable.
#[derive(Debug, Clone, Default)]
pub struct RoutedBatch {
    /// `per_shard[s]` = shard `s`'s share of the batch, in local ids.
    pub per_shard: Vec<Vec<IngestUpdate>>,
    /// Records for the meta WAL: every `AddVertex` (global numbering)
    /// and every ownership-crossing edge event.
    pub meta: Vec<GraphUpdate>,
    /// Global ids assigned to this batch's `AddVertex` ops, in order.
    pub assigned: Vec<u32>,
}

/// Mutable routing state layered over an immutable [`ShardPlan`].
#[derive(Debug, Clone)]
pub struct ShardRouter {
    plan: Arc<ShardPlan>,
    base_n: u32,
    /// Total global vertices (base + grown).
    total: u32,
    alphabet: u32,
    /// Per shard: grown global id → shard-local id.
    grown: Vec<FxHashMap<u32, u32>>,
    /// Per shard: grown global ids in local-id order (they follow the
    /// base universe in each shard's local numbering).
    grown_list: Vec<Vec<u32>>,
    /// Per shard: current local vertex count.
    shard_len: Vec<u32>,
    /// Live cut sets, keyed by the owner of the edge source.
    cuts: Vec<BTreeSet<(u32, u32)>>,
}

impl ShardRouter {
    /// A router in the base state: no grown vertices, cuts seeded
    /// from the plan.
    pub fn new(plan: Arc<ShardPlan>, alphabet: usize) -> ShardRouter {
        let shards = plan.num_shards();
        let base_n = plan.num_vertices() as u32;
        let cuts = (0..shards)
            .map(|s| {
                plan.cuts(s)
                    .iter()
                    .map(|&(u, v)| (u.0, v.0))
                    .collect::<BTreeSet<_>>()
            })
            .collect();
        let shard_len = (0..shards).map(|s| plan.universe(s).len() as u32).collect();
        ShardRouter {
            plan,
            base_n,
            total: base_n,
            alphabet: alphabet as u32,
            grown: vec![FxHashMap::default(); shards],
            grown_list: vec![Vec::new(); shards],
            shard_len,
            cuts,
        }
    }

    /// The plan this router is layered over.
    pub fn plan(&self) -> &Arc<ShardPlan> {
        &self.plan
    }

    /// Total global vertices (base + grown).
    pub fn total_vertices(&self) -> u32 {
        self.total
    }

    /// The owner of global vertex `gid`: the plan for base vertices,
    /// round-robin for grown ones.
    pub fn owner_of(&self, gid: u32) -> Option<u32> {
        if gid < self.base_n {
            self.plan.owner_of(VId(gid))
        } else if gid < self.total {
            Some(gid % self.plan.num_shards() as u32)
        } else {
            None
        }
    }

    /// Shard `s`'s local id for global `gid`, if present there.
    pub fn local_of(&self, s: usize, gid: u32) -> Option<u32> {
        if gid < self.base_n {
            self.plan.local_of(s, VId(gid)).map(|v| v.0)
        } else {
            self.grown.get(s)?.get(&gid).copied()
        }
    }

    /// Shard `s`'s full local → global map: universe then grown tail.
    pub fn map(&self, s: usize) -> Vec<VId> {
        let mut m: Vec<VId> = self.plan.universe(s).to_vec();
        m.extend(self.grown_list[s].iter().map(|&g| VId(g)));
        m
    }

    /// Live cut sets, keyed by the owner of the edge source.
    pub fn cut_lists(&self) -> Vec<Vec<(VId, VId)>> {
        self.cuts
            .iter()
            .map(|set| set.iter().map(|&(u, v)| (VId(u), VId(v))).collect())
            .collect()
    }

    /// Routes one global-id batch. Validates everything first (so a
    /// routing error leaves the router untouched), then assigns
    /// global ids to new vertices, splits edges onto every shard that
    /// holds both endpoints, and records crossing edges in the cut
    /// sets and the meta stream.
    pub fn route(&mut self, updates: &[IngestUpdate]) -> Result<RoutedBatch, RouteError> {
        // Validation pass: simulate numbering without mutating.
        let mut virtual_total = self.total;
        for u in updates {
            match *u {
                IngestUpdate::AddVertex { label } => {
                    if label >= self.alphabet {
                        return Err(RouteError::UnknownLabel(label));
                    }
                    virtual_total += 1;
                }
                IngestUpdate::InsertEdge { src, dst } | IngestUpdate::DeleteEdge { src, dst } => {
                    if src >= virtual_total {
                        return Err(RouteError::UnknownVertex(src));
                    }
                    if dst >= virtual_total {
                        return Err(RouteError::UnknownVertex(dst));
                    }
                }
            }
        }
        let shards = self.plan.num_shards();
        let mut out = RoutedBatch {
            per_shard: vec![Vec::new(); shards],
            meta: Vec::new(),
            assigned: Vec::new(),
        };
        for u in updates {
            match *u {
                IngestUpdate::AddVertex { label } => {
                    let gid = self.total;
                    let owner = (gid % shards as u32) as usize;
                    self.grown[owner].insert(gid, self.shard_len[owner]);
                    self.grown_list[owner].push(gid);
                    self.shard_len[owner] += 1;
                    self.total += 1;
                    out.per_shard[owner].push(IngestUpdate::AddVertex { label });
                    out.meta.push(GraphUpdate::AddVertex {
                        label,
                        expected: gid,
                    });
                    out.assigned.push(gid);
                }
                IngestUpdate::InsertEdge { src, dst } => {
                    let mut applied = false;
                    for s in 0..shards {
                        if let (Some(ls), Some(ld)) = (self.local_of(s, src), self.local_of(s, dst))
                        {
                            out.per_shard[s].push(IngestUpdate::InsertEdge { src: ls, dst: ld });
                            applied = true;
                        }
                    }
                    let osrc = self.owner_of(src);
                    if osrc != self.owner_of(dst) {
                        if let Some(o) = osrc {
                            self.cuts[o as usize].insert((src, dst));
                        }
                        out.meta.push(GraphUpdate::InsertEdge { src, dst });
                    } else {
                        debug_assert!(applied, "same-owner edge must land on the owner shard");
                    }
                }
                IngestUpdate::DeleteEdge { src, dst } => {
                    for s in 0..shards {
                        if let (Some(ls), Some(ld)) = (self.local_of(s, src), self.local_of(s, dst))
                        {
                            out.per_shard[s].push(IngestUpdate::DeleteEdge { src: ls, dst: ld });
                        }
                    }
                    let osrc = self.owner_of(src);
                    if osrc != self.owner_of(dst) {
                        if let Some(o) = osrc {
                            self.cuts[o as usize].remove(&(src, dst));
                        }
                        out.meta.push(GraphUpdate::DeleteEdge { src, dst });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Replays the meta WAL after a restart. Tolerant by design:
    /// `AddVertex` records whose `expected` id already exists are
    /// skipped (duplicates from a retried batch), records from the
    /// future are skipped defensively, and edge records only refresh
    /// the cut sets.
    pub fn replay_meta(&mut self, batches: &[UpdateBatch]) {
        let shards = self.plan.num_shards() as u32;
        for batch in batches {
            for u in &batch.updates {
                match *u {
                    GraphUpdate::AddVertex { label: _, expected } => {
                        if expected != self.total {
                            continue; // already replayed, or from a lost future
                        }
                        let gid = self.total;
                        let owner = (gid % shards) as usize;
                        self.grown[owner].insert(gid, self.shard_len[owner]);
                        self.grown_list[owner].push(gid);
                        self.shard_len[owner] += 1;
                        self.total += 1;
                    }
                    GraphUpdate::InsertEdge { src, dst } => {
                        if src >= self.total || dst >= self.total {
                            continue;
                        }
                        if self.owner_of(src) != self.owner_of(dst) {
                            if let Some(o) = self.owner_of(src) {
                                self.cuts[o as usize].insert((src, dst));
                            }
                        }
                    }
                    GraphUpdate::DeleteEdge { src, dst } => {
                        if let Some(o) = self.owner_of(src) {
                            self.cuts[o as usize].remove(&(src, dst));
                        }
                    }
                }
            }
        }
    }

    /// Reconciles the router against the per-shard engines after a
    /// crash or failed commit: any grown tail the engines never
    /// durably applied is rolled back, global numbering retreats
    /// while the top id was dropped, and cut entries referencing
    /// dropped ids are purged.
    pub fn reconcile(&mut self, engine_vertex_counts: &[usize]) {
        let mut dropped: BTreeSet<u32> = BTreeSet::new();
        for (s, &len) in engine_vertex_counts.iter().enumerate() {
            let len = len as u32;
            while self.shard_len[s] > len {
                if let Some(gid) = self.grown_list[s].pop() {
                    self.grown[s].remove(&gid);
                    self.shard_len[s] -= 1;
                    dropped.insert(gid);
                } else {
                    // Base universe larger than the engine graph: the
                    // shard lost base state, which recovery handles at
                    // the store layer; nothing for the router to trim.
                    break;
                }
            }
        }
        while self.total > self.base_n && dropped.contains(&(self.total - 1)) {
            self.total -= 1;
        }
        if !dropped.is_empty() {
            for set in &mut self.cuts {
                set.retain(|&(u, v)| !dropped.contains(&u) && !dropped.contains(&v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ShardPlan, ShardSpec};
    use bgi_datasets::DatasetSpec;

    fn router(n: usize, shards: usize) -> (ShardRouter, usize) {
        let ds = DatasetSpec::yago_like(n).generate();
        let plan = ShardPlan::build(
            &ds.graph,
            &ShardSpec {
                shards,
                dmax_ceiling: 2,
                partition_block: 0,
            },
        )
        .unwrap();
        let alphabet = ds.ontology.num_labels();
        (ShardRouter::new(Arc::new(plan), alphabet), alphabet)
    }

    #[test]
    fn add_vertex_round_robin_and_local_numbering() {
        let (mut r, _) = router(400, 4);
        let base = r.total_vertices();
        let batch: Vec<IngestUpdate> = (0..8)
            .map(|_| IngestUpdate::AddVertex { label: 0 })
            .collect();
        let routed = r.route(&batch).unwrap();
        assert_eq!(routed.assigned.len(), 8);
        for (i, &gid) in routed.assigned.iter().enumerate() {
            assert_eq!(gid, base + i as u32);
            let owner = r.owner_of(gid).unwrap();
            assert_eq!(owner, gid % 4);
            let local = r.local_of(owner as usize, gid).unwrap();
            assert_eq!(r.map(owner as usize)[local as usize], VId(gid));
        }
        assert_eq!(routed.meta.len(), 8);
        assert_eq!(r.total_vertices(), base + 8);
    }

    #[test]
    fn edges_fan_out_to_every_holding_shard() {
        let (mut r, _) = router(600, 3);
        let plan = Arc::clone(r.plan());
        // Pick a same-owner base edge: it must land on at least the
        // owner shard, translated to local ids.
        let ds = DatasetSpec::yago_like(600).generate();
        let (u, v) = ds
            .graph
            .edges()
            .find(|&(u, v)| plan.owner_of(u) == plan.owner_of(v))
            .unwrap();
        let routed = r
            .route(&[IngestUpdate::InsertEdge { src: u.0, dst: v.0 }])
            .unwrap();
        let owner = plan.owner_of(u).unwrap() as usize;
        assert!(!routed.per_shard[owner].is_empty());
        assert!(routed.meta.is_empty(), "same-owner edge is not meta news");
        for (s, ops) in routed.per_shard.iter().enumerate() {
            for op in ops {
                let IngestUpdate::InsertEdge { src, dst } = *op else {
                    panic!("unexpected op");
                };
                assert_eq!(r.map(s)[src as usize], u);
                assert_eq!(r.map(s)[dst as usize], v);
            }
        }
    }

    #[test]
    fn crossing_edges_hit_cut_sets_and_meta() {
        let (mut r, _) = router(600, 3);
        let ds = DatasetSpec::yago_like(600).generate();
        let plan = Arc::clone(r.plan());
        let (u, v) = ds
            .graph
            .vertices()
            .flat_map(|a| ds.graph.vertices().map(move |b| (a, b)))
            .find(|&(a, b)| a != b && plan.owner_of(a) != plan.owner_of(b))
            .unwrap();
        let before = r.cut_lists()[plan.owner_of(u).unwrap() as usize].len();
        let routed = r
            .route(&[IngestUpdate::InsertEdge { src: u.0, dst: v.0 }])
            .unwrap();
        assert_eq!(routed.meta.len(), 1);
        let after = r.cut_lists()[plan.owner_of(u).unwrap() as usize].len();
        assert!(after >= before, "cut set tracks the crossing edge");
        assert!(
            r.cut_lists()[plan.owner_of(u).unwrap() as usize].contains(&(u, v)),
            "inserted crossing edge present in owner's cut set"
        );
        // Deleting removes it again and journals the delete.
        let routed = r
            .route(&[IngestUpdate::DeleteEdge { src: u.0, dst: v.0 }])
            .unwrap();
        assert_eq!(routed.meta.len(), 1);
        assert!(!r.cut_lists()[plan.owner_of(u).unwrap() as usize].contains(&(u, v)));
    }

    #[test]
    fn validation_rejects_and_leaves_state_untouched() {
        let (mut r, alphabet) = router(300, 2);
        let before_total = r.total_vertices();
        let err = r
            .route(&[
                IngestUpdate::AddVertex { label: 0 },
                IngestUpdate::InsertEdge {
                    src: 0,
                    dst: before_total + 5,
                },
            ])
            .unwrap_err();
        assert_eq!(err, RouteError::UnknownVertex(before_total + 5));
        assert_eq!(
            r.total_vertices(),
            before_total,
            "failed route mutates nothing"
        );
        let err = r
            .route(&[IngestUpdate::AddVertex {
                label: alphabet as u32,
            }])
            .unwrap_err();
        assert_eq!(err, RouteError::UnknownLabel(alphabet as u32));
    }

    #[test]
    fn batch_internal_references_to_new_vertices_validate() {
        let (mut r, _) = router(300, 2);
        let base = r.total_vertices();
        // An edge to a vertex added earlier in the same batch is legal.
        let routed = r
            .route(&[
                IngestUpdate::AddVertex { label: 0 },
                IngestUpdate::InsertEdge { src: 0, dst: base },
            ])
            .unwrap();
        assert_eq!(routed.assigned, vec![base]);
    }

    #[test]
    fn replay_meta_is_idempotent() {
        let (mut r, _) = router(300, 2);
        let routed = r
            .route(&[
                IngestUpdate::AddVertex { label: 0 },
                IngestUpdate::AddVertex { label: 1 },
            ])
            .unwrap();
        let mut fresh = router(300, 2).0;
        let batch = UpdateBatch {
            seq: 1,
            updates: routed.meta.clone(),
        };
        fresh.replay_meta(std::slice::from_ref(&batch));
        assert_eq!(fresh.total_vertices(), r.total_vertices());
        // Replaying the same records again changes nothing.
        fresh.replay_meta(&[batch]);
        assert_eq!(fresh.total_vertices(), r.total_vertices());
        assert_eq!(fresh.cut_lists(), r.cut_lists());
    }

    #[test]
    fn reconcile_rolls_back_unapplied_growth() {
        let (mut r, _) = router(300, 2);
        let base = r.total_vertices();
        let engine_lens: Vec<usize> = (0..2).map(|s| r.map(s).len()).collect();
        r.route(&[
            IngestUpdate::AddVertex { label: 0 },
            IngestUpdate::AddVertex { label: 0 },
        ])
        .unwrap();
        assert_eq!(r.total_vertices(), base + 2);
        // Engines never applied the growth (crash before commit).
        r.reconcile(&engine_lens);
        assert_eq!(r.total_vertices(), base);
        for (s, &len) in engine_lens.iter().enumerate() {
            assert_eq!(r.map(s).len(), len);
        }
    }
}
