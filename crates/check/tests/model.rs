//! Self-tests for the model checker: the harness must find planted
//! races, detect deadlocks, replay failures from seeds, and pass clean
//! code. Everything here needs the `sim` feature (in workspace builds
//! it is unified in via `bgi-service`'s dev-dependency; standalone:
//! `cargo test -p bgi-check --features sim`).
#![cfg(feature = "sim")]

use bgi_check::sync::atomic::{AtomicU64, Ordering};
use bgi_check::sync::{thread, Condvar, Mutex, PoisonError};
use bgi_check::{model, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn lock<'a, T>(m: &'a Mutex<T>) -> bgi_check::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The canonical planted bug: two threads perform a non-atomic
/// load-then-store increment. Only an interleaving that preempts
/// between the load and the store loses an update.
fn racy_increment() {
    let n = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let n = Arc::clone(&n);
        handles.push(thread::spawn(move || {
            let seen = n.load(Ordering::SeqCst);
            n.store(seen + 1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn exhaustive_finds_lost_update_with_one_preemption() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        model(Config::exhaustive(1), racy_increment);
    }))
    .expect_err("bound-1 exploration must find the lost update");
    let msg = failure
        .downcast_ref::<String>()
        .expect("failure carries a message");
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    assert!(msg.contains("decision prefix"), "not replayable: {msg}");
}

#[test]
fn preemption_free_schedule_misses_the_race() {
    // Bound 0 = serial schedules only: the planted race needs a
    // preemption, so exploration passes (this is what the bound means).
    let report = model(Config::exhaustive(0), racy_increment);
    assert!(report.schedules >= 1);
}

#[test]
fn random_failure_replays_from_reported_seed() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        model(Config::random(500, 42), racy_increment);
    }))
    .expect_err("500 random schedules must find the lost update");
    let msg = failure
        .downcast_ref::<String>()
        .expect("failure carries a message")
        .clone();
    let seed_hex = msg
        .split("under seed 0x")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("failure names its seed");
    let seed = u64::from_str_radix(seed_hex, 16).expect("seed parses");
    let replay = catch_unwind(AssertUnwindSafe(|| {
        model(Config::replay(seed), racy_increment);
    }))
    .expect_err("replaying the reported seed must reproduce the failure");
    let replay_msg = replay.downcast_ref::<String>().expect("replay message");
    assert!(
        replay_msg.contains("lost update"),
        "replay found a different failure: {replay_msg}"
    );
}

#[test]
fn atomic_rmw_increment_is_clean() {
    let report = model(Config::exhaustive(2), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.schedules > 1,
        "bound-2 exploration should cover more than one schedule"
    );
}

#[test]
fn abba_deadlock_is_detected_and_blamed() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        model(Config::exhaustive(1), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = lock(&a);
                let _gb = lock(&b);
            });
            let t2 = thread::spawn(move || {
                let _gb = lock(&b2);
                let _ga = lock(&a2);
            });
            let _ = t1.join();
            let _ = t2.join();
        });
    }))
    .expect_err("ABBA lock order must deadlock under one preemption");
    let msg = failure.downcast_ref::<String>().expect("message");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    assert!(msg.contains("waiting for mutex"), "no blame report: {msg}");
}

#[test]
fn condvar_handoff_is_clean_and_notify_wakes() {
    let report = model(Config::exhaustive(2), || {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let producer = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let mut g = lock(&slot.0);
                *g = Some(7);
                drop(g);
                slot.1.notify_all();
            })
        };
        let got = {
            let mut g = lock(&slot.0);
            while g.is_none() {
                g = slot.1.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.expect("filled")
        };
        assert_eq!(got, 7);
        producer.join().unwrap();
    });
    assert!(report.schedules > 1);
}

#[test]
fn missed_notify_deadlock_is_detected() {
    // Waiter checks no predicate and the producer never notifies:
    // every schedule deadlocks with the waiter parked on the condvar.
    let failure = catch_unwind(AssertUnwindSafe(|| {
        model(Config::exhaustive(0), || {
            let slot = Arc::new((Mutex::new(()), Condvar::new()));
            let waiter = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let g = lock(&slot.0);
                    let _g = slot.1.wait(g).unwrap_or_else(PoisonError::into_inner);
                })
            };
            let _ = waiter.join();
        });
    }))
    .expect_err("un-notified wait must deadlock");
    let msg = failure.downcast_ref::<String>().expect("message");
    assert!(msg.contains("never notified"), "unexpected failure: {msg}");
}

#[test]
fn timed_wait_fires_without_a_notifier() {
    model(Config::exhaustive(1), || {
        let slot = Arc::new((Mutex::new(()), Condvar::new()));
        let g = lock(&slot.0);
        let (_g, res) = slot
            .1
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap_or_else(PoisonError::into_inner);
        assert!(res.timed_out(), "no notifier exists: wake must be timeout");
    });
}

#[test]
fn rwlock_writer_excludes_readers() {
    model(Config::exhaustive(2), || {
        let v = Arc::new(bgi_check::sync::RwLock::new(0u64));
        let writer = {
            let v = Arc::clone(&v);
            thread::spawn(move || {
                let mut g = v.write().unwrap_or_else(PoisonError::into_inner);
                // A reader between these two writes would observe the
                // torn intermediate value 1.
                *g = 1;
                *g = 2;
            })
        };
        let reader = {
            let v = Arc::clone(&v);
            thread::spawn(move || {
                let g = v.read().unwrap_or_else(PoisonError::into_inner);
                assert_ne!(*g, 1, "observed torn write under the write lock");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

#[test]
fn facade_is_usable_outside_model() {
    // Passthrough mode: plain std behavior on real threads.
    let n = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let n = Arc::clone(&n);
            let m = Arc::clone(&m);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
                lock(&m).push(i);
            })
        })
        .collect();
    for h in handles {
        assert!(!h.is_finished() || h.is_finished());
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::SeqCst), 4);
    assert_eq!(lock(&m).len(), 4);
}

/// A worker pool whose `Drop` signals its thread and joins it — the
/// shape `Service` has in bgi-service.
struct Pool {
    stop: Arc<(Mutex<bool>, Condvar)>,
    worker: Option<thread::JoinHandle<()>>,
}

impl Drop for Pool {
    fn drop(&mut self) {
        *lock(&self.stop.0) = true;
        self.stop.1.notify_all();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// When the model closure panics while a pool is still alive, its
/// `Drop` joins the worker *during unwind*. The scheduler must drain
/// the parked worker so the real join completes, and the reported
/// failure must stay the closure's own panic — not a scheduler
/// deadlock message.
#[test]
fn panic_with_live_worker_pool_reports_the_real_failure() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        model(Config::random(1, 7), || {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let worker = {
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut done = lock(&stop.0);
                    while !*done {
                        done = stop.1.wait(done).unwrap_or_else(PoisonError::into_inner);
                    }
                })
            };
            let _pool = Pool {
                stop,
                worker: Some(worker),
            };
            panic!("injected model failure");
        });
    }))
    .expect_err("the closure's panic must surface, not wedge in Drop");
    let msg = failure
        .downcast_ref::<String>()
        .expect("failure carries a message");
    assert!(
        msg.contains("injected model failure"),
        "Drop glue swallowed the real failure: {msg}"
    );
}
