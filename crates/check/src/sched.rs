//! The cooperative scheduler behind the `sim` feature.
//!
//! Real OS threads are used, but a single *baton* decides which one may
//! run: every simulated thread blocks on the scheduler's internal
//! condvar until `State::current` names it. Each facade operation calls
//! [`Sched::switch`], which (1) applies the operation's bookkeeping,
//! (2) asks the choice source to pick the next runnable thread, and
//! (3) waits until this thread is picked again. Because exactly one
//! thread runs between schedule points, the interleaving is fully
//! determined by the sequence of picks — which is what makes replay
//! from a seed or a decision prefix exact.
//!
//! Blocking is modeled, not performed: a thread that would block on a
//! held mutex records `Blocked::Mutex(obj)` and simply stops being
//! runnable until the owner releases. Deadlock is therefore decidable:
//! if no thread is runnable while unfinished threads remain, the run
//! aborts with a per-thread blame report.
//!
//! Failure propagation: the first panic (or deadlock/livelock
//! detection) stores an abort reason; every thread that next reaches a
//! schedule point panics in turn, unwinding its stack and releasing
//! its simulated resources, until the whole run has drained. A thread
//! already unwinding gets bookkeeping-only treatment — its guard drops
//! must not panic again or try to hand the baton mid-unwind.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};

/// Message used for the secondary panics that unwind a doomed run; the
/// real failure reason is in `State::abort`.
const ABORT_MSG: &str = "bgi-check: schedule aborted (see model() failure report)";

/// Distinguishes runs so lazily-registered object ids from a previous
/// schedule are not mistaken for this run's.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The calling thread's simulation context, if it is running inside a
/// `model()` closure.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lazily-assigned per-run identity of a facade object (mutex, rwlock,
/// condvar). Outside a run it is empty; the first simulated operation
/// inside a run registers it.
#[derive(Debug, Default)]
pub(crate) struct ObjCell(StdMutex<Option<(u64, u64)>>);

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell(StdMutex::new(None))
    }
}

/// One scheduling decision, recorded for replay and DFS backtracking.
/// Only points with more than one runnable option are recorded.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    /// Index picked in the canonical option list (current-thread-first,
    /// then ascending tid).
    pub picked: usize,
    /// Number of options at this point.
    pub n: usize,
    /// True when option 0 was "let the current thread continue" — the
    /// only case where picking another option costs a preemption.
    pub cont: bool,
}

/// Where scheduling decisions come from.
pub(crate) enum Source {
    /// Uniform picks from a seeded `splitmix64` stream.
    Random(SplitMix64),
    /// Replay the given picks, then always pick option 0 (continue).
    /// An empty prefix is the canonical first DFS schedule.
    Prefix(Vec<usize>),
}

#[derive(Debug, Clone)]
enum Blocked {
    Ready,
    Mutex(u64),
    RwRead(u64),
    RwWrite(u64),
    Cv {
        cv: u64,
        mutex: u64,
        signaled: bool,
        /// Waiting with a timeout: may also wake spuriously as a
        /// "timeout fired" (the sim has no clock, so an armed timeout
        /// is simply always eligible to fire).
        timed: bool,
    },
    Join(usize),
    /// Main thread waiting for every spawned thread to finish.
    JoinAll,
}

struct Th {
    blocked: Blocked,
    finished: bool,
    /// Set by `grant` when a cv waiter is woken: true iff the wake was
    /// the timeout, not a signal.
    cv_timed_out: bool,
}

impl Th {
    fn new() -> Th {
        Th {
            blocked: Blocked::Ready,
            finished: false,
            cv_timed_out: false,
        }
    }
}

#[derive(Default)]
struct RwSt {
    writer: Option<usize>,
    readers: usize,
}

struct State {
    threads: Vec<Th>,
    current: usize,
    steps: usize,
    next_obj: u64,
    /// Mutex object → owner tid (None = free).
    mutexes: HashMap<u64, Option<usize>>,
    rws: HashMap<u64, RwSt>,
    source: Source,
    pos: usize,
    trace: Vec<Choice>,
    abort: Option<String>,
    /// Like `abort`, but without a failure reason: every parked thread
    /// must unwind and exit, while the *reason* slot stays open for the
    /// panic that is still propagating on the thread that set this
    /// (see [`Ctx::join_thread`]).
    draining: bool,
}

impl State {
    fn mutex_free(&self, m: u64) -> bool {
        self.mutexes.get(&m).is_none_or(Option::is_none)
    }

    fn runnable(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        if t.finished {
            return false;
        }
        match &t.blocked {
            Blocked::Ready => true,
            Blocked::Mutex(m) => self.mutex_free(*m),
            Blocked::RwRead(o) => self.rws.get(o).is_none_or(|r| r.writer.is_none()),
            Blocked::RwWrite(o) => self
                .rws
                .get(o)
                .is_none_or(|r| r.writer.is_none() && r.readers == 0),
            Blocked::Cv {
                mutex,
                signaled,
                timed,
                ..
            } => (*signaled || *timed) && self.mutex_free(*mutex),
            Blocked::Join(target) => self.threads[*target].finished,
            Blocked::JoinAll => self
                .threads
                .iter()
                .enumerate()
                .all(|(i, t)| i == tid || t.finished),
        }
    }

    /// Makes `tid` runnable for real: acquires whatever it was blocked
    /// on. Must only be called when `runnable(tid)` holds.
    fn grant(&mut self, tid: usize) {
        let blocked = std::mem::replace(&mut self.threads[tid].blocked, Blocked::Ready);
        match blocked {
            Blocked::Ready | Blocked::Join(_) | Blocked::JoinAll => {}
            Blocked::Mutex(m) => {
                self.mutexes.insert(m, Some(tid));
            }
            Blocked::RwRead(o) => {
                self.rws.entry(o).or_default().readers += 1;
            }
            Blocked::RwWrite(o) => {
                self.rws.entry(o).or_default().writer = Some(tid);
            }
            Blocked::Cv {
                mutex, signaled, ..
            } => {
                self.mutexes.insert(mutex, Some(tid));
                self.threads[tid].cv_timed_out = !signaled;
            }
        }
    }

    /// Consults the choice source at a point with `n > 1` options.
    fn pick(&mut self, n: usize, cont: bool) -> usize {
        let raw = match &mut self.source {
            Source::Random(rng) => (rng.next() % n as u64) as usize,
            Source::Prefix(p) => p.get(self.pos).copied().unwrap_or(0),
        };
        let picked = raw.min(n - 1);
        self.pos += 1;
        self.trace.push(Choice { picked, n, cont });
        picked
    }

    fn deadlock_report(&self) -> String {
        let mut lines = vec!["deadlock: no runnable thread".to_string()];
        for (i, t) in self.threads.iter().enumerate() {
            if t.finished {
                continue;
            }
            let what = match &t.blocked {
                Blocked::Ready => "ready (unreachable)".to_string(),
                Blocked::Mutex(m) => format!(
                    "waiting for mutex #{m} (held by {:?})",
                    self.mutexes.get(m).copied().flatten()
                ),
                Blocked::RwRead(o) => format!("waiting to read rwlock #{o}"),
                Blocked::RwWrite(o) => format!("waiting to write rwlock #{o}"),
                Blocked::Cv { cv, mutex, .. } => {
                    format!("waiting on condvar #{cv} (mutex #{mutex}, never notified)")
                }
                Blocked::Join(target) => format!("joining t{target}"),
                Blocked::JoinAll => "main: waiting for all threads".to_string(),
            };
            lines.push(format!("  t{i}: {what}"));
        }
        lines.join("\n")
    }
}

pub(crate) struct Sched {
    state: StdMutex<State>,
    cv: StdCondvar,
    run_id: u64,
    max_steps: usize,
}

impl Sched {
    pub(crate) fn new(source: Source, max_steps: usize) -> Sched {
        Sched {
            state: StdMutex::new(State {
                threads: vec![Th::new()],
                current: 0,
                steps: 0,
                next_obj: 0,
                mutexes: HashMap::new(),
                rws: HashMap::new(),
                source,
                pos: 0,
                trace: Vec::new(),
                abort: None,
                draining: false,
            }),
            cv: StdCondvar::new(),
            // relaxed: uniqueness ticket; never synchronizes data.
            run_id: RUN_COUNTER.fetch_add(1, Ordering::Relaxed),
            max_steps,
        }
    }

    fn st(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The schedule point. Applies `pre` (the operation's bookkeeping)
    /// and `block` (the caller's new wait state) atomically, picks the
    /// next thread, and blocks until this thread is picked again.
    /// Panics to unwind the run on abort, deadlock, or step exhaustion.
    fn switch<F: FnOnce(&mut State)>(&self, me: usize, pre: F, block: Option<Blocked>) {
        let mut st = self.st();
        pre(&mut st);
        if let Some(b) = block {
            st.threads[me].blocked = b;
        }
        if std::thread::panicking() {
            // Unwinding guard drops: bookkeeping only. The baton moves
            // when `thread_finished` runs at the end of the unwind.
            return;
        }
        if st.abort.is_some() || st.draining {
            drop(st);
            self.cv.notify_all();
            panic!("{ABORT_MSG}");
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.abort = Some(format!(
                "livelock? exceeded max_steps={} schedule points",
                self.max_steps
            ));
            drop(st);
            self.cv.notify_all();
            panic!("{ABORT_MSG}");
        }
        if !self.schedule_next(&mut st, Some(me)) {
            drop(st);
            self.cv.notify_all();
            panic!("{ABORT_MSG}");
        }
        self.cv.notify_all();
        while st.current != me {
            if st.abort.is_some() || st.draining {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Picks and installs the next thread to run. `me` is the calling
    /// thread when it is still alive; it is listed first so that "pick
    /// option 0" always means "continue without preemption". Returns
    /// false (after recording the abort reason) on deadlock.
    fn schedule_next(&self, st: &mut State, me: Option<usize>) -> bool {
        let mut opts: Vec<usize> = Vec::new();
        if let Some(m) = me {
            if st.runnable(m) {
                opts.push(m);
            }
        }
        for tid in 0..st.threads.len() {
            if Some(tid) != me && st.runnable(tid) {
                opts.push(tid);
            }
        }
        if opts.is_empty() {
            if st.threads.iter().all(|t| t.finished) {
                return true; // quiescent: nothing left to schedule
            }
            st.abort = Some(st.deadlock_report());
            return false;
        }
        let cont = me.is_some() && me == opts.first().copied();
        let idx = if opts.len() == 1 {
            0
        } else {
            st.pick(opts.len(), cont)
        };
        let next = opts[idx];
        st.grant(next);
        st.current = next;
        true
    }

    /// Called by a simulated thread's wrapper once its closure has
    /// returned or panicked: marks it finished and hands the baton on.
    fn thread_finished(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.st();
        st.threads[tid].finished = true;
        st.threads[tid].blocked = Blocked::Ready;
        if let Some(m) = panic_msg {
            if m != ABORT_MSG && st.abort.is_none() {
                st.abort = Some(format!("thread t{tid} panicked: {m}"));
            }
        }
        if st.abort.is_none() && !st.draining {
            let _ = self.schedule_next(&mut st, None);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks a newly spawned thread until the scheduler first picks
    /// it. Panics (unwinding before the closure ever runs) if the run
    /// aborts first.
    fn wait_first(&self, tid: usize) {
        let mut st = self.st();
        while st.current != tid {
            if st.abort.is_some() || st.draining {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Forces every parked thread to unwind and exit *without* claiming
    /// the failure-reason slot. Called when a thread needs its peers
    /// gone while its own panic is still propagating (a `Drop` joining
    /// worker threads mid-unwind): the real panic reaches
    /// `abort_and_drain` later and becomes the reported reason.
    fn begin_drain(&self) {
        self.st().draining = true;
        self.cv.notify_all();
    }

    /// Main-thread barrier at the end of the closure: waits until every
    /// spawned thread has finished (detecting deadlock if they can't).
    pub(crate) fn main_wait_all(&self) {
        self.switch(0, |_| {}, Some(Blocked::JoinAll));
    }

    /// Records an externally observed failure (a panic that escaped the
    /// closure), wakes everything, and waits for all spawned threads to
    /// drain so the next schedule starts clean. Returns the failure
    /// reason, if any.
    pub(crate) fn abort_and_drain(&self, external: Option<String>) -> Option<String> {
        let mut st = self.st();
        let all_done = |st: &State| {
            st.threads
                .iter()
                .enumerate()
                .all(|(i, t)| i == 0 || t.finished)
        };
        if let Some(m) = external {
            if m != ABORT_MSG && st.abort.is_none() {
                st.abort = Some(m);
            }
        }
        st.draining = true;
        if st.abort.is_some() || !all_done(&st) {
            if st.abort.is_none() {
                // Closure returned while threads are still running and
                // main never joined them: surface that as a failure
                // rather than hanging.
                st.abort = Some(
                    "model closure returned with unjoined running threads \
                     (join every spawned thread before returning)"
                        .to_string(),
                );
            }
            while !all_done(&st) {
                self.cv.notify_all();
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        st.abort.clone()
    }

    pub(crate) fn take_trace(&self) -> Vec<Choice> {
        std::mem::take(&mut self.st().trace)
    }
}

/// Wrapper every simulated thread runs: waits for its first schedule,
/// runs the closure, reports the outcome, and re-raises any panic so
/// the real `JoinHandle` yields it.
pub(crate) fn run_sim_thread<T>(sched: Arc<Sched>, tid: usize, f: impl FnOnce() -> T) -> T {
    set_current(Some(Ctx {
        sched: sched.clone(),
        tid,
    }));
    let result = catch_unwind(AssertUnwindSafe(|| {
        sched.wait_first(tid);
        f()
    }));
    let msg = result.as_ref().err().map(|p| panic_message(p.as_ref()));
    sched.thread_finished(tid, msg);
    set_current(None);
    match result {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// A thread's handle to the scheduler of the run it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

impl Ctx {
    pub(crate) fn main(sched: Arc<Sched>) -> Ctx {
        Ctx { sched, tid: 0 }
    }

    /// Resolves a facade object's per-run id, assigning one on first
    /// use. Ids are deterministic because object creation order is
    /// deterministic under the baton.
    pub(crate) fn obj_id(&self, cell: &ObjCell) -> u64 {
        let mut g = cell.0.lock().unwrap_or_else(PoisonError::into_inner);
        match *g {
            Some((run, id)) if run == self.sched.run_id => id,
            _ => {
                let mut st = self.sched.st();
                st.next_obj += 1;
                let id = st.next_obj;
                drop(st);
                *g = Some((self.sched.run_id, id));
                id
            }
        }
    }

    /// A plain schedule point (atomic ops, yields, sleeps, spawns).
    pub(crate) fn point(&self) {
        self.sched.switch(self.tid, |_| {}, None);
    }

    pub(crate) fn lock_mutex(&self, obj: u64) {
        self.sched
            .switch(self.tid, |_| {}, Some(Blocked::Mutex(obj)));
    }

    pub(crate) fn unlock_mutex(&self, obj: u64) {
        self.sched.switch(
            self.tid,
            |st| {
                st.mutexes.insert(obj, None);
            },
            None,
        );
    }

    pub(crate) fn lock_rw(&self, obj: u64, write: bool) {
        let b = if write {
            Blocked::RwWrite(obj)
        } else {
            Blocked::RwRead(obj)
        };
        self.sched.switch(self.tid, |_| {}, Some(b));
    }

    pub(crate) fn unlock_rw(&self, obj: u64, write: bool) {
        self.sched.switch(
            self.tid,
            |st| {
                let r = st.rws.entry(obj).or_default();
                if write {
                    r.writer = None;
                } else {
                    r.readers = r.readers.saturating_sub(1);
                }
            },
            None,
        );
    }

    /// Releases `mutex`, waits on `cv`, and returns with the mutex
    /// re-acquired. Returns true iff the wake was a timeout.
    pub(crate) fn cv_wait(&self, cv: u64, mutex: u64, timed: bool) -> bool {
        self.sched.switch(
            self.tid,
            |st| {
                st.mutexes.insert(mutex, None);
            },
            Some(Blocked::Cv {
                cv,
                mutex,
                signaled: false,
                timed,
            }),
        );
        self.sched.st().threads[self.tid].cv_timed_out
    }

    pub(crate) fn cv_notify(&self, cv: u64, all: bool) {
        self.sched.switch(
            self.tid,
            |st| {
                let waiters: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| {
                        !t.finished
                            && matches!(
                                &t.blocked,
                                Blocked::Cv { cv: c, signaled: false, .. } if *c == cv
                            )
                    })
                    .map(|(i, _)| i)
                    .collect();
                let chosen: &[usize] = if all {
                    &waiters
                } else if waiters.is_empty() {
                    &[]
                } else if waiters.len() == 1 {
                    &waiters[..1]
                } else {
                    // Which waiter a notify_one wakes is itself a
                    // scheduling decision.
                    let idx = st.pick(waiters.len(), false);
                    &waiters[idx..=idx]
                };
                let chosen = chosen.to_vec();
                for w in chosen {
                    if let Blocked::Cv { signaled, .. } = &mut st.threads[w].blocked {
                        *signaled = true;
                    }
                }
            },
            None,
        );
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.sched.st();
        st.threads.push(Th::new());
        st.threads.len() - 1
    }

    pub(crate) fn sched_handle(&self) -> Arc<Sched> {
        self.sched.clone()
    }

    pub(crate) fn join_thread(&self, target: usize) {
        if std::thread::panicking() {
            // A `Drop` is joining its threads while this thread's panic
            // unwinds (e.g. a worker pool dropped by the failing
            // closure). The caller will block on the *real* join next,
            // so the target must be forced to exit — but the in-flight
            // panic, not a scheduler message, must stay the reported
            // failure.
            self.sched.begin_drain();
            return;
        }
        self.sched
            .switch(self.tid, |_| {}, Some(Blocked::Join(target)));
    }

    pub(crate) fn thread_is_finished(&self, target: usize) -> bool {
        self.sched.switch(self.tid, |_| {}, None);
        self.sched.st().threads[target].finished
    }
}

/// `splitmix64`: tiny, seedable, and good enough for schedule picks.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
