//! The `std::sync`-shaped facade.
//!
//! Drop-in versions of the primitives the workspace uses: `Mutex`,
//! `RwLock`, `Condvar`, the atomics, and `thread::{spawn, JoinHandle}`.
//! Outside a `model()` closure (or without the `sim` feature) every
//! call delegates straight to `std`. Inside one, each operation first
//! reaches a schedule point so the controlled scheduler decides the
//! interleaving; the underlying `std` primitive is still what holds the
//! data, but the scheduler guarantees it is only ever taken
//! uncontended, so no unsafe code is needed.
//!
//! API differences from `std` (deliberate, minimal):
//! - `Condvar::wait_timeout` returns this module's
//!   [`WaitTimeoutResult`] (std's cannot be constructed by hand). In
//!   simulation an armed timeout may fire at any schedule point —
//!   there is no clock — so timeout-looping code must re-check its own
//!   deadline, exactly as it must under spurious wakeups.
//! - Poison: simulated locks never report poison (a panic aborts the
//!   whole schedule instead); passthrough locks report it exactly as
//!   `std` does.

#[cfg(feature = "sim")]
use crate::sched::{self, ObjCell};
use std::fmt;
use std::ops::{Deref, DerefMut};
pub use std::sync::{LockResult, PoisonError};
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual-exclusion lock; `std::sync::Mutex` outside simulation.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "sim")]
    obj: ObjCell,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "sim")]
            obj: ObjCell::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            let obj = ctx.obj_id(&self.obj);
            ctx.lock_mutex(obj);
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                #[cfg(feature = "sim")]
                sim_obj: Some(obj),
            });
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                #[cfg(feature = "sim")]
                sim_obj: None,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                #[cfg(feature = "sim")]
                sim_obj: None,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]; releases at a schedule point in simulation.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `None` only transiently, while parked inside `Condvar::wait`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "sim")]
    sim_obj: Option<u64>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("bgi-check: mutex guard accessed while parked in a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("bgi-check: mutex guard accessed while parked in a condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first, then tell the scheduler: only
        // one thread runs at a time, so nothing races in between.
        drop(self.inner.take());
        #[cfg(feature = "sim")]
        if let Some(obj) = self.sim_obj.take() {
            if let Some(ctx) = sched::current() {
                ctx.unlock_mutex(obj);
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock; `std::sync::RwLock` outside simulation.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "sim")]
    obj: ObjCell,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "sim")]
            obj: ObjCell::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            let obj = ctx.obj_id(&self.obj);
            ctx.lock_rw(obj, false);
            let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            return Ok(RwLockReadGuard {
                inner: Some(inner),
                #[cfg(feature = "sim")]
                sim_obj: Some(obj),
            });
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                inner: Some(g),
                #[cfg(feature = "sim")]
                sim_obj: None,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                inner: Some(p.into_inner()),
                #[cfg(feature = "sim")]
                sim_obj: None,
            })),
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            let obj = ctx.obj_id(&self.obj);
            ctx.lock_rw(obj, true);
            let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            return Ok(RwLockWriteGuard {
                inner: Some(inner),
                #[cfg(feature = "sim")]
                sim_obj: Some(obj),
            });
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                inner: Some(g),
                #[cfg(feature = "sim")]
                sim_obj: None,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                inner: Some(p.into_inner()),
                #[cfg(feature = "sim")]
                sim_obj: None,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident, $write:expr, $mut_access:tt) => {
        /// RAII guard for [`RwLock`].
        pub struct $name<'a, T: ?Sized> {
            inner: Option<std::sync::$std<'a, T>>,
            #[cfg(feature = "sim")]
            sim_obj: Option<u64>,
        }

        impl<T: ?Sized> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner
                    .as_deref()
                    .expect("bgi-check: rwlock guard missing")
            }
        }

        rw_guard!(@mut $name, $mut_access);

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                drop(self.inner.take());
                #[cfg(feature = "sim")]
                if let Some(obj) = self.sim_obj.take() {
                    if let Some(ctx) = sched::current() {
                        ctx.unlock_rw(obj, $write);
                    }
                }
            }
        }

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }
    };
    (@mut $name:ident, yes) => {
        impl<T: ?Sized> DerefMut for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                self.inner
                    .as_deref_mut()
                    .expect("bgi-check: rwlock guard missing")
            }
        }
    };
    (@mut $name:ident, no) => {};
}

rw_guard!(RwLockReadGuard, RwLockReadGuard, false, no);
rw_guard!(RwLockWriteGuard, RwLockWriteGuard, true, yes);

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Why a `wait_timeout` returned. Unlike `std`'s, this type is
/// constructible here, which is what lets the simulated scheduler
/// deliver timeout wakeups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable; `std::sync::Condvar` outside simulation.
#[derive(Default)]
pub struct Condvar {
    #[cfg(feature = "sim")]
    obj: ObjCell,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            #[cfg(feature = "sim")]
            obj: ObjCell::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            if guard.sim_obj.is_some() {
                return Ok(self.sim_wait(&ctx, guard, false).0);
            }
        }
        let lock = guard.lock;
        let mut guard = guard;
        let std_guard = guard
            .inner
            .take()
            .expect("bgi-check: condvar wait on a parked guard");
        drop(guard); // now a no-op: no inner, no sim obj
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
                #[cfg(feature = "sim")]
                sim_obj: None,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(p.into_inner()),
                #[cfg(feature = "sim")]
                sim_obj: None,
            })),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            if guard.sim_obj.is_some() {
                let (g, timed_out) = self.sim_wait(&ctx, guard, true);
                return Ok((g, WaitTimeoutResult { timed_out }));
            }
        }
        let lock = guard.lock;
        let mut guard = guard;
        let std_guard = guard
            .inner
            .take()
            .expect("bgi-check: condvar wait on a parked guard");
        drop(guard);
        let rebuild = |g, timed_out| {
            (
                MutexGuard {
                    lock,
                    inner: Some(g),
                    #[cfg(feature = "sim")]
                    sim_obj: None,
                },
                WaitTimeoutResult { timed_out },
            )
        };
        match self.inner.wait_timeout(std_guard, dur) {
            Ok((g, r)) => Ok(rebuild(g, r.timed_out())),
            Err(p) => {
                let (g, r) = p.into_inner();
                Err(PoisonError::new(rebuild(g, r.timed_out())))
            }
        }
    }

    /// Simulated wait: atomically releases the guard's mutex and parks
    /// as a waiter; returns with the mutex re-acquired.
    #[cfg(feature = "sim")]
    fn sim_wait<'a, T: ?Sized>(
        &self,
        ctx: &sched::Ctx,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        let cv_obj = ctx.obj_id(&self.obj);
        let mutex_obj = guard
            .sim_obj
            .take()
            .expect("bgi-check: sim_wait on a passthrough guard");
        drop(guard.inner.take());
        drop(guard); // defused: releases nothing
        let timed_out = ctx.cv_wait(cv_obj, mutex_obj, timed);
        // The scheduler granted us the simulated mutex; the std lock
        // underneath is guaranteed uncontended.
        let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                lock,
                inner: Some(inner),
                sim_obj: Some(mutex_obj),
            },
            timed_out,
        )
    }

    pub fn notify_one(&self) {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            ctx.cv_notify(ctx.obj_id(&self.obj), false);
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            ctx.cv_notify(ctx.obj_id(&self.obj), true);
            return;
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Facade atomics: every access is a schedule point in simulation, so
/// the explorer can interleave threads between a load and a dependent
/// store. The memory model simulated is sequential consistency — the
/// `Ordering` argument is passed through to the real atomic but does
/// not add reorderings to the exploration (the atomics-ordering lint
/// pass polices `Ordering` choices statically instead).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(feature = "sim")]
    fn point() {
        if let Some(ctx) = crate::sched::current() {
            ctx.point();
        }
    }

    #[cfg(not(feature = "sim"))]
    #[inline]
    fn point() {}

    macro_rules! atomic_int {
        ($name:ident, $std:ident, $prim:ty) => {
            /// Facade over the `std` atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    point();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    point();
                    self.inner.store(v, order);
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.swap(v, order)
                }

                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_max(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    point();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(AtomicU64, AtomicU64, u64);
    atomic_int!(AtomicU32, AtomicU32, u32);
    atomic_int!(AtomicUsize, AtomicUsize, usize);

    /// Facade over `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            point();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            point();
            self.inner.store(v, order);
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            point();
            self.inner.swap(v, order)
        }
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Facade over `std::thread` spawning and joining.
pub mod thread {
    #[cfg(feature = "sim")]
    use crate::sched;
    use std::time::Duration;

    /// Owns a spawned thread; `join` and `is_finished` are schedule
    /// points in simulation, so the explorer can interleave the target
    /// thread's completion with the observer.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        #[cfg(feature = "sim")]
        sim_tid: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            #[cfg(feature = "sim")]
            if let Some(tid) = self.sim_tid {
                if let Some(ctx) = sched::current() {
                    // Block (in the simulated sense) until the target
                    // finishes; the real join below is then immediate.
                    ctx.join_thread(tid);
                }
            }
            self.inner.join()
        }

        pub fn is_finished(&self) -> bool {
            #[cfg(feature = "sim")]
            if let Some(tid) = self.sim_tid {
                if let Some(ctx) = sched::current() {
                    return ctx.thread_is_finished(tid);
                }
            }
            self.inner.is_finished()
        }
    }

    /// Spawns a thread. Inside a model run the new thread is registered
    /// with the scheduler and does not execute until first picked.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            let tid = ctx.register_thread();
            let sched = ctx.sched_handle();
            let inner = std::thread::spawn(move || sched::run_sim_thread(sched, tid, f));
            // Spawning is itself a schedule point: the child may run
            // immediately or arbitrarily later.
            ctx.point();
            return JoinHandle {
                inner,
                sim_tid: Some(tid),
            };
        }
        JoinHandle {
            inner: std::thread::spawn(f),
            #[cfg(feature = "sim")]
            sim_tid: None,
        }
    }

    /// Yields. A plain schedule point in simulation.
    pub fn yield_now() {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            ctx.point();
            return;
        }
        std::thread::yield_now();
    }

    /// Sleeps. In simulation there is no clock: this is a schedule
    /// point (letting every other thread run arbitrarily far) and
    /// returns immediately, which is the correct model for sleeps used
    /// as backoff.
    pub fn sleep(dur: Duration) {
        #[cfg(feature = "sim")]
        if let Some(ctx) = sched::current() {
            ctx.point();
            return;
        }
        std::thread::sleep(dur);
    }
}
