//! Deterministic concurrency model checking for the BiG-index workspace.
//!
//! The concurrency-heavy crates (`bgi-service`, `bgi-ingest`, the WAL
//! commit path in `bgi-store`) synchronize through the [`sync`] facade
//! instead of `std::sync`. In a normal build the facade is a zero-cost
//! newtype over the `std` primitives. With the `sim` feature enabled
//! *and* inside a [`model`] closure, every synchronization point —
//! lock, unlock, condvar wait/notify, atomic access, spawn, join —
//! becomes a *schedule point*: the calling thread hands control to a
//! cooperative scheduler that decides, deterministically, which thread
//! runs next. Real OS threads are used, but at most one is ever
//! runnable, so the interleaving is exactly the scheduler's choice
//! sequence and can be replayed from a seed.
//!
//! Two exploration modes (see [`Mode`]):
//!
//! - **Seeded random** walks `iters` schedules drawn from a
//!   `splitmix64` stream. On failure the panic message names the exact
//!   seed; re-running with [`Mode::Replay`] (or `BGI_CHECK_SEED`)
//!   reproduces the interleaving bit-for-bit.
//! - **Bounded exhaustive** enumerates schedules depth-first with an
//!   *iterative preemption bound* (CHESS-style): a preemption is
//!   charged only when the scheduler switches away from a thread that
//!   could have continued; switches at blocking or exit points are
//!   free. Most real concurrency bugs need very few preemptions, so a
//!   bound of 2–3 covers the interesting schedules at a tiny fraction
//!   of the full tree.
//!
//! The model is *sequentially consistent interleaving*: atomics hit a
//! schedule point but the store itself is SC — weak-memory reorderings
//! are out of scope (the atomics-ordering lint pass in `cargo xtask
//! lint` polices `Ordering` choices statically instead).
//!
//! Deadlocks are detected positively: if no thread is runnable while
//! unfinished threads remain, the run aborts with a per-thread blame
//! report. Livelocks fall to the `max_steps` bound.
//!
//! This crate is test harness, not library surface: panicking is its
//! failure-reporting contract, so it is exempt from the workspace
//! panic budget (but not from `forbid(unsafe_code)` — the simulated
//! primitives keep data inside real `std` locks that the scheduler
//! guarantees are uncontended).

#![forbid(unsafe_code)]

pub mod sync;

#[cfg(feature = "sim")]
mod sched;

#[cfg(feature = "sim")]
mod explore;

#[cfg(feature = "sim")]
pub use explore::{model, Config, Mode, Report};

/// Reads a replay seed from `BGI_CHECK_SEED` (decimal or `0x`-hex).
///
/// Model tests use this to turn a CI failure message into a local
/// reproduction: `BGI_CHECK_SEED=0xdeadbeef cargo test -p bgi-service
/// --test model_check`.
pub fn env_seed() -> Option<u64> {
    let raw = std::env::var("BGI_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.ok()
}

/// Reads a randomized-round base seed from `BGI_CHECK_RANDOM_SEED`
/// (decimal or `0x`-hex). CI sets this to a fresh value per run and
/// echoes it, so randomized exploration stays reproducible.
pub fn env_random_base() -> Option<u64> {
    let raw = std::env::var("BGI_CHECK_RANDOM_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.ok()
}

// Without `sim` the explorer is compiled out; `model` degenerates to a
// single direct execution so a test suite written against the sim API
// still compiles and exercises its closure once on real threads.
#[cfg(not(feature = "sim"))]
mod nosim {
    /// Exploration mode (no-op without the `sim` feature).
    #[derive(Debug, Clone, Copy)]
    pub enum Mode {
        /// Seeded random walk over schedules.
        Random { iters: u64, seed: u64 },
        /// Depth-first enumeration under a preemption bound.
        Exhaustive {
            preemption_bound: usize,
            max_schedules: u64,
        },
        /// Re-run the single schedule a seed names.
        Replay { seed: u64 },
    }

    /// Model-check configuration (no-op without the `sim` feature).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        pub mode: Mode,
        /// Abort a single schedule after this many schedule points
        /// (livelock guard).
        pub max_steps: usize,
    }

    impl Config {
        pub fn random(iters: u64, seed: u64) -> Self {
            Config {
                mode: Mode::Random { iters, seed },
                max_steps: 20_000,
            }
        }

        /// Env-redirectable random config (no-op without `sim` — the
        /// closure runs once either way).
        pub fn random_or_env(iters: u64, base_seed: u64) -> Self {
            Config::random(iters, base_seed)
        }

        pub fn exhaustive(preemption_bound: usize) -> Self {
            Config {
                mode: Mode::Exhaustive {
                    preemption_bound,
                    max_schedules: 100_000,
                },
                max_steps: 20_000,
            }
        }

        pub fn replay(seed: u64) -> Self {
            Config {
                mode: Mode::Replay { seed },
                max_steps: 20_000,
            }
        }
    }

    /// What a model run covered.
    #[derive(Debug, Clone, Copy)]
    pub struct Report {
        /// Number of distinct schedules executed.
        pub schedules: u64,
    }

    /// Without `sim`, runs the closure once on the real scheduler.
    pub fn model(_config: Config, f: impl Fn()) -> Report {
        f();
        Report { schedules: 1 }
    }
}

#[cfg(not(feature = "sim"))]
pub use nosim::{model, Config, Mode, Report};
