//! Schedule exploration: seeded-random walks, bounded-exhaustive DFS,
//! and single-schedule replay.
//!
//! Exhaustive mode enumerates the schedule tree depth-first under an
//! *iterative preemption bound* (Musuvathi & Qadeer, CHESS). The
//! canonical option order puts "continue the current thread" first, so
//! the very first schedule (empty decision prefix) is the preemption-
//! free one, and a preemption is charged exactly when a recorded choice
//! with `cont == true` picks an option other than 0. Backtracking
//! replaces the deepest choice that still has an untried, in-budget
//! alternative; everything past the new prefix defaults back to
//! option 0.

use crate::sched::{self, Choice, Ctx, Sched, Source, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration mode.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// `iters` schedules driven by seeds derived from `seed`. Failure
    /// messages name the exact per-schedule seed for replay.
    Random { iters: u64, seed: u64 },
    /// Depth-first enumeration of every schedule reachable with at most
    /// `preemption_bound` preemptions, capped at `max_schedules`.
    Exhaustive {
        preemption_bound: usize,
        max_schedules: u64,
    },
    /// Re-run the single schedule a previously reported seed names.
    Replay { seed: u64 },
}

/// Model-check configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub mode: Mode,
    /// Abort a single schedule after this many schedule points — the
    /// livelock guard (spurious cv timeouts can otherwise spin).
    pub max_steps: usize,
}

impl Config {
    pub fn random(iters: u64, seed: u64) -> Self {
        Config {
            mode: Mode::Random { iters, seed },
            max_steps: 20_000,
        }
    }

    /// Like [`Config::random`], but the environment can redirect the
    /// run: `BGI_CHECK_SEED` replays that exact schedule (reproducing a
    /// reported failure), and `BGI_CHECK_RANDOM_SEED` swaps the base
    /// seed (CI's fresh randomized round — the job echoes the seed it
    /// picked so a failure stays reproducible).
    pub fn random_or_env(iters: u64, base_seed: u64) -> Self {
        if let Some(seed) = crate::env_seed() {
            return Config::replay(seed);
        }
        let base = crate::env_random_base().unwrap_or(base_seed);
        Config::random(iters, base)
    }

    pub fn exhaustive(preemption_bound: usize) -> Self {
        Config {
            mode: Mode::Exhaustive {
                preemption_bound,
                max_schedules: 100_000,
            },
            max_steps: 20_000,
        }
    }

    pub fn replay(seed: u64) -> Self {
        Config {
            mode: Mode::Replay { seed },
            max_steps: 20_000,
        }
    }
}

/// What a model run covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: u64,
}

/// Explores interleavings of `f` under `config.mode`, panicking with a
/// replayable diagnosis on the first failing schedule.
///
/// The closure runs once per schedule and must build all shared state
/// inside itself. Every spawned `check::sync::thread` must be joined
/// (or have finished) before the closure returns. Only facade
/// primitives are scheduler-aware: blocking on a bare `std::sync` or
/// `mpsc` primitive inside the closure will hang the run.
pub fn model(config: Config, f: impl Fn()) -> Report {
    assert!(
        sched::current().is_none(),
        "bgi-check: model() does not nest"
    );
    match config.mode {
        Mode::Replay { seed } => {
            run_reported(Source::Random(SplitMix64::new(seed)), config.max_steps, &f)
                .unwrap_or_else(|(msg, _)| {
                    panic!("bgi-check: replayed schedule (seed {seed:#018x}) failed: {msg}")
                });
            Report { schedules: 1 }
        }
        Mode::Random { iters, seed } => {
            let mut mixer = SplitMix64::new(seed);
            for i in 0..iters {
                let s = mixer.next();
                if let Err((msg, _)) =
                    run_reported(Source::Random(SplitMix64::new(s)), config.max_steps, &f)
                {
                    panic!(
                        "bgi-check: schedule failed under seed {s:#018x} \
                         (schedule {} of {iters}, base seed {seed:#018x}): {msg}\n  \
                         replay: Mode::Replay {{ seed: {s:#x} }} or BGI_CHECK_SEED={s:#x}",
                        i + 1
                    );
                }
            }
            Report { schedules: iters }
        }
        Mode::Exhaustive {
            preemption_bound,
            max_schedules,
        } => {
            let mut prefix: Vec<usize> = Vec::new();
            let mut n: u64 = 0;
            loop {
                n += 1;
                match run_reported(Source::Prefix(prefix.clone()), config.max_steps, &f) {
                    Err((msg, trace)) => panic!(
                        "bgi-check: schedule #{n} failed (preemption bound \
                         {preemption_bound})\n  decision prefix: {:?}\n  {msg}",
                        picks(&trace)
                    ),
                    Ok(trace) => match next_prefix(&trace, preemption_bound) {
                        Some(p) if n < max_schedules => prefix = p,
                        _ => break,
                    },
                }
            }
            Report { schedules: n }
        }
    }
}

/// Runs one schedule; returns its decision trace, or the failure reason
/// plus the trace that led there.
fn run_reported(
    source: Source,
    max_steps: usize,
    f: &impl Fn(),
) -> Result<Vec<Choice>, (String, Vec<Choice>)> {
    let sched = Arc::new(Sched::new(source, max_steps));
    sched::set_current(Some(Ctx::main(sched.clone())));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        f();
        sched.main_wait_all();
    }));
    let escaped = outcome.err().map(|p| sched::panic_message(p.as_ref()));
    let failure = sched.abort_and_drain(escaped);
    sched::set_current(None);
    let trace = sched.take_trace();
    match failure {
        None => Ok(trace),
        Some(msg) => Err((msg, trace)),
    }
}

fn picks(trace: &[Choice]) -> Vec<usize> {
    trace.iter().map(|c| c.picked).collect()
}

/// Computes the next DFS decision prefix within the preemption bound,
/// or `None` when the bounded tree is exhausted.
fn next_prefix(trace: &[Choice], bound: usize) -> Option<Vec<usize>> {
    // Preemptions spent strictly before each recorded choice.
    let mut pre = Vec::with_capacity(trace.len() + 1);
    pre.push(0usize);
    for c in trace {
        let spent = pre.last().copied().unwrap_or(0);
        pre.push(spent + usize::from(c.cont && c.picked != 0));
    }
    for i in (0..trace.len()).rev() {
        let c = &trace[i];
        for alt in c.picked + 1..c.n {
            let cost = usize::from(c.cont && alt != 0);
            if pre[i] + cost <= bound {
                let mut p: Vec<usize> = trace[..i].iter().map(|c| c.picked).collect();
                p.push(alt);
                return Some(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(picked: usize, n: usize, cont: bool) -> Choice {
        Choice { picked, n, cont }
    }

    #[test]
    fn next_prefix_enumerates_alternatives_deepest_first() {
        let trace = vec![choice(0, 2, true), choice(0, 3, true)];
        assert_eq!(next_prefix(&trace, 2), Some(vec![0, 1]));
        let trace = vec![choice(0, 2, true), choice(2, 3, true)];
        assert_eq!(next_prefix(&trace, 2), Some(vec![1]));
        let trace = vec![choice(1, 2, true), choice(2, 3, true)];
        assert_eq!(next_prefix(&trace, 2), None);
    }

    #[test]
    fn preemption_bound_prunes_costly_alternatives() {
        // Both choices are preemption-charged; under bound 1 the second
        // alternative is only affordable while the first pick stays 0.
        let trace = vec![choice(1, 2, true), choice(0, 2, true)];
        assert_eq!(next_prefix(&trace, 1), None);
        let trace = vec![choice(0, 2, true), choice(1, 2, true)];
        assert_eq!(next_prefix(&trace, 1), Some(vec![1]));
    }

    #[test]
    fn non_cont_choices_are_free() {
        let trace = vec![choice(1, 2, true), choice(0, 2, false)];
        assert_eq!(next_prefix(&trace, 1), Some(vec![1, 1]));
    }
}
