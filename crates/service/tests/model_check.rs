//! Deterministic model checking of the service's concurrency protocols.
//!
//! These tests run the *real* service code — single-flight leader
//! election, the cache generation protocol, the background-rebuild
//! handoff — under `bgi-check`'s controlled scheduler, which explores
//! thread interleavings deterministically instead of hoping a stress
//! test stumbles onto the bad one. Exhaustive tests enumerate every
//! schedule within a preemption bound; random tests sample seeded
//! schedules and name the seed on failure so any run is replayable
//! with `BGI_CHECK_SEED=<seed>`.
//!
//! Test-design rules for this file (the scheduler has no clock and
//! controls only facade sync points):
//! - build all shared state inside the `model` closure and join every
//!   spawned thread before it returns;
//! - never block on a bare `std` primitive (mpsc `recv`, std locks) —
//!   the scheduler cannot see it and the run would wedge;
//! - deadlines must be `None` or already in the past: an armed future
//!   timeout can fire at *any* schedule point.

use bgi_check::sync::thread;
use bgi_check::sync::{Mutex, PoisonError};
use bgi_check::{model, Config};
use bgi_graph::{GraphBuilder, LabelId, OntologyBuilder, VId};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate, RebuildPolicy};
use bgi_search::blinks::BlinksParams;
use bgi_search::RClique;
use bgi_service::admission::BoundedQueue;
use bgi_service::cache::{AnswerCache, CacheKey};
use bgi_service::flight::{Flight, SingleFlight};
use bgi_service::snapshot::ExecOutcome;
use bgi_service::{IndexSnapshot, Logger, QueryRequest, Semantics, Service, ServiceConfig};
use bgi_store::IndexBundle;
use big_index::{BiGIndex, BuildParams, EvalOptions};
use std::io::Write;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------

/// The leader errors (leaves without caching anything) and the
/// follower must recover by re-electing itself — in *every*
/// interleaving up to two preemptions.
#[test]
fn single_flight_recovers_from_a_dying_leader() {
    let report = model(Config::exhaustive(2), || {
        let flight: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert_eq!(flight.join(&7, None), Flight::Leader);
        let follower = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || {
                // The self-healing loop from Shared::serve: a coalesced
                // wake means "re-check the cache"; the leader died, so
                // the re-check misses and we join again.
                loop {
                    match flight.join(&7, None) {
                        Flight::Leader => {
                            flight.leave(&7);
                            return true;
                        }
                        Flight::Coalesced => {}
                        Flight::TimedOut => return false,
                    }
                }
            })
        };
        // The leader "dies": releases the key with nothing cached.
        flight.leave(&7);
        let recovered = follower.join().unwrap();
        assert!(recovered, "follower never took over leadership");
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

/// The acceptance self-test: reintroduce the pre-PR-4 bug (a leader
/// whose error path forgets `leave`) and show the checker catches it
/// as a deadlock, names a seed, and reproduces it under replay.
#[test]
fn reintroduced_leaderless_bug_is_caught_and_replayable() {
    fn buggy_schedule() {
        let flight: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert_eq!(flight.join(&7, None), Flight::Leader);
        let follower = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || flight.join(&7, None))
        };
        // BUG (intentional): the leader errors out and returns without
        // `flight.leave(&7)` — the follower waits forever.
        let _ = follower.join();
    }

    let failure = std::panic::catch_unwind(|| {
        model(Config::random(10, 0xB16_B00), buggy_schedule);
    })
    .expect_err("the checker missed a leader that never leaves");
    let msg = failure
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("under seed 0x"),
        "failure does not name its seed: {msg}"
    );
    assert!(
        msg.contains("deadlock") || msg.contains("never notified"),
        "failure is not reported as a deadlock: {msg}"
    );

    // The named seed reproduces the exact failing interleaving.
    let seed_hex = msg
        .split("under seed 0x")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("seed parseable from failure message");
    let seed = u64::from_str_radix(seed_hex, 16).expect("seed is hex");
    let replay = std::panic::catch_unwind(|| {
        model(Config::replay(seed), buggy_schedule);
    });
    assert!(replay.is_err(), "replay of seed {seed:#x} did not fail");
}

/// A follower holding an already-expired deadline must time out (the
/// leader still holds the key), and its retry after the leader departs
/// must win leadership — the regression shape behind coalesced-side
/// deadline handling.
#[test]
fn single_flight_follower_times_out_then_retries() {
    let report = model(Config::exhaustive(2), || {
        let flight: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert_eq!(flight.join(&3, None), Flight::Leader);
        let past = Instant::now() - Duration::from_millis(10);
        let follower = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || flight.join(&3, Some(past)))
        };
        // The key stays held until the follower has its answer, so the
        // expired deadline must surface as TimedOut in every schedule.
        assert_eq!(follower.join().unwrap(), Flight::TimedOut);
        flight.leave(&3);
        // The timed-out requester's retry finds the key free.
        assert_eq!(flight.join(&3, Some(past)), Flight::Leader);
        flight.leave(&3);
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

// ---------------------------------------------------------------------
// Cache generation protocol
// ---------------------------------------------------------------------

fn exec_outcome() -> Arc<ExecOutcome> {
    Arc::new(ExecOutcome {
        answers: Vec::new(),
        layer: 0,
        fell_back: false,
        completeness: bgi_search::Completeness::Exact,
    })
}

fn cache_key() -> CacheKey {
    CacheKey::of(&QueryRequest::new(Semantics::Bkws, vec![LabelId(1)], 3, 5))
}

/// A writer that captured its generation before an invalidation raced
/// in can never leave a stale entry behind: either the insert lands
/// first and is cleared, or the generation check refuses it.
#[test]
fn stale_insert_cannot_survive_invalidation() {
    let report = model(Config::exhaustive(2), || {
        let cache = Arc::new(AnswerCache::new(1, 8));
        let generation = cache.generation();
        let writer = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.insert_at(generation, cache_key(), exec_outcome()))
        };
        let invalidator = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.invalidate_all())
        };
        writer.join().unwrap();
        invalidator.join().unwrap();
        assert!(
            cache.is_empty(),
            "an entry computed against generation {generation} outlived the swap"
        );
        // A writer at the *current* generation still works.
        cache.insert_at(cache.generation(), cache_key(), exec_outcome());
        assert_eq!(cache.len(), 1);
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

// ---------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------

/// Close racing a blocked consumer: queued work always drains, then
/// the consumer sees end-of-work — never a lost item, never a hang.
#[test]
fn admission_close_drains_blocked_consumer() {
    let report = model(Config::exhaustive(2), || {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = queue.pop() {
                    got.push(v);
                }
                got
            })
        };
        queue.push(1).unwrap();
        queue.close();
        assert_eq!(consumer.join().unwrap(), vec![1]);
    });
    assert!(report.schedules > 1, "exhaustive run explored one schedule");
}

// ---------------------------------------------------------------------
// Background-rebuild handoff (service level)
// ---------------------------------------------------------------------

/// A tiny bundle so each explored schedule rebuilds in microseconds.
fn tiny_bundle() -> IndexBundle {
    static BUNDLE: OnceLock<IndexBundle> = OnceLock::new();
    BUNDLE
        .get_or_init(|| {
            let mut ob = OntologyBuilder::new(4);
            ob.add_subtype(LabelId(0), LabelId(1));
            ob.add_subtype(LabelId(0), LabelId(2));
            let ontology = ob.build().unwrap();
            let mut b = GraphBuilder::new();
            for i in 0..10u32 {
                b.add_vertex(LabelId(1 + (i % 2)));
            }
            for i in 0..9u32 {
                b.add_edge(VId(i), VId(i + 1));
            }
            let g = b.build();
            let index = BiGIndex::build(
                g,
                ontology,
                &BuildParams {
                    max_layers: 1,
                    ..BuildParams::default()
                },
            );
            IndexBundle::build(
                index,
                BlinksParams::default(),
                RClique::default(),
                EvalOptions::default(),
            )
        })
        .clone()
}

fn trigger_happy_engine() -> Engine {
    Engine::new(
        tiny_bundle(),
        EngineConfig {
            policy: RebuildPolicy {
                alpha: 0.5,
                max_cost_increase: 1e9, // never trip on cost
                max_updates: 2,         // trip on update count quickly
            },
            threads: 1,
        },
    )
    .unwrap()
}

fn one_worker_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_shards: 1,
        cache_capacity: 8,
        default_deadline: None,
        degradation: None,
    }
}

/// A log sink the test can read back through the facade (a bare std
/// lock here would be invisible to the scheduler).
#[derive(Clone, Default)]
struct LogCapture(Arc<Mutex<String>>);

impl LogCapture {
    fn contains(&self, needle: &str) -> bool {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(needle)
    }
}

impl Write for LogCapture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_str(&String::from_utf8_lossy(buf));
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The write path keeps applying batches while a drift-triggered
/// rebuild runs on its background thread; whenever adoption lands
/// relative to those writes, the engine ends verified with every
/// update present and exactly one rebuild counted.
#[test]
fn rebuild_adoption_races_ongoing_writes() {
    model(Config::random_or_env(8, 0xAD097), || {
        let mut engine = trigger_happy_engine();
        let snapshot = Arc::new(IndexSnapshot::from_bundle(engine.bundle().clone()).unwrap());
        let mut service = Service::start(snapshot, one_worker_config());

        // Drive batches until drift launches the background build.
        let mut started = false;
        for i in 0..8u32 {
            let report = service
                .apply_updates(&mut engine, &[IngestUpdate::InsertEdge { src: i, dst: 9 }])
                .unwrap();
            if report.rebuild_started {
                started = true;
                break;
            }
        }
        assert!(started, "drift policy never recommended a rebuild");

        // More writes land while the rebuild runs — they become the
        // delta the adoption must replay.
        let mut adopted = false;
        for i in 0..4u32 {
            let report = service
                .apply_updates(
                    &mut engine,
                    &[IngestUpdate::InsertEdge { src: 9 - i, dst: i }],
                )
                .unwrap();
            if report.rebuilt {
                adopted = true;
            }
        }
        while !adopted {
            adopted = service.poll_rebuild(&mut engine).unwrap();
        }

        assert!(
            engine.index().verify().is_clean(),
            "adoption broke the index"
        );
        assert!(
            engine.index().base().has_edge(VId(9), VId(0)),
            "a delta write applied mid-rebuild was lost"
        );
        // The delta writes can push drift past the policy threshold
        // again, so a second rebuild may legitimately start and adopt.
        assert!(service.stats().ingest_rebuilds >= 1);
        service.shutdown();
    });
}

/// A rebuild captured from one engine must be discarded — not adopted —
/// when the service polls with a *different* engine (the crash-recovery
/// shape: the caller recovered a fresh engine while the build ran).
#[test]
fn stale_rebuild_is_discarded_when_engine_is_replaced() {
    model(Config::random_or_env(8, 0x57A1E), || {
        let mut engine = trigger_happy_engine();
        let capture = LogCapture::default();
        let mut service = Service::start_with_logger(
            Arc::new(IndexSnapshot::from_bundle(engine.bundle().clone()).unwrap()),
            one_worker_config(),
            Logger::to(Box::new(capture.clone())),
        );

        let mut started = false;
        for i in 0..8u32 {
            let report = service
                .apply_updates(&mut engine, &[IngestUpdate::InsertEdge { src: i, dst: 9 }])
                .unwrap();
            if report.rebuild_started {
                started = true;
                break;
            }
        }
        assert!(started, "drift policy never recommended a rebuild");

        // Replace the engine mid-rebuild: the job in the slot now
        // describes a dead epoch.
        let mut replacement = trigger_happy_engine();
        let seq_before = replacement.last_seq();
        while !capture.contains("stale background rebuild discarded") {
            let adopted = service.poll_rebuild(&mut replacement).unwrap();
            assert!(!adopted, "a stale rebuild was adopted into a fresh engine");
        }
        assert_eq!(replacement.last_seq(), seq_before);
        assert!(!replacement.rebuild_in_flight());
        assert_eq!(service.stats().ingest_rebuilds, 0);
        service.shutdown();
    });
}
