//! Property test: scatter–gather over a sharded snapshot answers
//! exactly like the monolithic snapshot on the same graph — for every
//! semantics, at 1/2/4/8 shards — and degrades safely when the budget
//! expires mid-scatter.
//!
//! Small graphs and a generous `k` make the plugged-in search
//! exhaustive, so the merged answer lists are compared exactly: the
//! `(score, identity)` order is total, which makes the top-`k` unique.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_search::blinks::BlinksParams;
use bgi_search::{AnswerGraph, Budget, RClique};
use bgi_service::{
    snapshot_from_build, IndexSnapshot, QueryError, QueryRequest, Semantics, ShardedSnapshot,
};
use bgi_shard::{build_shard_bundles, ShardBuildParams, ShardPlan, ShardSpec};
use bgi_store::IndexBundle;
use big_index::{BiGIndex, BuildParams, EvalOptions};
use proptest::prelude::*;
use std::sync::Arc;

const DMAX: u32 = 3;
const K: usize = 25;

fn mono_snapshot(ds: &Dataset) -> IndexSnapshot {
    let params = BuildParams {
        max_layers: 2,
        ..BuildParams::default()
    };
    let index = BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params);
    let bundle = IndexBundle::build(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
    );
    IndexSnapshot::from_bundle(bundle).expect("mono snapshot admits")
}

fn sharded_snapshot(ds: &Dataset, shards: usize) -> Arc<ShardedSnapshot> {
    let plan = ShardPlan::build(
        &ds.graph,
        &ShardSpec {
            shards,
            dmax_ceiling: DMAX,
            partition_block: 0,
        },
    )
    .expect("plan builds");
    let bundles = build_shard_bundles(
        &ds.graph,
        &ds.ontology,
        &plan,
        &ShardBuildParams {
            max_layers: 2,
            ..ShardBuildParams::default()
        },
    );
    snapshot_from_build(Arc::new(plan), bundles, 2).expect("sharded snapshot admits")
}

/// The equality workload runs at layer 0: that is the one layer both
/// deployments evaluate on the *same* structure (the data graph), so
/// the top-`k` is a unique, comparable object. Summary layers are
/// approximate by design (hence the fallback ladder), and the mono and
/// per-shard hierarchies are legitimately different generalization
/// ladders — their summary-layer best-effort sets need not coincide.
fn workload(ds: &Dataset, seed: u64) -> Vec<QueryRequest> {
    let queries = benchmark_queries(ds, DMAX, 3, seed);
    assert!(!queries.is_empty());
    queries
        .iter()
        .enumerate()
        .flat_map(|(i, q)| {
            let semantics = Semantics::ALL[i % Semantics::ALL.len()];
            let mut req = QueryRequest::new(semantics, q.keywords.clone(), q.dmax, K);
            req.layer = Some(0);
            // Every semantics also runs on the first keyword set.
            let extra = Semantics::ALL
                .into_iter()
                .filter(move |&s| i == 0 && s != semantics)
                .map({
                    let keywords = q.keywords.clone();
                    let dmax = q.dmax;
                    move |s| {
                        let mut r = QueryRequest::new(s, keywords.clone(), dmax, K);
                        r.layer = Some(0);
                        r
                    }
                });
            std::iter::once(req).chain(extra)
        })
        .collect()
}

fn rendered(answers: &[AnswerGraph]) -> Vec<String> {
    answers.iter().map(|a| format!("{a:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sharded_answers_match_monolithic(
        n in 150usize..320,
        seed in 0u64..1_000,
    ) {
        let ds = DatasetSpec::yago_like(n).generate();
        let mono = mono_snapshot(&ds);
        let requests = workload(&ds, seed);
        let budget = Budget::unlimited();
        for shards in [1usize, 2, 4, 8] {
            let sharded = sharded_snapshot(&ds, shards);
            for req in &requests {
                let want = mono.execute(req, &budget).expect("mono serves");
                let got = sharded.execute(req, &budget).expect("sharded serves");
                prop_assert!(
                    got.completeness.is_exact(),
                    "{shards} shards: unlimited budget must stay exact"
                );
                prop_assert_eq!(
                    rendered(&got.answers),
                    rendered(&want.answers),
                    "{} shards diverged on {:?} (layer {:?})",
                    shards,
                    req.semantics,
                    req.layer
                );
                // The cost-optimal-layer path (each shard picks its
                // own layer) must still serve and stay exact-marked,
                // even though its best-effort set lives on a different
                // generalization ladder than the monolithic one.
                let mut optimal = req.clone();
                optimal.layer = None;
                let out = sharded.execute(&optimal, &budget).expect("optimal layer serves");
                prop_assert!(out.completeness.is_exact());
            }
        }
    }
}

#[test]
fn expired_budget_times_out_instead_of_lying() {
    let ds = DatasetSpec::yago_like(260).generate();
    let sharded = sharded_snapshot(&ds, 4);
    let req = &workload(&ds, 7)[0];
    // Already-exhausted budget: every leg sheds, and an all-shed
    // scatter is a timeout, not an empty exact answer.
    let expired = Budget::with_timeout(std::time::Duration::ZERO);
    assert!(matches!(
        sharded.execute(req, &expired),
        Err(QueryError::Timeout)
    ));
}

#[test]
fn partial_merges_are_subsets_and_marked_non_exact() {
    let ds = DatasetSpec::yago_like(260).generate();
    let mono = mono_snapshot(&ds);
    let sharded = sharded_snapshot(&ds, 4);
    let mut partial_seen = false;
    for req in workload(&ds, 11) {
        let full: Vec<String> = {
            let out = mono.execute(&req, &Budget::unlimited()).expect("mono");
            rendered(&out.answers)
        };
        // Sweep check-limited budgets from starved to generous: legs
        // drop out at the small limits, finishing the sweep exact.
        for limit in [1u64, 8, 64, 512, 4096, 1 << 20] {
            let budget = Budget::with_check_limit(limit);
            match sharded.execute(&req, &budget) {
                Err(QueryError::Timeout) => {} // every leg shed
                Err(err) => panic!("unexpected failure under pressure: {err}"),
                Ok(out) => {
                    if !out.completeness.is_exact() {
                        partial_seen = true;
                        // A degraded merge reports only genuine answers.
                        for a in rendered(&out.answers) {
                            assert!(full.contains(&a), "degraded merge invented an answer: {a}");
                        }
                    } else {
                        assert_eq!(rendered(&out.answers), full, "exact merge diverged");
                    }
                }
            }
        }
    }
    assert!(
        partial_seen,
        "no budget in the sweep produced a partial merge; widen the sweep"
    );
}

#[test]
fn dmax_above_the_partition_ceiling_is_refused() {
    let ds = DatasetSpec::yago_like(200).generate();
    let sharded = sharded_snapshot(&ds, 2);
    let mut req = workload(&ds, 3)[0].clone();
    req.dmax = DMAX + 1;
    assert!(matches!(
        sharded.execute(&req, &Budget::unlimited()),
        Err(QueryError::DmaxExceedsPartition {
            requested,
            ceiling: DMAX,
        }) if requested == DMAX + 1
    ));
}
