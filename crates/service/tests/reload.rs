//! Recovery-gated hot reload: `Service::reload_from_disk` swaps in the
//! newest complete on-disk generation, and on *any* failure rolls back
//! to the running snapshot — degraded but serving, with the rollback
//! visible in the stats.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_search::blinks::BlinksParams;
use bgi_search::{AnswerGraph, Budget, RClique};
use bgi_service::{IndexSnapshot, QueryRequest, Semantics, Service, ServiceConfig};
use bgi_store::{IndexBundle, Store};
use big_index::{BiGIndex, BuildParams, EvalOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn bundle_of(ds: &Dataset) -> IndexBundle {
    let params = BuildParams {
        max_layers: 2,
        ..BuildParams::default()
    };
    let index = BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params);
    IndexBundle::build(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
    )
}

fn workload(ds: &Dataset) -> Vec<QueryRequest> {
    let queries = benchmark_queries(ds, 3, 4, 11);
    assert!(!queries.is_empty());
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let semantics = Semantics::ALL[i % Semantics::ALL.len()];
            QueryRequest::new(semantics, q.keywords.clone(), q.dmax, 5)
        })
        .collect()
}

/// Answers the snapshot itself produces for `requests` (minus timing).
fn expected(snapshot: &IndexSnapshot, requests: &[QueryRequest]) -> Vec<Vec<AnswerGraph>> {
    requests
        .iter()
        .map(|req| {
            snapshot
                .execute(req, &Budget::unlimited())
                .expect("valid workload")
                .answers
        })
        .collect()
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "bgi-service-reload-{tag}-{}-{seq}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        TempDir(d)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        cache_shards: 2,
        cache_capacity: 128,
        default_deadline: None,
        degradation: None,
    }
}

#[test]
fn reload_swaps_to_the_new_generation() {
    let ds_a = DatasetSpec::yago_like(300).generate();
    let ds_b = DatasetSpec::yago_like(420).generate();
    let dir = TempDir::new("swap");
    let store = Store::open(&dir.0).expect("store opens");
    store.save(&bundle_of(&ds_a)).expect("save A");

    // Boot the service straight from disk — no hierarchy construction.
    let (generation, loaded) = store.load_latest().expect("recovery");
    assert_eq!(generation, 1);
    let snapshot = IndexSnapshot::from_bundle(loaded).expect("verified bundle");
    let service = Service::start(Arc::new(snapshot), config());

    let requests = workload(&ds_a);
    let before = expected(&service.snapshot().expect("mono"), &requests);

    // A new generation lands on disk; reload picks it up.
    store.save(&bundle_of(&ds_b)).expect("save B");
    assert_eq!(service.reload_from_disk(&store).expect("reload"), 2);
    let after = expected(&service.snapshot().expect("mono"), &requests);
    assert_ne!(before, after, "generations must be distinguishable");
    for (idx, req) in requests.iter().enumerate() {
        let resp = service.query(req.clone()).expect("served");
        assert_eq!(
            resp.answers, after[idx],
            "request {idx} served pre-reload answers"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.reload_rollbacks, 0);
    assert_eq!(stats.index_swaps, 1);
}

#[test]
fn corrupt_generation_rolls_back_and_keeps_serving() {
    let ds = DatasetSpec::yago_like(300).generate();
    let dir = TempDir::new("rollback");
    let store = Store::open(&dir.0).expect("store opens");
    store.save(&bundle_of(&ds)).expect("save");
    let (_, loaded) = store.load_latest().expect("recovery");
    let snapshot = IndexSnapshot::from_bundle(loaded).expect("verified bundle");
    let service = Service::start(Arc::new(snapshot), config());

    let requests = workload(&ds);
    let before = expected(&service.snapshot().expect("mono"), &requests);

    // Corrupt the only generation on disk, then ask for a reload.
    let victim = dir.0.join("gen-00000001").join("index.bin");
    let mut bytes = std::fs::read(&victim).expect("read index.bin");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).expect("corrupt index.bin");

    let err = service
        .reload_from_disk(&store)
        .expect_err("corrupt store must not reload");
    let msg = err.to_string();
    assert!(!msg.is_empty());

    // Degraded but serving: the old snapshot still answers, identically.
    for (idx, req) in requests.iter().enumerate() {
        let resp = service.query(req.clone()).expect("still serving");
        assert_eq!(
            resp.answers, before[idx],
            "request {idx} changed after rollback"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.reloads, 0);
    assert_eq!(stats.reload_rollbacks, 1);
    assert_eq!(stats.index_swaps, 0, "nothing was swapped in");
    let line = stats.to_string();
    assert!(
        line.contains("rollbacks 1"),
        "stats line surfaces the rollback: {line}"
    );
}

#[test]
fn empty_store_reload_is_a_typed_rollback() {
    let ds = DatasetSpec::yago_like(300).generate();
    let snapshot = IndexSnapshot::from_bundle(bundle_of(&ds)).expect("verified bundle");
    let service = Service::start(Arc::new(snapshot), config());
    let dir = TempDir::new("empty");
    let store = Store::open(&dir.0).expect("store opens");
    assert!(service.reload_from_disk(&store).is_err());
    assert_eq!(service.stats().reload_rollbacks, 1);
}
