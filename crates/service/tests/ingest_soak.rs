//! Ingest soak: a concurrent query + update storm with injected WAL
//! kills. The acceptance invariants:
//!
//! 1. queries keep being served (from the last good snapshot) while
//!    updates and failures happen — never a panic, never torn state;
//! 2. after each kill, reopening the store replays the WAL to exactly
//!    the last *committed* batch (byte-equal base graph against a
//!    shadow copy that applied only committed batches);
//! 3. a fresh from-scratch rebuild of the recovered graph answers every
//!    workload query identically to the incrementally maintained
//!    hierarchy (rendered answers byte-compared, at every layer);
//! 4. a checkpoint folds the WAL into a new generation, after which a
//!    cold open replays nothing and serves the same bundle.

use bgi_datasets::{benchmark_queries, update_stream, DatasetSpec, UpdateMix, UpdateOp};
use bgi_graph::{DiGraph, GraphBuilder, LabelId, Ontology, VId};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate, RebuildPolicy};
use bgi_search::blinks::BlinksParams;
use bgi_search::{Banks, KeywordQuery, KeywordSearch, RClique};
use bgi_service::{IndexSnapshot, QueryRequest, Semantics, Service, ServiceConfig, WriteHub};
use bgi_store::{FailAction, Failpoints, IndexBundle, RetryPolicy, Store};
use big_index::{eval_at_layer, BiGIndex, EvalOptions, GenConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("bgi-ingest-soak-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Greedy full-step configs, the same probing the benchmark CLI uses.
fn step_configs(g: &DiGraph, ontology: &Ontology, layers: usize) -> Vec<GenConfig> {
    let mut configs = Vec::new();
    let mut current = g.clone();
    for _ in 0..layers {
        let counts = current.label_counts();
        let mappings: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .filter_map(|(i, _)| {
                let l = LabelId(i as u32);
                if l.index() >= ontology.num_labels() {
                    return None;
                }
                ontology.direct_supertypes(l).first().map(|&sup| (l, sup))
            })
            .collect();
        let config = match GenConfig::new(mappings, ontology) {
            Ok(c) if !c.is_empty() => c,
            _ => break,
        };
        let probe = BiGIndex::build_with_configs(
            current.clone(),
            ontology.clone(),
            vec![config.clone()],
            bgi_bisim::BisimDirection::Forward,
        );
        let next = probe.graph_at(1).clone();
        configs.push(config);
        if next.size() == current.size() {
            break;
        }
        current = next;
    }
    configs
}

fn build_bundle(g: DiGraph, o: Ontology, configs: &[GenConfig]) -> IndexBundle {
    let index =
        BiGIndex::build_with_configs(g, o, configs.to_vec(), bgi_bisim::BisimDirection::Forward);
    IndexBundle::build(
        index,
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
    )
}

/// Shadow of the base graph, fed only *committed* batches.
struct Shadow {
    labels: Vec<LabelId>,
    edges: BTreeSet<(VId, VId)>,
}

impl Shadow {
    fn of(g: &DiGraph) -> Self {
        Shadow {
            labels: g.labels().to_vec(),
            edges: g.edges().collect(),
        }
    }

    fn apply(&mut self, updates: &[IngestUpdate]) {
        for u in updates {
            match *u {
                IngestUpdate::InsertEdge { src, dst } => {
                    self.edges.insert((VId(src), VId(dst)));
                }
                IngestUpdate::DeleteEdge { src, dst } => {
                    self.edges.remove(&(VId(src), VId(dst)));
                }
                IngestUpdate::AddVertex { label } => self.labels.push(LabelId(label)),
            }
        }
    }

    fn graph(&self) -> DiGraph {
        GraphBuilder::from_edges(self.labels.clone(), self.edges.iter().copied().collect())
    }
}

/// All answers of `query` at layer `m`, rendered, sorted, deduped.
fn answer_set(index: &BiGIndex, m: usize, query: &KeywordQuery) -> Vec<String> {
    let banks = Banks.build_index(index.graph_at(m));
    let result = eval_at_layer(index, &Banks, &banks, query, 50, m, &EvalOptions::default());
    let mut rendered: Vec<String> = result.answers.iter().map(|a| format!("{a:?}")).collect();
    rendered.sort();
    rendered.dedup();
    rendered
}

/// Invariant 3: the incrementally maintained hierarchy answers exactly
/// like a from-scratch rebuild of the same graph.
fn assert_answers_match_scratch(index: &BiGIndex, configs: &[GenConfig], queries: &[KeywordQuery]) {
    let scratch = BiGIndex::build_with_configs(
        index.base().clone(),
        index.ontology().clone(),
        configs.to_vec(),
        bgi_bisim::BisimDirection::Forward,
    );
    assert_eq!(scratch.num_layers(), index.num_layers());
    for m in 0..=scratch.num_layers() {
        for q in queries {
            assert_eq!(
                answer_set(index, m, q),
                answer_set(&scratch, m, q),
                "layer {m} answers diverged from scratch rebuild for {q:?}"
            );
        }
    }
}

/// The background rebuild lifecycle through the service write path: a
/// tight policy starts a rebuild off-thread, further batches keep
/// applying while it runs, and a later call (or an explicit poll)
/// adopts the result — delta replayed, snapshot swapped, counted in
/// the stats.
#[test]
fn background_rebuild_adopts_without_blocking_writes() {
    let ds = DatasetSpec::synt(300).generate();
    let configs = step_configs(&ds.graph, &ds.ontology, 2);
    assert!(!configs.is_empty(), "dataset produced no Gen steps");
    let bundle = build_bundle(ds.graph.clone(), ds.ontology.clone(), &configs);
    let snapshot = Arc::new(IndexSnapshot::from_bundle(bundle.clone()).unwrap());
    let service = Service::start(
        snapshot,
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_shards: 2,
            cache_capacity: 32,
            default_deadline: None,
            degradation: None,
        },
    );
    let config = EngineConfig {
        policy: RebuildPolicy {
            alpha: 0.5,
            max_cost_increase: 1e9, // never trip on cost
            max_updates: 4,         // trip on update count quickly
        },
        threads: 1,
    };
    let mut engine = Engine::new(bundle, config).unwrap();

    let stream: Vec<IngestUpdate> = update_stream(&ds.graph, 7, 60, UpdateMix::default())
        .iter()
        .map(|op| match *op {
            UpdateOp::InsertEdge { src, dst } => IngestUpdate::InsertEdge { src, dst },
            UpdateOp::DeleteEdge { src, dst } => IngestUpdate::DeleteEdge { src, dst },
            UpdateOp::AddVertex { label } => IngestUpdate::AddVertex { label },
        })
        .collect();
    let (mut started, mut adopted) = (false, false);
    for chunk in stream.chunks(3) {
        let report = service
            .apply_updates(&mut engine, chunk)
            .unwrap_or_else(|e| panic!("batch failed: {e}"));
        assert_eq!(report.outcome.applied, chunk.len());
        started |= report.rebuild_started;
        adopted |= report.rebuilt;
    }
    assert!(started, "tight policy never started a background rebuild");
    // Drain the last in-flight build via the explicit poll — writes
    // have stopped, so nothing else will adopt it.
    if engine.rebuild_in_flight() {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            if service.poll_rebuild(&mut engine).unwrap() {
                adopted = true;
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background rebuild never finished"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(adopted, "no background rebuild was ever adopted");
    assert!(engine.index().verify().is_clean());
    // The served snapshot reflects the adopted engine state, and the
    // incrementally maintained hierarchy answers like a scratch build.
    assert_eq!(
        service.snapshot().expect("mono").index().base(),
        engine.index().base()
    );
    let bench = benchmark_queries(&ds, 3, 4, 7);
    let eq_queries: Vec<KeywordQuery> = bench
        .iter()
        .take(2)
        .map(|q| KeywordQuery::new(q.keywords.clone(), q.dmax))
        .collect();
    assert_answers_match_scratch(engine.index(), &configs, &eq_queries);
    let stats = service.stats();
    assert!(stats.ingest_rebuilds >= 1, "adoption not counted");
    assert!(stats.ingest_batches > 0);
}

#[test]
fn storm_with_wal_kills_recovers_to_last_committed_batch() {
    let ds = DatasetSpec::synt(600).generate();
    let configs = step_configs(&ds.graph, &ds.ontology, 2);
    assert!(!configs.is_empty(), "dataset produced no Gen steps");
    let bundle = build_bundle(ds.graph.clone(), ds.ontology.clone(), &configs);

    let dir = TempDir::new("storm");
    let fp = Failpoints::enabled();
    let store = Store::open_with(dir.path(), fp.clone(), RetryPolicy::none()).unwrap();
    store.save(&bundle).unwrap();

    // Service serves throughout; snapshots are swapped by apply_updates.
    let snapshot = Arc::new(IndexSnapshot::from_bundle(bundle.clone()).unwrap());
    let service = Arc::new(Service::start(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_shards: 4,
            cache_capacity: 128,
            default_deadline: None,
            degradation: None,
        },
    ));

    // Query storm on the side: every response is Ok or a typed
    // admission error; a panic anywhere fails the test via the join.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let bench = benchmark_queries(&ds, 3, 4, 7);
    assert!(!bench.is_empty());
    let requests: Vec<QueryRequest> = bench
        .iter()
        .enumerate()
        .map(|(i, q)| {
            QueryRequest::new(
                Semantics::ALL[i % Semantics::ALL.len()],
                q.keywords.clone(),
                q.dmax,
                5,
            )
        })
        .collect();
    let mut query_threads = Vec::new();
    for t in 0..2usize {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        let requests = requests.clone();
        query_threads.push(std::thread::spawn(move || {
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                let req = requests[i % requests.len()].clone();
                match service.query(req) {
                    Ok(_) => {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("query failed during storm: {e}"),
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
    }

    // Equivalence workload for the recovered-index checks.
    let eq_queries: Vec<KeywordQuery> = bench
        .iter()
        .take(3)
        .map(|q| KeywordQuery::new(q.keywords.clone(), q.dmax))
        .collect();

    let stream: Vec<IngestUpdate> = update_stream(&ds.graph, 11, 400, UpdateMix::default())
        .iter()
        .map(|op| match *op {
            UpdateOp::InsertEdge { src, dst } => IngestUpdate::InsertEdge { src, dst },
            UpdateOp::DeleteEdge { src, dst } => IngestUpdate::DeleteEdge { src, dst },
            UpdateOp::AddVertex { label } => IngestUpdate::AddVertex { label },
        })
        .collect();
    let mut shadow = Shadow::of(&ds.graph);
    let mut last_committed_seq = 0u64;

    // Two kill-recover rounds: Crash loses the in-flight batch before
    // any byte lands; Torn leaves a half-written record that replay
    // must discard. Either way recovery lands on the last commit.
    let mut chunks = stream.chunks(40);
    // The batch in flight when a kill hits; the client retries it after
    // recovery (update streams are stateful — later updates may refer
    // to vertices the lost batch added).
    let mut retry: Option<Vec<IngestUpdate>> = None;
    for (round, kill) in [FailAction::Crash, FailAction::Torn]
        .into_iter()
        .enumerate()
    {
        let engine_config = EngineConfig::default();
        let (gen_now, seed) = store.load_latest().unwrap();
        assert!(gen_now >= 1);
        let (mut engine, _) = Engine::with_wal(seed, engine_config, &store).unwrap();
        // Recovery must have replayed to the last committed batch.
        assert_eq!(
            engine.last_seq(),
            last_committed_seq,
            "round {round}: replay did not land on the last committed batch"
        );
        assert_eq!(
            engine.index().base(),
            &shadow.graph(),
            "round {round}: recovered base graph != shadow of committed batches"
        );
        assert_answers_match_scratch(engine.index(), &configs, &eq_queries);
        service.swap_snapshot(Arc::new(
            IndexSnapshot::from_bundle(engine.bundle().clone()).unwrap(),
        ));

        // Apply a few batches cleanly, then die mid-append.
        for i in 0..3 {
            let batch: Vec<IngestUpdate> = match retry.take() {
                Some(b) => b,
                None => match chunks.next() {
                    Some(c) => c.to_vec(),
                    None => break,
                },
            };
            if i == 2 {
                fp.reset(); // hit counters are absolute; target the next append
                fp.arm("wal.append", 1, kill);
                let err = service.apply_updates(&mut engine, &batch);
                assert!(err.is_err(), "armed append must fail the batch");
                fp.reset();
                retry = Some(batch); // the client will resubmit
                break; // the process "dies" here
            }
            let report = service
                .apply_updates(&mut engine, &batch)
                .unwrap_or_else(|e| panic!("clean batch failed: {e}"));
            let seq = report.outcome.seq.expect("store-backed engine logs");
            assert_eq!(report.outcome.applied, batch.len());
            shadow.apply(&batch);
            last_committed_seq = seq;
        }
        drop(engine); // process death: the WAL handle goes away
    }

    // Final recovery + checkpoint: the WAL folds into a generation and
    // a cold open replays nothing.
    let (_, seed) = store.load_latest().unwrap();
    let (mut engine, replayed) = Engine::with_wal(seed, EngineConfig::default(), &store).unwrap();
    assert!(replayed > 0, "committed batches should replay");
    assert_eq!(engine.last_seq(), last_committed_seq);
    assert_eq!(engine.index().base(), &shadow.graph());
    assert!(engine.index().verify().is_clean());
    assert_answers_match_scratch(engine.index(), &configs, &eq_queries);

    let generation = engine.checkpoint(&store).unwrap();
    assert!(generation >= 2);
    let (gen2, cold) = store.load_latest().unwrap();
    assert_eq!(gen2, generation);
    let (engine2, replayed2) = Engine::with_wal(cold, EngineConfig::default(), &store).unwrap();
    assert_eq!(replayed2, 0, "checkpoint must truncate the replayed WAL");
    assert!(engine2.index() == engine.index());

    stop.store(true, Ordering::Relaxed);
    for t in query_threads {
        t.join().expect("query thread panicked");
    }
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "storm served no queries"
    );
    let stats = service.stats();
    assert!(stats.ingest_batches > 0);
}

#[test]
fn sixteen_concurrent_single_op_writers_amortize_fsyncs() {
    const WRITERS: usize = 16;
    const CALLS_PER_WRITER: usize = 4;
    const TOTAL_CALLS: usize = WRITERS * CALLS_PER_WRITER;

    let ds = DatasetSpec::synt(300).generate();
    let configs = step_configs(&ds.graph, &ds.ontology, 2);
    assert!(!configs.is_empty(), "dataset produced no Gen steps");
    let bundle = build_bundle(ds.graph.clone(), ds.ontology.clone(), &configs);
    let n = ds.graph.num_vertices() as u32;

    let dir = TempDir::new("group");
    let store = Store::open(dir.path()).unwrap();
    store.save(&bundle).unwrap();
    let snapshot = Arc::new(IndexSnapshot::from_bundle(bundle.clone()).unwrap());
    let (engine, replayed) = Engine::with_wal(bundle, EngineConfig::default(), &store).unwrap();
    assert_eq!(replayed, 0, "fresh store must have nothing to replay");
    let hub = WriteHub::new(engine);

    let service = Service::start(
        snapshot,
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_shards: 2,
            cache_capacity: 32,
            default_deadline: None,
            degradation: None,
        },
    );

    // Every (writer, call) pair inserts a distinct edge, so the final
    // graph is independent of commit order and grouping.
    let edge_for = |t: usize, k: usize| {
        let src = (t * CALLS_PER_WRITER + k) as u32 % n;
        let dst = (src + 1 + t as u32) % n;
        (src, dst)
    };

    let fsyncs_before = hub.with_engine(|e| e.wal_fsyncs());
    let barrier = std::sync::Barrier::new(WRITERS);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..WRITERS {
            let (service, hub, barrier) = (&service, &hub, &barrier);
            handles.push(s.spawn(move || {
                barrier.wait();
                for k in 0..CALLS_PER_WRITER {
                    let (src, dst) = edge_for(t, k);
                    let report = service
                        .apply_updates_grouped(hub, vec![IngestUpdate::InsertEdge { src, dst }])
                        .unwrap_or_else(|e| panic!("writer {t} call {k} failed: {e}"));
                    assert_eq!(report.outcome.applied, 1);
                    assert!(report.outcome.seq.is_some(), "store-backed engine logs");
                }
            }));
        }
        for h in handles {
            h.join().expect("writer panicked");
        }
    });

    // The whole point of group commit: callers share fsyncs. Each
    // commit cycle re-materializes the hierarchy while up to 15 other
    // callers pile into the queue, so the fsync count must sit well
    // below one-per-caller. (A serial write path would spend exactly
    // TOTAL_CALLS fsyncs here.)
    let fsyncs = hub.with_engine(|e| e.wal_fsyncs()) - fsyncs_before;
    assert!(fsyncs >= 1, "WAL-backed writes must fsync at least once");
    assert!(
        fsyncs * 2 <= TOTAL_CALLS as u64,
        "group commit amortized poorly: {fsyncs} fsyncs for {TOTAL_CALLS} callers"
    );
    assert!(service.stats().ingest_batches >= 1);

    // Grouping never merges durability records: every caller's batch is
    // its own WAL record, and the final state reflects every insert.
    let last_seq = hub.with_engine(|e| e.last_seq());
    let engine = hub.into_engine();
    assert!(engine.index().verify().is_clean());
    for t in 0..WRITERS {
        for k in 0..CALLS_PER_WRITER {
            let (src, dst) = edge_for(t, k);
            assert!(
                engine
                    .index()
                    .base()
                    .out_neighbors(VId(src))
                    .contains(&VId(dst)),
                "edge {src}->{dst} from writer {t} call {k} missing from final graph"
            );
        }
    }
    let final_base = engine.index().base().clone();
    drop(engine); // process death: the WAL handle goes away

    let (_, seed) = store.load_latest().unwrap();
    let (recovered, replayed) = Engine::with_wal(seed, EngineConfig::default(), &store).unwrap();
    assert_eq!(
        replayed, TOTAL_CALLS,
        "every caller's batch must replay as a distinct record"
    );
    assert_eq!(recovered.last_seq(), last_seq);
    assert_eq!(recovered.index().base(), &final_base);
    assert!(recovered.index().verify().is_clean());
}
