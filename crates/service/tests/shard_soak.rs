//! Shard-local fault isolation: killing one shard's WAL mid-soak
//! neither blocks nor corrupts the other shards, the wounded shard
//! keeps serving its last good snapshot, and `Service::recover_shard`
//! brings it back — after which a reboot from disk reproduces the
//! served state exactly.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_ingest::{EngineConfig, IngestUpdate};
use bgi_search::Budget;
use bgi_service::{boot_sharded, QueryRequest, Semantics, Service, ServiceConfig};
use bgi_shard::{build_shard_bundles, ShardBuildParams, ShardPlan, ShardSpec, ShardedStore};
use bgi_store::{FailAction, Failpoints, RetryPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const SHARDS: usize = 4;
const DMAX: u32 = 2;
const VICTIM: usize = 1;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("bgi-shard-soak-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        TempDir(d)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_store(ds: &Dataset, root: &Path) -> ShardPlan {
    let plan = ShardPlan::build(
        &ds.graph,
        &ShardSpec {
            shards: SHARDS,
            dmax_ceiling: DMAX,
            partition_block: 0,
        },
    )
    .expect("plan builds");
    let bundles = build_shard_bundles(
        &ds.graph,
        &ds.ontology,
        &plan,
        &ShardBuildParams {
            max_layers: 2,
            ..ShardBuildParams::default()
        },
    );
    let store = ShardedStore::create(root.to_path_buf(), plan.clone()).expect("sharded root");
    store.save_all(&bundles, 1).expect("initial generations");
    plan
}

fn workload(ds: &Dataset) -> Vec<QueryRequest> {
    benchmark_queries(ds, DMAX, 3, 17)
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let mut req = QueryRequest::new(
                Semantics::ALL[i % Semantics::ALL.len()],
                q.keywords.clone(),
                q.dmax,
                10,
            );
            req.layer = Some(0);
            req
        })
        .collect()
}

fn answers_of(service: &Service, requests: &[QueryRequest]) -> Vec<Vec<String>> {
    requests
        .iter()
        .map(|req| {
            let resp = service.query(req.clone()).expect("query serves");
            assert!(resp.completeness.is_exact());
            resp.answers.iter().map(|a| format!("{a:?}")).collect()
        })
        .collect()
}

/// One round-robin batch of vertex adds: global numbering assigns one
/// to every shard, so each round gives every shard a share.
fn grow_round(alphabet: u32, round: u32) -> Vec<IngestUpdate> {
    (0..SHARDS as u32)
        .map(|i| IngestUpdate::AddVertex {
            label: (round + i) % alphabet,
        })
        .collect()
}

#[test]
fn one_shards_wal_death_never_blocks_or_corrupts_the_rest() {
    let ds = DatasetSpec::yago_like(420).generate();
    let alphabet = ds.ontology.num_labels() as u32;
    let dir = TempDir::new();
    build_store(&ds, &dir.0);

    // Reopen with fault injection armed on the victim shard only.
    let victim_fp = Failpoints::enabled();
    let store = {
        let victim_fp = victim_fp.clone();
        ShardedStore::open_with(dir.0.clone(), move |s| {
            if s == VICTIM {
                (victim_fp.clone(), RetryPolicy::default())
            } else {
                (Failpoints::disabled(), RetryPolicy::default())
            }
        })
        .expect("sharded store reopens")
    };
    let (snapshot, hub, _replayed) =
        boot_sharded(&store, EngineConfig::default(), 2).expect("boots");
    let hub = Arc::new(hub);
    let service = Service::start_sharded(
        snapshot,
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_shards: 2,
            cache_capacity: 64,
            default_deadline: None,
            degradation: None,
        },
    );
    let requests = workload(&ds);

    // Healthy soak: several rounds of growth + edges, all shards
    // committing, queries interleaved.
    let n = ds.graph.num_vertices() as u32;
    for round in 0..4u32 {
        let mut batch = grow_round(alphabet, round);
        batch.push(IngestUpdate::InsertEdge {
            src: (round * 37) % n,
            dst: (round * 101 + 13) % n,
        });
        let report = service
            .apply_updates_sharded(&hub, &batch)
            .expect("healthy round routes");
        assert!(
            report.all_committed(),
            "healthy round must commit: {report:?}"
        );
        let _ = answers_of(&service, &requests);
    }

    // Kill the victim's WAL: one torn write, then hard crashes on
    // every subsequent append attempt.
    let label = "wal.group_append";
    let base = victim_fp.hits(label);
    victim_fp.arm(label, base + 1, FailAction::Torn);
    for k in 2..=30 {
        victim_fp.arm(label, base + k, FailAction::Crash);
    }

    // A batch touching every shard: the victim's share fails, the
    // other three commit independently.
    let report = service
        .apply_updates_sharded(&hub, &grow_round(alphabet, 90))
        .expect("routing still succeeds");
    for (s, result) in report.per_shard.iter().enumerate() {
        let result = result.as_ref().expect("every shard had a share");
        if s == VICTIM {
            assert!(result.is_err(), "victim WAL is dead; commit must fail");
        } else {
            assert!(
                result.is_ok(),
                "shard {s} must not be blocked by the victim: {result:?}"
            );
        }
    }

    // The wounded shard keeps serving its last good snapshot: every
    // query still answers, exactly.
    let during_outage = answers_of(&service, &requests);

    // Another wave while the victim is still down — siblings keep
    // absorbing their shares.
    let report = service
        .apply_updates_sharded(&hub, &grow_round(alphabet, 91))
        .expect("routing still succeeds");
    for (s, result) in report.per_shard.iter().enumerate() {
        let result = result.as_ref().expect("every shard had a share");
        assert_eq!(result.is_ok(), s != VICTIM);
    }

    // Heal the medium and recover just the victim; nobody else is
    // touched, reloaded, or frozen.
    victim_fp.reset();
    let replayed = service
        .recover_shard(&hub, &store, VICTIM, EngineConfig::default())
        .expect("victim recovers");
    // Replay covers the healthy soak's appends (the torn tail and the
    // crashed attempts never became durable).
    assert!(replayed > 0, "victim WAL replay found nothing");

    // Full-width writes work again.
    let report = service
        .apply_updates_sharded(&hub, &grow_round(alphabet, 92))
        .expect("post-recovery round routes");
    assert!(
        report.all_committed(),
        "post-recovery commit failed: {report:?}"
    );

    // No shard was corrupted anywhere along the way.
    for s in 0..SHARDS {
        assert!(
            hub.with_engine(s, |e| e.bundle().index.verify().is_clean()),
            "shard {s} hierarchy dirty after the soak"
        );
    }
    let outage_now = answers_of(&service, &requests);
    assert_eq!(during_outage, outage_now, "answers drifted across recovery");

    // Per-shard stats lanes saw the scatter.
    let stats = service.stats();
    assert_eq!(stats.per_shard.len(), SHARDS);
    assert!(stats.per_shard.iter().all(|lane| lane.queries > 0));

    // Durability: a cold reboot from the same root reproduces the
    // served state exactly.
    let served = answers_of(&service, &requests);
    drop(service);
    drop(hub);
    drop(store);
    let store = ShardedStore::open(dir.0.clone()).expect("reopen clean");
    let (snapshot, _hub, _replayed) =
        boot_sharded(&store, EngineConfig::default(), 2).expect("reboots");
    let rebooted: Vec<Vec<String>> = requests
        .iter()
        .map(|req| {
            snapshot
                .execute(req, &Budget::unlimited())
                .expect("rebooted snapshot serves")
                .answers
                .iter()
                .map(|a| format!("{a:?}"))
                .collect()
        })
        .collect();
    assert_eq!(served, rebooted, "reboot lost or invented answers");
}
