//! End-to-end service tests: a real dataset, a real BiG-index, and the
//! full admission → cache → execution pipeline.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_service::{
    run_batch, IndexSnapshot, QueryError, QueryRequest, Semantics, Service, ServiceConfig,
};
use big_index::{BiGIndex, BuildParams};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn index_of(ds: &Dataset) -> BiGIndex {
    let params = BuildParams {
        max_layers: 2,
        ..BuildParams::default()
    };
    BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params)
}

/// Dataset and snapshot are expensive to build; every test shares one.
fn shared() -> &'static (Dataset, Arc<IndexSnapshot>) {
    static SHARED: OnceLock<(Dataset, Arc<IndexSnapshot>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let ds = DatasetSpec::yago_like(1200).generate();
        let snapshot =
            Arc::new(IndexSnapshot::build_default(index_of(&ds)).expect("verified index"));
        (ds, snapshot)
    })
}

/// A small mixed-semantics workload from the benchmark generator.
fn workload(ds: &Dataset) -> Vec<QueryRequest> {
    let queries = benchmark_queries(ds, 3, 5, 42);
    assert!(!queries.is_empty(), "workload generator came up empty");
    let mut out = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let semantics = Semantics::ALL[i % Semantics::ALL.len()];
        out.push(QueryRequest::new(semantics, q.keywords.clone(), q.dmax, 5));
    }
    out
}

fn small_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 64,
        cache_shards: 4,
        cache_capacity: 256,
        default_deadline: None,
    }
}

#[test]
fn batch_serves_everything_with_cache_hits() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(4));
    let requests = workload(ds);
    let report = run_batch(&service, &requests, 3, 4);
    assert_eq!(report.failed, 0, "no query may fail: {report:?}");
    assert_eq!(report.timeouts, 0, "no deadline set, so no timeouts");
    assert_eq!(report.served, report.total);
    assert!(
        report.cache_hits > 0,
        "repeated workload must hit the cache: {report:?}"
    );
    let stats = service.stats();
    assert_eq!(stats.served, report.served);
    assert_eq!(stats.per_semantics.iter().sum::<u64>(), report.served);
    assert!(stats.cache.hits >= report.cache_hits);
    assert!(stats.p50 > Duration::ZERO);
    assert!(stats.p99 >= stats.p50);
}

#[test]
fn zero_deadline_returns_timeout_not_hang() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let mut req = workload(ds).remove(0);
    req.deadline = Some(Duration::ZERO);
    assert_eq!(service.query(req), Err(QueryError::Timeout));
    assert_eq!(service.stats().timeouts, 1);
}

#[test]
fn generous_deadline_still_serves() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let mut req = workload(ds).remove(0);
    req.deadline = Some(Duration::from_secs(60));
    let resp = service.query(req).expect("fits the deadline");
    assert!(!resp.cache_hit);
}

#[test]
fn overload_sheds_with_typed_rejection() {
    let (ds, snapshot) = shared();
    let service = Service::start(
        Arc::clone(snapshot),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..small_config(1)
        },
    );
    let requests = workload(ds);
    let mut receivers = Vec::new();
    let mut shed = 0u32;
    // Far more submissions than a 1-deep queue with 1 worker can hold.
    for i in 0..200 {
        match service.submit(requests[i % requests.len()].clone()) {
            Ok(rx) => receivers.push(rx),
            Err(QueryError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(shed > 0, "a 1-deep queue must shed under a 200-burst");
    assert_eq!(service.stats().rejected_overload, u64::from(shed));
    // Everything admitted still completes.
    for rx in receivers {
        assert!(rx.recv().expect("worker replies").is_ok());
    }
}

#[test]
fn malformed_requests_get_typed_errors() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let empty = QueryRequest::new(Semantics::Bkws, Vec::new(), 3, 5);
    assert_eq!(service.query(empty), Err(QueryError::EmptyQuery));
    let mut bad_layer = workload(ds).remove(0);
    bad_layer.layer = Some(99);
    match service.query(bad_layer) {
        Err(QueryError::InvalidLayer { requested: 99, .. }) => {}
        other => panic!("expected InvalidLayer, got {other:?}"),
    }
    assert_eq!(service.stats().rejected_invalid, 2);
}

#[test]
fn explicit_layer_is_respected() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let mut req = workload(ds).remove(0);
    req.layer = Some(0);
    let resp = service.query(req).expect("layer 0 always valid");
    assert_eq!(resp.layer, 0);
    assert!(!resp.fell_back, "explicit layer never falls back");
}

#[test]
fn swap_invalidates_cache_and_counts() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let req = workload(ds).remove(0);
    let first = service.query(req.clone()).expect("served");
    assert!(!first.cache_hit);
    let second = service.query(req.clone()).expect("served");
    assert!(second.cache_hit, "identical query must hit the cache");
    let rebuilt = IndexSnapshot::build_default(snapshot.index().clone()).expect("same index");
    service.swap_snapshot(Arc::new(rebuilt));
    let third = service.query(req).expect("served");
    assert!(!third.cache_hit, "swap must invalidate the cache");
    let stats = service.stats();
    assert_eq!(stats.index_swaps, 1);
    assert!(stats.cache.invalidated >= 1);
}

#[test]
fn equivalent_keyword_orderings_share_a_cache_entry() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let mut req = workload(ds)
        .into_iter()
        .find(|r| r.keywords.len() >= 2)
        .expect("a multi-keyword query");
    let resp = service.query(req.clone()).expect("served");
    assert!(!resp.cache_hit);
    req.keywords.reverse();
    let resp = service.query(req).expect("served");
    assert!(resp.cache_hit, "keyword order must not affect the key");
}

#[test]
fn shutdown_fails_pending_and_is_idempotent() {
    let (ds, snapshot) = shared();
    let mut service = Service::start(Arc::clone(snapshot), small_config(2));
    let req = workload(ds).remove(0);
    let _ = service.query(req.clone());
    service.shutdown();
    service.shutdown();
    assert_eq!(service.query(req), Err(QueryError::Shutdown));
}
