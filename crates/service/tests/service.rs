//! End-to-end service tests: a real dataset, a real BiG-index, and the
//! full admission → cache → execution pipeline.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_service::{
    run_batch, IndexSnapshot, QueryError, QueryRequest, Semantics, Service, ServiceConfig,
};
use big_index::{BiGIndex, BuildParams};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn index_of(ds: &Dataset) -> BiGIndex {
    let params = BuildParams {
        max_layers: 2,
        ..BuildParams::default()
    };
    BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params)
}

/// Dataset and snapshot are expensive to build; every test shares one.
fn shared() -> &'static (Dataset, Arc<IndexSnapshot>) {
    static SHARED: OnceLock<(Dataset, Arc<IndexSnapshot>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let ds = DatasetSpec::yago_like(1200).generate();
        let snapshot =
            Arc::new(IndexSnapshot::build_default(index_of(&ds)).expect("verified index"));
        (ds, snapshot)
    })
}

/// A small mixed-semantics workload from the benchmark generator.
fn workload(ds: &Dataset) -> Vec<QueryRequest> {
    let queries = benchmark_queries(ds, 3, 5, 42);
    assert!(!queries.is_empty(), "workload generator came up empty");
    let mut out = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let semantics = Semantics::ALL[i % Semantics::ALL.len()];
        out.push(QueryRequest::new(semantics, q.keywords.clone(), q.dmax, 5));
    }
    out
}

fn small_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 64,
        cache_shards: 4,
        cache_capacity: 256,
        default_deadline: None,
        degradation: None,
    }
}

#[test]
fn batch_serves_everything_with_cache_hits() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(4));
    let requests = workload(ds);
    let report = run_batch(&service, &requests, 3, 4);
    assert_eq!(report.failed, 0, "no query may fail: {report:?}");
    assert_eq!(report.timeouts, 0, "no deadline set, so no timeouts");
    assert_eq!(report.served, report.total);
    assert!(
        report.cache_hits > 0,
        "repeated workload must hit the cache: {report:?}"
    );
    let stats = service.stats();
    assert_eq!(stats.served, report.served);
    assert_eq!(stats.per_semantics.iter().sum::<u64>(), report.served);
    assert!(stats.cache.hits >= report.cache_hits);
    assert!(stats.p50 > Duration::ZERO);
    assert!(stats.p99 >= stats.p50);
}

#[test]
fn zero_deadline_returns_timeout_not_hang() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let mut req = workload(ds).remove(0);
    req.deadline = Some(Duration::ZERO);
    assert_eq!(service.query(req), Err(QueryError::Timeout));
    assert_eq!(service.stats().timeouts, 1);
}

#[test]
fn generous_deadline_still_serves() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let mut req = workload(ds).remove(0);
    req.deadline = Some(Duration::from_secs(60));
    let resp = service.query(req).expect("fits the deadline");
    assert!(!resp.cache_hit);
}

#[test]
fn overload_sheds_with_typed_rejection() {
    let (ds, snapshot) = shared();
    let service = Service::start(
        Arc::clone(snapshot),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..small_config(1)
        },
    );
    let requests = workload(ds);
    let mut receivers = Vec::new();
    let mut shed = 0u32;
    // Far more submissions than a 1-deep queue with 1 worker can hold.
    for i in 0..200 {
        match service.submit(requests[i % requests.len()].clone()) {
            Ok(rx) => receivers.push(rx),
            Err(QueryError::Overloaded { retry_after_hint }) => {
                assert!(retry_after_hint > Duration::ZERO, "hint must be usable");
                shed += 1;
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(shed > 0, "a 1-deep queue must shed under a 200-burst");
    assert_eq!(service.stats().rejected_overload, u64::from(shed));
    // Everything admitted still completes.
    for rx in receivers {
        assert!(rx.recv().expect("worker replies").is_ok());
    }
}

#[test]
fn malformed_requests_get_typed_errors() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let empty = QueryRequest::new(Semantics::Bkws, Vec::new(), 3, 5);
    assert_eq!(service.query(empty), Err(QueryError::EmptyQuery));
    let mut bad_layer = workload(ds).remove(0);
    bad_layer.layer = Some(99);
    match service.query(bad_layer) {
        Err(QueryError::InvalidLayer { requested: 99, .. }) => {}
        other => panic!("expected InvalidLayer, got {other:?}"),
    }
    assert_eq!(service.stats().rejected_invalid, 2);
}

#[test]
fn explicit_layer_is_respected() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let mut req = workload(ds).remove(0);
    req.layer = Some(0);
    let resp = service.query(req).expect("layer 0 always valid");
    assert_eq!(resp.layer, 0);
    assert!(!resp.fell_back, "explicit layer never falls back");
}

#[test]
fn swap_invalidates_cache_and_counts() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let req = workload(ds).remove(0);
    let first = service.query(req.clone()).expect("served");
    assert!(!first.cache_hit);
    let second = service.query(req.clone()).expect("served");
    assert!(second.cache_hit, "identical query must hit the cache");
    let rebuilt = IndexSnapshot::build_default(snapshot.index().clone()).expect("same index");
    service.swap_snapshot(Arc::new(rebuilt));
    let third = service.query(req).expect("served");
    assert!(!third.cache_hit, "swap must invalidate the cache");
    let stats = service.stats();
    assert_eq!(stats.index_swaps, 1);
    assert!(stats.cache.invalidated >= 1);
}

#[test]
fn equivalent_keyword_orderings_share_a_cache_entry() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(1));
    let mut req = workload(ds)
        .into_iter()
        .find(|r| r.keywords.len() >= 2)
        .expect("a multi-keyword query");
    let resp = service.query(req.clone()).expect("served");
    assert!(!resp.cache_hit);
    req.keywords.reverse();
    let resp = service.query(req).expect("served");
    assert!(resp.cache_hit, "keyword order must not affect the key");
}

#[test]
fn shutdown_fails_pending_and_is_idempotent() {
    let (ds, snapshot) = shared();
    let mut service = Service::start(Arc::clone(snapshot), small_config(2));
    let req = workload(ds).remove(0);
    let _ = service.query(req.clone());
    service.shutdown();
    service.shutdown();
    assert_eq!(service.query(req), Err(QueryError::Shutdown));
}

#[test]
fn deadline_storm_yields_anytime_answers_never_empty_timeouts() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(4));
    // dkws requests pinned to layer 0 — the r-clique anytime engine's
    // greedy seed slice runs even on an expired clock, so any query
    // with answers must produce them. First find which ones do.
    let mut storm: Vec<QueryRequest> = Vec::new();
    for mut req in workload(ds) {
        req.semantics = Semantics::Dkws;
        req.layer = Some(0);
        if let Ok(resp) = service.query(req.clone()) {
            if !resp.answers.is_empty() {
                storm.push(req);
            }
        }
    }
    assert!(!storm.is_empty(), "no dkws query has answers");
    // The storm: a soft deadline that is already ash by the time any
    // worker looks at the clock. Soft deadlines anchor at execution
    // start, so nothing times out while queued.
    let mut served = 0u64;
    let mut degraded = 0u64;
    for round in 0..4 {
        for req in &storm {
            let mut req = req.clone();
            req.soft_deadline = Some(Duration::from_nanos(1));
            // Vary k per round so responses can't ride the exact-result
            // cache entries warmed up by the probe above.
            req.k = 50 + round;
            let resp = service
                .query(req)
                .expect("a query with answers must never time out empty");
            assert!(
                !resp.answers.is_empty(),
                "anytime response carries best-effort answers"
            );
            served += 1;
            if !resp.completeness.is_exact() {
                degraded += 1;
            }
        }
    }
    assert!(
        degraded as f64 >= served as f64 * 0.95,
        "a 1ns soft deadline must degrade nearly every response \
         ({degraded}/{served} degraded)"
    );
    let stats = service.stats();
    assert!(stats.anytime_responses >= degraded);
    assert!(
        stats.bound_gap.iter().sum::<u64>() > 0,
        "dkws anytime responses must record their optimality gaps"
    );
}

#[test]
fn min_results_turns_thin_degraded_responses_into_timeouts() {
    let (ds, snapshot) = shared();
    let service = Service::start(Arc::clone(snapshot), small_config(2));
    let mut req = workload(ds)
        .into_iter()
        .find(|r| {
            let mut probe = r.clone();
            probe.semantics = Semantics::Dkws;
            probe.layer = Some(0);
            service
                .query(probe)
                .is_ok_and(|resp| !resp.answers.is_empty())
        })
        .expect("a dkws query with answers");
    req.semantics = Semantics::Dkws;
    req.layer = Some(0);
    req.k = 64; // avoid the probe's cache entry
    req.soft_deadline = Some(Duration::from_nanos(1));
    // Accepting any best-effort result: served.
    req.min_results = 0;
    let resp = service.query(req.clone()).expect("best-effort accepted");
    assert!(!resp.completeness.is_exact());
    // Demanding more answers than a degraded run can deliver: Timeout.
    req.min_results = 10_000;
    req.k = 65;
    assert_eq!(service.query(req), Err(QueryError::Timeout));
}

#[test]
fn degradation_ladder_shrinks_budgets_under_sustained_pressure() {
    let (ds, snapshot) = shared();
    let mut config = small_config(2);
    // A ladder that treats any queue occupancy as pressure and engages
    // after two pressured submissions.
    config.degradation = Some(bgi_service::DegradationPolicy {
        pressure_threshold: 0.0,
        sustain: 2,
        budget_shrink: 0.5,
        floor: Duration::from_millis(1),
    });
    let service = Service::start(Arc::clone(snapshot), config);
    let mut requests = workload(ds);
    for req in &mut requests {
        req.deadline = Some(Duration::from_secs(30));
    }
    for req in requests.iter().cycle().take(16) {
        let _ = service.query(req.clone());
    }
    let stats = service.stats();
    assert!(
        stats.degraded_budget_requests > 0,
        "sustained pressure must engage the ladder: {stats}"
    );
    // A 15 s shrunk budget is still generous: everything serves.
    assert!(stats.served > 0);
}
