//! Snapshot-swap consistency under load.
//!
//! The invariant: while `swap_snapshot` storms in the background, every
//! response a client sees is *exactly* the answer one of the installed
//! snapshots produces — never a mix of old and new index state — and
//! once a swap lands, the cache never serves an answer computed against
//! a previous snapshot.

use bgi_datasets::{benchmark_queries, Dataset, DatasetSpec};
use bgi_search::blinks::BlinksParams;
use bgi_search::{AnswerGraph, Budget, RClique};
use bgi_service::{IndexSnapshot, QueryRequest, Semantics, Service, ServiceConfig, SnapshotConfig};
use bgi_store::{IndexBundle, Store};
use big_index::{BiGIndex, BuildParams, EvalOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// What a client can observe of an execution, minus timing.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    answers: Vec<AnswerGraph>,
    layer: usize,
    fell_back: bool,
}

fn snapshot_of(ds: &Dataset) -> Arc<IndexSnapshot> {
    let params = BuildParams {
        max_layers: 2,
        ..BuildParams::default()
    };
    let index = BiGIndex::build(ds.graph.clone(), ds.ontology.clone(), &params);
    Arc::new(IndexSnapshot::build_default(index).expect("verified index"))
}

/// Two distinct snapshots (different graphs) plus a workload whose
/// expected outcome differs between them for at least one request.
struct Fixture {
    a: Arc<IndexSnapshot>,
    b: Arc<IndexSnapshot>,
    requests: Vec<QueryRequest>,
    expect_a: Vec<Observed>,
    expect_b: Vec<Observed>,
}

fn expected(snapshot: &IndexSnapshot, requests: &[QueryRequest]) -> Vec<Observed> {
    requests
        .iter()
        .map(|req| {
            let out = snapshot
                .execute(req, &Budget::unlimited())
                .expect("workload queries are valid");
            Observed {
                answers: out.answers,
                layer: out.layer,
                fell_back: out.fell_back,
            }
        })
        .collect()
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds_a = DatasetSpec::yago_like(400).generate();
        let ds_b = DatasetSpec::yago_like(550).generate();
        let a = snapshot_of(&ds_a);
        let b = snapshot_of(&ds_b);
        // Queries drawn from dataset A's label space; both snapshots can
        // evaluate them (the label universe is shared by construction).
        let mut requests = Vec::new();
        for (i, q) in benchmark_queries(&ds_a, 3, 4, 7).iter().enumerate() {
            let semantics = Semantics::ALL[i % Semantics::ALL.len()];
            requests.push(QueryRequest::new(semantics, q.keywords.clone(), q.dmax, 5));
        }
        assert!(!requests.is_empty(), "workload generator came up empty");
        let expect_a = expected(&a, &requests);
        let expect_b = expected(&b, &requests);
        assert_ne!(
            expect_a, expect_b,
            "snapshots must be distinguishable for the stress to mean anything"
        );
        Fixture {
            a,
            b,
            requests,
            expect_a,
            expect_b,
        }
    })
}

#[test]
fn responses_under_swap_storm_match_exactly_one_snapshot() {
    let fx = fixture();
    let service = Arc::new(Service::start(
        Arc::clone(&fx.a),
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            cache_shards: 4,
            cache_capacity: 256,
            default_deadline: None,
            degradation: None,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));

    // Swap storm: alternate B, A, B, A... while clients hammer.
    let swapper = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let (a, b) = (Arc::clone(&fx.a), Arc::clone(&fx.b));
        std::thread::spawn(move || {
            let mut swaps = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let next = if swaps.is_multiple_of(2) { &b } else { &a };
                service.swap_snapshot(Arc::clone(next));
                swaps += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            swaps
        })
    };

    let clients = 4;
    let per_client = 60;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    for i in 0..per_client {
                        let idx = (c + i) % fx.requests.len();
                        let resp = service
                            .query(fx.requests[idx].clone())
                            .expect("no deadline, no overload at this rate");
                        let got = Observed {
                            answers: resp.answers,
                            layer: resp.layer,
                            fell_back: resp.fell_back,
                        };
                        assert!(
                            got == fx.expect_a[idx] || got == fx.expect_b[idx],
                            "request {idx} observed an answer neither snapshot produces \
                             (cache_hit={}): torn swap",
                            resp.cache_hit
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().is_ok(), "client thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let swaps = swapper.join().expect("swapper thread panicked");
    assert!(swaps > 0, "the storm never swapped");
    assert_eq!(service.stats().index_swaps, u64::from(swaps));
}

#[test]
fn cache_never_serves_stale_generation_after_swap() {
    let fx = fixture();
    let service = Service::start(
        Arc::clone(&fx.a),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_shards: 2,
            cache_capacity: 128,
            default_deadline: None,
            degradation: None,
        },
    );
    // Warm the cache against A.
    for (idx, req) in fx.requests.iter().enumerate() {
        let resp = service.query(req.clone()).expect("served");
        let got = Observed {
            answers: resp.answers,
            layer: resp.layer,
            fell_back: resp.fell_back,
        };
        assert_eq!(got, fx.expect_a[idx], "pre-swap answers come from A");
    }
    service.swap_snapshot(Arc::clone(&fx.b));
    // Every post-swap response — the recompute *and* the subsequent
    // cache hit — must be B's answer. A stale A-entry surviving the
    // swap would fail the first round; a stale insert racing the swap
    // would fail the second.
    for round in 0..2 {
        for (idx, req) in fx.requests.iter().enumerate() {
            let resp = service.query(req.clone()).expect("served");
            let got = Observed {
                answers: resp.answers,
                layer: resp.layer,
                fell_back: resp.fell_back,
            };
            assert_eq!(
                got, fx.expect_b[idx],
                "post-swap round {round} request {idx} served a stale answer \
                 (cache_hit={})",
                resp.cache_hit
            );
        }
    }
    let stats = service.stats();
    assert!(stats.cache.invalidated > 0, "warm entries were invalidated");
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique temp directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "bgi-swap-stress-{tag}-{}-{seq}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        TempDir(d)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The race the parallel build must not introduce: one thread keeps
/// *building* fresh snapshots with `--build-threads 8`-style parallel
/// per-layer index construction and swapping them in, another keeps
/// hot-reloading a generation persisted with an 8-thread save, while
/// clients hammer queries. Every response must match exactly one of
/// the two known snapshots — a partially built snapshot (some layer
/// indexes missing or half-initialized) would produce answers neither
/// produces, or panic a worker.
#[test]
fn parallel_builds_and_disk_reloads_never_expose_partial_snapshots() {
    let fx = fixture();
    // Persist B's bundle with a parallel encode; the reload thread
    // serves it back. Defaults match `build_default`, so the recovered
    // snapshot answers exactly like `fx.b`.
    let dir = TempDir::new("reload");
    let store = Store::open(&dir.0).expect("store opens");
    let bundle = IndexBundle::build_with_threads(
        fx.b.index().clone(),
        BlinksParams::default(),
        RClique::default(),
        EvalOptions::default(),
        8,
    );
    store.save_with_threads(&bundle, 8).expect("parallel save");

    let index_a = fx.a.index().clone();
    let service = Arc::new(Service::start(
        Arc::clone(&fx.a),
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            cache_shards: 4,
            cache_capacity: 256,
            default_deadline: None,
            degradation: None,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Builder storm: full parallel snapshot construction, then swap.
        let builder = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let index_a = index_a.clone();
            s.spawn(move || {
                let mut built = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let config = SnapshotConfig {
                        threads: 8,
                        ..SnapshotConfig::default()
                    };
                    let snapshot = IndexSnapshot::build(index_a.clone(), config)
                        .expect("parallel build verifies");
                    service.swap_snapshot(Arc::new(snapshot));
                    built += 1;
                }
                built
            })
        };
        // Reload storm: recovery-gated swaps from the parallel-saved
        // generation.
        let reloader = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let store = &store;
            s.spawn(move || {
                let mut reloads = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let generation = service.reload_from_disk(store).expect("reload succeeds");
                    assert_eq!(generation, 1);
                    reloads += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                reloads
            })
        };

        let clients = 4;
        let per_client = 40;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    for i in 0..per_client {
                        let idx = (c + i) % fx.requests.len();
                        let resp = service
                            .query(fx.requests[idx].clone())
                            .expect("no deadline, no overload at this rate");
                        let got = Observed {
                            answers: resp.answers,
                            layer: resp.layer,
                            fell_back: resp.fell_back,
                        };
                        assert!(
                            got == fx.expect_a[idx] || got == fx.expect_b[idx],
                            "request {idx} observed an answer neither snapshot produces \
                             (cache_hit={}): partially built snapshot exposed",
                            resp.cache_hit
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().is_ok(), "client thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
        let built = builder.join().expect("builder thread panicked");
        let reloads = reloader.join().expect("reloader thread panicked");
        assert!(built > 0, "the builder never completed a snapshot");
        assert!(reloads > 0, "the reloader never swapped");
    });
}

#[test]
fn drain_finishes_inflight_and_rejects_new_work() {
    let fx = fixture();
    let mut service = Service::start(
        Arc::clone(&fx.a),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_shards: 2,
            cache_capacity: 64,
            default_deadline: None,
            degradation: None,
        },
    );
    let mut receivers = Vec::new();
    for req in &fx.requests {
        receivers.push(service.submit(req.clone()).expect("admitted"));
    }
    assert!(
        service.drain(Duration::from_secs(30)),
        "a generous grace period must drain a small queue"
    );
    // Everything admitted before the drain completed normally.
    for rx in receivers {
        assert!(rx.recv().expect("reply delivered").is_ok());
    }
    assert_eq!(service.active_jobs(), 0);
    assert_eq!(service.queue_depth(), 0);
    // The service is closed: new work is refused, stats still readable.
    assert!(service.query(fx.requests[0].clone()).is_err());
    let stats = service.stats();
    assert!(stats.served >= fx.requests.len() as u64);
}
