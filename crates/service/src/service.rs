//! The serving engine: a worker pool over a shared index snapshot.
//!
//! [`Service`] owns everything the pipeline needs — the admission
//! queue, the answer cache, the stats registry, and an `Arc`-swappable
//! [`IndexSnapshot`] — plus a fixed pool of `std::thread` workers.
//! Submission is non-blocking ([`Service::submit`] returns a reply
//! channel or a typed rejection); [`Service::query`] is the blocking
//! convenience wrapper.
//!
//! ## Deadlines
//!
//! A request's deadline is measured from *submission*: the
//! `bgi_search::Budget` handed to the executing worker is anchored at
//! the enqueue instant, so time spent waiting in the admission queue
//! burns deadline too. A request whose deadline expires before a
//! worker picks it up — including the degenerate 0 ms deadline — gets
//! a [`QueryError::Timeout`] response without ever touching the index.
//!
//! ## Snapshot swaps
//!
//! [`Service::swap_snapshot`] installs a new verified snapshot for all
//! subsequent queries, then invalidates the answer cache. In-flight
//! queries finish against the snapshot they started with (their `Arc`
//! keeps it alive); their results are *not* cached, because the cache
//! generation they captured at start no longer matches (see
//! [`crate::cache`]).

use crate::admission::{BoundedQueue, PushError};
use crate::cache::{AnswerCache, CacheKey};
use crate::flight::{Flight, SingleFlight};
use crate::log::Logger;
use crate::request::{QueryError, QueryRequest, QueryResponse};
use crate::sharded::{ShardedBootError, ShardedSnapshot, ShardedWriteHub};
use crate::snapshot::IndexSnapshot;
use crate::snapshot::SnapshotError;
use crate::stats::{ServiceStats, StatsRegistry};
use bgi_check::sync::atomic::{AtomicU64, Ordering};
use bgi_check::sync::thread::{self, JoinHandle};
use bgi_check::sync::{Mutex, PoisonError, RwLock};
use bgi_graph::VId;
use bgi_ingest::{ApplyOutcome, Engine, EngineConfig, IngestError, IngestUpdate};
use bgi_search::Budget;
use bgi_shard::{RouteError, RoutedBatch, ShardStoreError, ShardedStore};
use bgi_store::{CommitQueue, IndexBundle, Store, StoreError};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sizing and policy knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission queue depth; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Answer-cache shard count.
    pub cache_shards: usize,
    /// Answer-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// The overload degradation ladder; `None` disables it (budgets
    /// are never shrunk).
    pub degradation: Option<DegradationPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
            queue_capacity: 256,
            cache_shards: 8,
            cache_capacity: 1024,
            default_deadline: None,
            degradation: Some(DegradationPolicy::default()),
        }
    }
}

/// When and how far the service trades answer quality for queue drain
/// under sustained overload.
///
/// The ladder watches admission-queue occupancy at every submission.
/// Once the queue has been at least `pressure_threshold` full for
/// `sustain` consecutive submissions, workers shrink each deadline-
/// carrying request's execution budget by `budget_shrink` (never below
/// `floor`) until the pressure streak breaks. Shrunk budgets make the
/// anytime search return earlier best-effort answers, which drains the
/// queue instead of letting every queued request time out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Queue occupancy (`len / capacity`, in `[0, 1]`) that counts as
    /// pressure.
    pub pressure_threshold: f64,
    /// Consecutive pressured submissions before budgets shrink.
    pub sustain: u64,
    /// Multiplier applied to the effective deadline while degraded.
    pub budget_shrink: f64,
    /// Shrunk deadlines never drop below this.
    pub floor: Duration,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            pressure_threshold: 0.75,
            sustain: 32,
            budget_shrink: 0.5,
            floor: Duration::from_millis(2),
        }
    }
}

/// One queued unit of work: the request, its submission instant (the
/// deadline anchor), and where to send the outcome.
struct Job {
    request: QueryRequest,
    submitted: Instant,
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
}

/// What the workers execute queries against: one monolithic snapshot,
/// or a sharded deployment's scatter–gather snapshot.
#[derive(Clone)]
enum Serving {
    /// A single whole-graph [`IndexSnapshot`].
    Mono(Arc<IndexSnapshot>),
    /// One snapshot per shard behind [`ShardedSnapshot`]'s merge.
    Sharded(Arc<ShardedSnapshot>),
}

/// State shared between the service handle and its workers.
struct Shared {
    snapshot: RwLock<Serving>,
    queue: BoundedQueue<Job>,
    cache: AnswerCache,
    flight: SingleFlight<CacheKey>,
    stats: StatsRegistry,
    log: Logger,
    default_deadline: Option<Duration>,
    degradation: Option<DegradationPolicy>,
    queue_capacity: usize,
    workers: usize,
    /// Consecutive submissions that found the queue above the pressure
    /// threshold (reset on any relaxed submission). Workers read it to
    /// decide whether the degradation ladder is engaged.
    pressure_streak: AtomicU64,
    /// Jobs currently being executed by a worker (not queued ones);
    /// [`Service::drain`] waits for this to hit zero.
    active: AtomicU64,
}

impl Shared {
    fn current_serving(&self) -> Serving {
        self.snapshot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Updates the sustained-pressure streak from the current queue
    /// occupancy. Called on every submission (admitted or shed).
    fn track_pressure(&self) {
        let Some(policy) = self.degradation.as_ref() else {
            return;
        };
        let occupancy = self.queue.len() as f64 / self.queue_capacity as f64;
        if occupancy >= policy.pressure_threshold {
            // relaxed: advisory streak counter; a racing submission
            // moves ladder engagement by at most one submission.
            self.pressure_streak.fetch_add(1, Ordering::Relaxed);
        } else {
            // relaxed: same advisory counter, reset on calm occupancy.
            self.pressure_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Server-estimated queue drain time: the served-latency median
    /// times the queued-requests-per-worker depth, capped so a client
    /// backoff never stalls long after the spike clears.
    fn retry_after_hint(&self) -> Duration {
        const MIN_HINT: Duration = Duration::from_micros(50);
        const MAX_HINT: Duration = Duration::from_millis(100);
        let p50 = self.stats.snapshot().p50.max(MIN_HINT);
        let waves = self.queue.len().div_ceil(self.workers).max(1) as u32;
        p50.saturating_mul(waves).min(MAX_HINT)
    }

    /// The worker loop body for one job.
    fn serve(&self, job: Job) {
        let hard_deadline = job
            .request
            .deadline
            .or(self.default_deadline)
            .map(|d| job.submitted + d);
        // Deadline may have burned away in the queue (or be 0 to begin
        // with): answer Timeout without touching the index. The *soft*
        // deadline is anchored at execution start below, so queue wait
        // never pre-expires it.
        if let Some(dl) = hard_deadline {
            if Budget::with_deadline(dl).is_exhausted_now() {
                self.stats.record_timeout();
                let _ = job.reply.send(Err(QueryError::Timeout));
                return;
            }
        }
        // Degradation ladder: under sustained queue pressure, shrink
        // the remaining execution budget so the anytime search returns
        // earlier best-effort answers and the queue drains.
        let degraded = self.degradation.as_ref().filter(|p| {
            // relaxed: advisory pressure signal; off-by-a-few is fine.
            self.pressure_streak.load(Ordering::Relaxed) >= p.sustain
        });
        let shrink = |d: Duration| -> Duration {
            match degraded {
                Some(p) => d
                    .mul_f64(p.budget_shrink.clamp(0.0, 1.0))
                    .max(p.floor)
                    .min(d),
                None => d,
            }
        };
        let now = Instant::now();
        let hard_exec = hard_deadline.map(|dl| now + shrink(dl.saturating_duration_since(now)));
        // The soft deadline anchors here, at execution start.
        let soft_exec = job.request.soft_deadline.map(|d| now + shrink(d));
        let exec_deadline = match (hard_exec, soft_exec) {
            (Some(h), Some(s)) => Some(h.min(s)),
            (h, s) => h.or(s),
        };
        if degraded.is_some() && exec_deadline.is_some() {
            self.stats.record_degraded_budget();
        }
        let budget = match exec_deadline {
            Some(dl) => Budget::with_deadline(dl),
            None => Budget::unlimited(),
        };
        let deadline = hard_deadline;
        let key = CacheKey::of(&job.request);
        // Cache-check / leader-election loop: a miss elects a single
        // leader per key (crate::flight); coalesced waiters re-check
        // the cache once the leader is done instead of recomputing.
        let mut waited = false;
        let generation = loop {
            // Generation *before* snapshot: see crate::cache for why
            // this order makes a concurrent swap unable to strand a
            // stale entry.
            let generation = self.cache.generation();
            if let Some(hit) = self.cache.get(&key) {
                if waited {
                    self.stats.record_coalesced();
                }
                let latency = job.submitted.elapsed();
                self.stats.record_served(
                    job.request.semantics,
                    latency,
                    hit.fell_back,
                    hit.completeness,
                );
                let _ = job.reply.send(Ok(QueryResponse {
                    answers: hit.answers.clone(),
                    layer: hit.layer,
                    fell_back: hit.fell_back,
                    cache_hit: true,
                    latency,
                    completeness: hit.completeness,
                }));
                return;
            }
            match self.flight.join(&key, deadline) {
                Flight::Leader => break generation,
                // A leader just finished this key: re-read the cache.
                // If the leader failed (or its insert went stale under
                // a swap), the re-read misses and we join again.
                Flight::Coalesced => waited = true,
                Flight::TimedOut => {
                    self.stats.record_timeout();
                    let _ = job.reply.send(Err(QueryError::Timeout));
                    return;
                }
            }
        };
        let result = match self.current_serving() {
            Serving::Mono(snapshot) => snapshot.execute(&job.request, &budget),
            Serving::Sharded(snapshot) => {
                snapshot.execute_observed(&job.request, &budget, Some(&self.stats))
            }
        };
        match result {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                // Insert *before* leaving the flight, so a woken
                // follower's cache re-read finds the entry instead of
                // electing itself leader and recomputing. Only *exact*
                // outcomes are cacheable: a best-effort set is an
                // artifact of one request's budget, and serving it to a
                // later, unhurried query would silently degrade it.
                if outcome.completeness.is_exact() {
                    self.cache
                        .insert_at(generation, key.clone(), Arc::clone(&outcome));
                }
                self.flight.leave(&key);
                let latency = job.submitted.elapsed();
                self.stats.record_served(
                    job.request.semantics,
                    latency,
                    outcome.fell_back,
                    outcome.completeness,
                );
                let _ = job.reply.send(Ok(QueryResponse {
                    answers: outcome.answers.clone(),
                    layer: outcome.layer,
                    fell_back: outcome.fell_back,
                    cache_hit: false,
                    latency,
                    completeness: outcome.completeness,
                }));
            }
            Err(err) => {
                // Nothing to insert, but the key must still be
                // released so waiters can retry (and likely become the
                // next leader) instead of stalling.
                self.flight.leave(&key);
                match err {
                    QueryError::Timeout => self.stats.record_timeout(),
                    _ => self.stats.record_invalid(),
                }
                self.log
                    .line(&format!("query refused ({}): {err}", job.request.semantics));
                let _ = job.reply.send(Err(err));
            }
        }
    }
}

/// A running query-serving engine. Dropping it shuts the pool down
/// (pending requests get [`QueryError::Shutdown`]).
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The in-flight background rebuild, if any (see
    /// [`Service::apply_updates`]). One slot: a second rebuild is never
    /// started while one is outstanding.
    rebuild: Mutex<Option<JoinHandle<IndexBundle>>>,
}

impl Service {
    /// Starts `config.workers` threads serving `snapshot`. Taking an
    /// `Arc` lets callers keep (or share) a handle to the same
    /// immutable snapshot — e.g. several services over one index.
    pub fn start(snapshot: Arc<IndexSnapshot>, config: ServiceConfig) -> Service {
        Self::start_with_logger(snapshot, config, Logger::disabled())
    }

    /// [`Service::start`] with diagnostics routed to `log`.
    pub fn start_with_logger(
        snapshot: Arc<IndexSnapshot>,
        config: ServiceConfig,
        log: Logger,
    ) -> Service {
        Self::start_serving(Serving::Mono(snapshot), StatsRegistry::new(), config, log)
    }

    /// Starts the pool serving a sharded deployment: each query is
    /// scatter–gathered across `snapshot`'s shards (see
    /// [`ShardedSnapshot`]) and the stats registry carries one
    /// per-shard lane.
    pub fn start_sharded(snapshot: Arc<ShardedSnapshot>, config: ServiceConfig) -> Service {
        Self::start_sharded_with_logger(snapshot, config, Logger::disabled())
    }

    /// [`Service::start_sharded`] with diagnostics routed to `log`.
    pub fn start_sharded_with_logger(
        snapshot: Arc<ShardedSnapshot>,
        config: ServiceConfig,
        log: Logger,
    ) -> Service {
        let lanes = snapshot.num_shards();
        Self::start_serving(
            Serving::Sharded(snapshot),
            StatsRegistry::with_shards(lanes),
            config,
            log,
        )
    }

    fn start_serving(
        serving: Serving,
        stats: StatsRegistry,
        config: ServiceConfig,
        log: Logger,
    ) -> Service {
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(serving),
            queue: BoundedQueue::new(config.queue_capacity),
            cache: AnswerCache::new(config.cache_shards, config.cache_capacity),
            flight: SingleFlight::new(),
            stats,
            log,
            default_deadline: config.default_deadline,
            degradation: config.degradation,
            queue_capacity: config.queue_capacity.max(1),
            workers: config.workers.max(1),
            pressure_streak: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        shared.active.fetch_add(1, Ordering::AcqRel);
                        shared.serve(job);
                        shared.active.fetch_sub(1, Ordering::AcqRel);
                    }
                })
            })
            .collect();
        Service {
            shared,
            workers,
            rebuild: Mutex::new(None),
        }
    }

    /// Submits `request` without blocking. On admission the reply
    /// channel eventually yields exactly one result; a full queue sheds
    /// the request with [`QueryError::Overloaded`] instead.
    pub fn submit(
        &self,
        request: QueryRequest,
    ) -> Result<mpsc::Receiver<Result<QueryResponse, QueryError>>, QueryError> {
        let (reply, rx) = mpsc::channel();
        let job = Job {
            request,
            submitted: Instant::now(),
            reply,
        };
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.track_pressure();
                Ok(rx)
            }
            Err(PushError::Full) => {
                self.shared.track_pressure();
                self.shared.stats.record_overloaded();
                Err(QueryError::Overloaded {
                    retry_after_hint: self.shared.retry_after_hint(),
                })
            }
            Err(PushError::Closed) => Err(QueryError::Shutdown),
        }
    }

    /// Submits and waits for the response.
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse, QueryError> {
        let rx = self.submit(request)?;
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(QueryError::Shutdown),
        }
    }

    /// Installs a new snapshot for all subsequent queries and
    /// invalidates the answer cache. In-flight queries complete
    /// against the snapshot they started with. Switches a sharded
    /// service back to monolithic serving.
    pub fn swap_snapshot(&self, snapshot: Arc<IndexSnapshot>) {
        {
            let mut guard = self
                .shared
                .snapshot
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *guard = Serving::Mono(snapshot);
        }
        // Snapshot first, then invalidate: a worker that cached its
        // generation before this bump can no longer insert.
        self.shared.cache.invalidate_all();
        self.shared.stats.record_swap();
        self.shared
            .log
            .line("index snapshot swapped; cache invalidated");
    }

    /// Installs a whole sharded snapshot (all shards at once) and
    /// invalidates the answer cache, with the same in-flight semantics
    /// as [`Service::swap_snapshot`].
    pub fn swap_sharded(&self, snapshot: Arc<ShardedSnapshot>) {
        {
            let mut guard = self
                .shared
                .snapshot
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *guard = Serving::Sharded(snapshot);
        }
        self.shared.cache.invalidate_all();
        self.shared.stats.record_swap();
        self.shared
            .log
            .line("sharded snapshot swapped; cache invalidated");
    }

    /// Replaces one shard of the currently served sharded snapshot —
    /// the shard-local swap unit behind per-shard ingest and recovery.
    /// The replacement snapshot is assembled *inside* the write lock,
    /// so two concurrent single-shard swaps can never lose each other's
    /// shard. Returns `false` (and changes nothing) when the service is
    /// not in sharded mode.
    pub fn swap_shard(&self, s: usize, snapshot: Arc<IndexSnapshot>, map: Arc<Vec<VId>>) -> bool {
        {
            let mut guard = self
                .shared
                .snapshot
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let Serving::Sharded(current) = &*guard else {
                return false;
            };
            *guard = Serving::Sharded(Arc::new(current.with_shard(s, snapshot, map)));
        }
        self.shared.cache.invalidate_all();
        self.shared.stats.record_swap();
        self.shared
            .log
            .line(&format!("shard {s} snapshot swapped; cache invalidated"));
        true
    }

    /// Hot-reloads the index from `store`, gated on recovery and
    /// verification: the newest complete generation is loaded, verified
    /// (twice — the store's own gate plus the snapshot's), and only then
    /// swapped in. On *any* failure — no loadable generation, I/O,
    /// corruption, verification — the running snapshot keeps serving
    /// untouched and the rollback is counted in
    /// [`ServiceStats::reload_rollbacks`]: degraded-but-serving, never
    /// down.
    ///
    /// Returns the generation number now being served.
    pub fn reload_from_disk(&self, store: &Store) -> Result<u64, ReloadError> {
        let attempt =
            store
                .load_latest()
                .map_err(ReloadError::Store)
                .and_then(|(generation, bundle)| {
                    IndexSnapshot::from_bundle(bundle)
                        .map(|snapshot| (generation, snapshot))
                        .map_err(ReloadError::Snapshot)
                });
        match attempt {
            Ok((generation, snapshot)) => {
                self.swap_snapshot(Arc::new(snapshot));
                self.shared.stats.record_reload();
                self.shared
                    .log
                    .line(&format!("reloaded index generation {generation} from disk"));
                Ok(generation)
            }
            Err(err) => {
                self.shared.stats.record_reload_rollback();
                self.shared.log.line(&format!(
                    "reload failed ({err}); rolled back to the running snapshot"
                ));
                Err(err)
            }
        }
    }

    /// The live write path: applies `updates` through `engine`
    /// (WAL-logged when the engine has one), then builds a snapshot
    /// from the engine's new bundle and swaps it in.
    ///
    /// When the staleness tracker recommends a full rebuild, the
    /// from-scratch construction runs on a **background thread**
    /// (`Engine::start_rebuild` captures the inputs; updates keep
    /// applying and are buffered as a delta) — the write path never
    /// blocks on it. The finished rebuild is adopted — delta replayed,
    /// snapshot swapped — by the next `apply_updates` call that finds
    /// it done, or by an explicit [`Service::poll_rebuild`]. At most
    /// one rebuild is in flight at a time, and a result whose engine
    /// epoch has gone away (e.g. the caller recovered a fresh engine
    /// from the store) is discarded, not adopted.
    ///
    /// Queries keep serving the old snapshot for the whole duration —
    /// including during a rebuild — and only ever see the new state
    /// atomically via [`Service::swap_snapshot`] (which also
    /// invalidates the answer cache, so no stale answers survive the
    /// swap). If the new bundle fails snapshot admission the old
    /// snapshot keeps serving and the batch is reported as
    /// [`ApplyError::Snapshot`]; the engine state *has* advanced (and
    /// is WAL-recoverable), so the caller decides between retrying the
    /// materialization and restarting from the store.
    pub fn apply_updates(
        &self,
        engine: &mut Engine,
        updates: &[IngestUpdate],
    ) -> Result<ApplyReport, ApplyError> {
        if updates.is_empty() {
            // Complete no-op: nothing logged, nothing re-materialized —
            // skip the snapshot clone + swap as well.
            let outcome = engine.apply_batch(updates).map_err(ApplyError::Ingest)?;
            return Ok(ApplyReport {
                outcome,
                rebuilt: false,
                rebuild_started: false,
            });
        }
        let outcome = engine.apply_batch(updates).map_err(ApplyError::Ingest)?;
        let rebuilt = self.adopt_finished_rebuild(engine)?;
        let rebuild_started = self.maybe_start_rebuild(engine);
        match IndexSnapshot::from_bundle(engine.bundle().clone()) {
            Ok(snapshot) => {
                self.swap_snapshot(Arc::new(snapshot));
                self.shared.stats.record_ingest_batch();
                Ok(ApplyReport {
                    outcome,
                    rebuilt,
                    rebuild_started,
                })
            }
            Err(err) => {
                self.shared.stats.record_ingest_rollback();
                self.shared.log.line(&format!(
                    "update batch refused at snapshot admission ({err}); \
                     previous snapshot keeps serving"
                ));
                Err(ApplyError::Snapshot(err))
            }
        }
    }

    /// The *group-commit* write path: like [`Service::apply_updates`],
    /// but concurrent callers coalesce into one commit cycle through
    /// the hub's [`CommitQueue`]. Exactly one caller (the leader) locks
    /// the engine and commits every concurrent batch with **one** WAL
    /// append + fsync ([`Engine::apply_group`]), one materialization,
    /// and one snapshot swap; the others wait for their own
    /// [`ApplyReport`] without ever touching the engine. Under 16
    /// single-op writers this turns 16 fsyncs into a handful.
    ///
    /// Failure semantics: a whole-group failure (validation, WAL I/O,
    /// snapshot admission) is delivered to every caller in the group as
    /// [`ApplyError::Group`] sharing the underlying cause. A leader
    /// that *panics* mid-cycle yields [`ApplyError::LeaderDied`] for
    /// the batches it had drained — their commit outcome is unknown,
    /// exactly like a client losing its connection mid-commit.
    pub fn apply_updates_grouped(
        &self,
        hub: &WriteHub,
        updates: Vec<IngestUpdate>,
    ) -> Result<ApplyReport, ApplyError> {
        match hub
            .queue
            .commit(updates, |batches| self.commit_group(hub, batches))
        {
            Some(Ok(report)) => Ok(report),
            Some(Err(shared)) => Err(ApplyError::Group(shared)),
            None => Err(ApplyError::LeaderDied),
        }
    }

    /// Leader body for [`Service::apply_updates_grouped`]: one engine
    /// lock, one group apply, one snapshot swap, one report per batch.
    fn commit_group(
        &self,
        hub: &WriteHub,
        batches: Vec<Vec<IngestUpdate>>,
    ) -> Vec<Result<ApplyReport, Arc<ApplyError>>> {
        let count = batches.len();
        let mut engine = hub.engine.lock().unwrap_or_else(PoisonError::into_inner);
        match self.commit_group_locked(&mut engine, &batches) {
            Ok(reports) => reports.into_iter().map(Ok).collect(),
            Err(err) => {
                let shared = Arc::new(err);
                (0..count).map(|_| Err(Arc::clone(&shared))).collect()
            }
        }
    }

    fn commit_group_locked(
        &self,
        engine: &mut Engine,
        batches: &[Vec<IngestUpdate>],
    ) -> Result<Vec<ApplyReport>, ApplyError> {
        let outcomes = engine.apply_group(batches).map_err(ApplyError::Ingest)?;
        if batches.iter().all(Vec::is_empty) {
            // Whole group was a no-op: nothing changed, so skip the
            // rebuild bookkeeping and the snapshot clone + swap.
            return Ok(outcomes
                .into_iter()
                .map(|outcome| ApplyReport {
                    outcome,
                    rebuilt: false,
                    rebuild_started: false,
                })
                .collect());
        }
        let rebuilt = self.adopt_finished_rebuild(engine)?;
        let rebuild_started = self.maybe_start_rebuild(engine);
        match IndexSnapshot::from_bundle(engine.bundle().clone()) {
            Ok(snapshot) => {
                self.swap_snapshot(Arc::new(snapshot));
                self.shared.stats.record_ingest_batch();
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| ApplyReport {
                        outcome,
                        rebuilt,
                        rebuild_started,
                    })
                    .collect())
            }
            Err(err) => {
                self.shared.stats.record_ingest_rollback();
                self.shared.log.line(&format!(
                    "update group refused at snapshot admission ({err}); \
                     previous snapshot keeps serving"
                ));
                Err(ApplyError::Snapshot(err))
            }
        }
    }

    /// The *sharded* write path: routes `updates` by vertex ownership
    /// (see `bgi_shard::ShardRouter`), journals global numbering and
    /// cut changes to the meta WAL, then group-commits each shard's
    /// share through that shard's own [`WriteHub`] — so writers hitting
    /// different shards never serialize on one engine lock, and a
    /// committed shard swaps only *its* slice of the serving snapshot
    /// ([`Service::swap_shard`]).
    ///
    /// Atomicity: routing runs on a **staged clone** of the router and
    /// the clone is committed back only after the meta WAL append
    /// succeeds, so a routing or journaling failure mutates nothing
    /// (`Err` here means no shard saw the batch). After that point
    /// shards commit independently: every assigned shard is attempted,
    /// and per-shard outcomes are reported side by side in the
    /// [`ShardedApplyReport`] — one shard's WAL failure neither blocks
    /// nor poisons its siblings, and recovery
    /// ([`Service::recover_shard`]) reconciles the router with whatever
    /// each engine actually made durable.
    pub fn apply_updates_sharded(
        &self,
        hub: &ShardedWriteHub,
        updates: &[IngestUpdate],
    ) -> Result<ShardedApplyReport, ApplyError> {
        let routed = {
            let mut guard = hub.router.lock().unwrap_or_else(PoisonError::into_inner);
            let mut staged = guard.clone();
            let routed = staged.route(updates).map_err(ApplyError::Route)?;
            if !routed.meta.is_empty() {
                let mut meta = hub.meta.lock().unwrap_or_else(PoisonError::into_inner);
                meta.append(&routed.meta).map_err(ApplyError::Meta)?;
            }
            *guard = staged;
            routed
        };
        let RoutedBatch {
            per_shard: shares,
            assigned,
            ..
        } = routed;
        let mut per_shard: Vec<Option<Result<ApplyReport, ApplyError>>> =
            (0..hub.hubs.len()).map(|_| None).collect();
        for (s, share) in shares.into_iter().enumerate() {
            if share.is_empty() {
                continue;
            }
            let result = match hub.hubs[s]
                .queue
                .commit(share, |batches| self.commit_shard_group(hub, s, batches))
            {
                Some(Ok(report)) => Ok(report),
                Some(Err(shared)) => Err(ApplyError::Group(shared)),
                None => Err(ApplyError::LeaderDied),
            };
            per_shard[s] = Some(result);
        }
        Ok(ShardedApplyReport {
            per_shard,
            assigned,
        })
    }

    /// Leader body for one shard's group commit (the sharded analogue
    /// of [`Service::commit_group`]).
    fn commit_shard_group(
        &self,
        hub: &ShardedWriteHub,
        s: usize,
        batches: Vec<Vec<IngestUpdate>>,
    ) -> Vec<Result<ApplyReport, Arc<ApplyError>>> {
        let count = batches.len();
        let mut engine = hub.hubs[s]
            .engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match self.commit_shard_locked(hub, s, &mut engine, &batches) {
            Ok(reports) => reports.into_iter().map(Ok).collect(),
            Err(err) => {
                let shared = Arc::new(err);
                (0..count).map(|_| Err(Arc::clone(&shared))).collect()
            }
        }
    }

    fn commit_shard_locked(
        &self,
        hub: &ShardedWriteHub,
        s: usize,
        engine: &mut Engine,
        batches: &[Vec<IngestUpdate>],
    ) -> Result<Vec<ApplyReport>, ApplyError> {
        let outcomes = engine.apply_group(batches).map_err(ApplyError::Ingest)?;
        if batches.iter().all(Vec::is_empty) {
            return Ok(outcomes
                .into_iter()
                .map(|outcome| ApplyReport {
                    outcome,
                    rebuilt: false,
                    rebuild_started: false,
                })
                .collect());
        }
        let rebuilt = self.adopt_finished_shard_rebuild(hub, s, engine)?;
        let rebuild_started = self.maybe_start_shard_rebuild(hub, s, engine);
        match IndexSnapshot::from_bundle(engine.bundle().clone()) {
            Ok(snapshot) => {
                // Engine → router is the one permitted nesting of those
                // two locks (see `ShardedWriteHub`); this read is brief.
                let map = {
                    let router = hub.router.lock().unwrap_or_else(PoisonError::into_inner);
                    Arc::new(router.map(s))
                };
                if !self.swap_shard(s, Arc::new(snapshot), map) {
                    self.shared.log.line(&format!(
                        "shard {s} committed while the service is not serving sharded; \
                         engine state advanced, snapshot unchanged"
                    ));
                }
                self.shared.stats.record_ingest_batch();
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| ApplyReport {
                        outcome,
                        rebuilt,
                        rebuild_started,
                    })
                    .collect())
            }
            Err(err) => {
                self.shared.stats.record_ingest_rollback();
                self.shared.log.line(&format!(
                    "shard {s} update group refused at snapshot admission ({err}); \
                     previous shard snapshot keeps serving"
                ));
                Err(ApplyError::Snapshot(err))
            }
        }
    }

    /// Per-shard analogue of [`Service::adopt_finished_rebuild`], using
    /// shard `s`'s slot in the hub's rebuild table.
    fn adopt_finished_shard_rebuild(
        &self,
        hub: &ShardedWriteHub,
        s: usize,
        engine: &mut Engine,
    ) -> Result<bool, ApplyError> {
        let handle = {
            let mut slots = hub.rebuilds.lock().unwrap_or_else(PoisonError::into_inner);
            match slots[s].as_ref() {
                Some(h) if h.is_finished() => slots[s].take(),
                _ => None,
            }
        };
        let Some(handle) = handle else {
            return Ok(false);
        };
        let Ok(bundle) = handle.join() else {
            engine.abort_rebuild();
            self.shared.stats.record_ingest_rollback();
            self.shared.log.line(&format!(
                "shard {s} background rebuild panicked; keeping incremental state"
            ));
            return Ok(false);
        };
        if !engine.rebuild_in_flight() {
            // Shard `s` was recovered (engine replaced) after the job
            // was captured: the result describes a dead epoch.
            self.shared.log.line(&format!(
                "stale shard {s} background rebuild discarded (engine was replaced)"
            ));
            return Ok(false);
        }
        engine.finish_rebuild(bundle).map_err(ApplyError::Ingest)?;
        self.shared.stats.record_ingest_rebuild();
        self.shared.log.line(&format!(
            "shard {s} background rebuild adopted; delta replayed"
        ));
        Ok(true)
    }

    /// Per-shard analogue of [`Service::maybe_start_rebuild`]: each
    /// shard tracks drift and rebuilds independently, so one hot shard
    /// re-densifying never stalls writes to the others.
    fn maybe_start_shard_rebuild(
        &self,
        hub: &ShardedWriteHub,
        s: usize,
        engine: &mut Engine,
    ) -> bool {
        let mut slots = hub.rebuilds.lock().unwrap_or_else(PoisonError::into_inner);
        if slots[s].is_some() || engine.rebuild_in_flight() || !engine.drift().rebuild_recommended {
            return false;
        }
        let job = engine.start_rebuild();
        slots[s] = Some(thread::spawn(move || job.run()));
        self.shared.log.line(&format!(
            "shard {s} drift-triggered background rebuild started after {} updates",
            engine.updates_since_rebuild()
        ));
        true
    }

    /// Recovers **one shard** from its own store — load the newest
    /// complete generation, replay that shard's WAL on top, replace the
    /// shard's engine, reconcile the router against what every engine
    /// actually holds, and swap the recovered shard into the serving
    /// snapshot — all without ever freezing the other shards' serving
    /// or write paths.
    ///
    /// Returns the number of WAL updates replayed on top of the loaded
    /// generation. On error nothing is replaced and the old shard state
    /// (possibly stale, still verified) keeps serving.
    pub fn recover_shard(
        &self,
        hub: &ShardedWriteHub,
        store: &ShardedStore,
        s: usize,
        config: EngineConfig,
    ) -> Result<usize, ShardedBootError> {
        let (_generation, bundle) = store
            .store(s)
            .load_latest()
            .map_err(|e| ShardedBootError::Store(ShardStoreError::from(e)))?;
        let (engine, replayed) =
            Engine::with_wal(bundle, config, store.store(s)).map_err(ShardedBootError::Ingest)?;
        let snapshot = IndexSnapshot::from_bundle(engine.bundle().clone())
            .map_err(ShardedBootError::Snapshot)?;
        {
            // Any in-flight rebuild was captured from the dead epoch;
            // its thread finishes detached and the adoption guard
            // (`rebuild_in_flight`) would discard it anyway.
            let mut slots = hub.rebuilds.lock().unwrap_or_else(PoisonError::into_inner);
            drop(slots[s].take());
        }
        {
            let mut guard = hub.hubs[s]
                .engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *guard = engine;
        }
        // Reconcile global numbering with what the engines actually
        // recovered. Engine locks are taken one at a time and never
        // while holding the router.
        let lens: Vec<usize> = (0..hub.hubs.len())
            .map(|i| hub.hubs[i].with_engine(|e| e.bundle().index.graph_at(0).num_vertices()))
            .collect();
        let map = {
            let mut router = hub.router.lock().unwrap_or_else(PoisonError::into_inner);
            router.reconcile(&lens);
            Arc::new(router.map(s))
        };
        self.swap_shard(s, Arc::new(snapshot), map);
        self.shared.log.line(&format!(
            "shard {s} recovered from its store ({replayed} WAL updates replayed)"
        ));
        Ok(replayed)
    }

    /// Adopts a finished background rebuild, if one is waiting: replays
    /// the buffered delta onto the rebuilt hierarchy and swaps the
    /// resulting snapshot in. Returns `Ok(true)` when a rebuild was
    /// adopted and the snapshot swapped. `apply_updates` does this
    /// automatically on every batch; call this from an idle tick (or
    /// before a checkpoint) to adopt without waiting for the next
    /// write.
    pub fn poll_rebuild(&self, engine: &mut Engine) -> Result<bool, ApplyError> {
        if !self.adopt_finished_rebuild(engine)? {
            return Ok(false);
        }
        match IndexSnapshot::from_bundle(engine.bundle().clone()) {
            Ok(snapshot) => {
                self.swap_snapshot(Arc::new(snapshot));
                Ok(true)
            }
            Err(err) => {
                self.shared.stats.record_ingest_rollback();
                self.shared.log.line(&format!(
                    "rebuilt index refused at snapshot admission ({err}); \
                     previous snapshot keeps serving"
                ));
                Err(ApplyError::Snapshot(err))
            }
        }
    }

    /// If the background rebuild slot holds a finished job, join it and
    /// fold the result into `engine`. Returns whether an adoption
    /// happened. A panicked build or a stale result (the engine is not
    /// the one the job was captured from) is discarded; the
    /// incrementally maintained state stays authoritative either way.
    fn adopt_finished_rebuild(&self, engine: &mut Engine) -> Result<bool, ApplyError> {
        let handle = {
            let mut slot = self.rebuild.lock().unwrap_or_else(PoisonError::into_inner);
            match slot.as_ref() {
                Some(h) if h.is_finished() => slot.take(),
                _ => None,
            }
        };
        let Some(handle) = handle else {
            return Ok(false);
        };
        let Ok(bundle) = handle.join() else {
            engine.abort_rebuild();
            self.shared.stats.record_ingest_rollback();
            self.shared
                .log
                .line("background rebuild panicked; keeping incremental state");
            return Ok(false);
        };
        if !engine.rebuild_in_flight() {
            // The engine was replaced (crash-recovery path) after the
            // job was captured: its result describes a dead epoch.
            self.shared
                .log
                .line("stale background rebuild discarded (engine was replaced)");
            return Ok(false);
        }
        engine.finish_rebuild(bundle).map_err(ApplyError::Ingest)?;
        self.shared.stats.record_ingest_rebuild();
        self.shared
            .log
            .line("background rebuild adopted; delta replayed");
        Ok(true)
    }

    /// Starts a background rebuild when the staleness tracker
    /// recommends one and none is already in flight. Returns whether a
    /// build was launched.
    fn maybe_start_rebuild(&self, engine: &mut Engine) -> bool {
        let mut slot = self.rebuild.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() || engine.rebuild_in_flight() || !engine.drift().rebuild_recommended {
            return false;
        }
        let job = engine.start_rebuild();
        *slot = Some(thread::spawn(move || job.run()));
        self.shared.log.line(&format!(
            "drift-triggered background rebuild started after {} updates",
            engine.updates_since_rebuild()
        ));
        true
    }

    /// The monolithic snapshot queries currently run against, or
    /// `None` when the service is serving a sharded deployment.
    pub fn snapshot(&self) -> Option<Arc<IndexSnapshot>> {
        match self.shared.current_serving() {
            Serving::Mono(s) => Some(s),
            Serving::Sharded(_) => None,
        }
    }

    /// The sharded snapshot queries currently run against, or `None`
    /// when the service is serving a single monolithic snapshot.
    pub fn sharded(&self) -> Option<Arc<ShardedSnapshot>> {
        match self.shared.current_serving() {
            Serving::Mono(_) => None,
            Serving::Sharded(s) => Some(s),
        }
    }

    /// Jobs currently executing on a worker (queued jobs not included).
    pub fn active_jobs(&self) -> u64 {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Point-in-time service statistics (counters, latency
    /// percentiles, cache health).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.shared.stats.snapshot();
        stats.cache = self.shared.cache.stats();
        stats
    }

    /// Current admission-queue depth (for monitoring and tests).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: stops admitting new work, then waits up to
    /// `grace` for the queue to empty and every in-flight query to
    /// finish (each bounded by its own deadline). Whatever is still
    /// queued when the grace period expires is failed with
    /// [`QueryError::Shutdown`]; workers are then joined.
    ///
    /// Returns `true` when everything drained inside the grace period.
    pub fn drain(&mut self, grace: Duration) -> bool {
        self.shared.queue.close();
        let deadline = Instant::now() + grace;
        let drained = loop {
            if self.shared.queue.is_empty() && self.active_jobs() == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            thread::sleep(Duration::from_millis(1));
        };
        self.shutdown();
        drained
    }

    /// Stops accepting work, fails whatever is still queued with
    /// [`QueryError::Shutdown`], and joins the workers — plus any
    /// background rebuild still running (its result is discarded; the
    /// WAL preserves everything it would have folded). Idempotent.
    pub fn shutdown(&mut self) {
        for job in self.shared.queue.close_and_drain() {
            let _ = job.reply.send(Err(QueryError::Shutdown));
        }
        let rebuild = {
            let mut slot = self.rebuild.lock().unwrap_or_else(PoisonError::into_inner);
            slot.take()
        };
        if let Some(handle) = rebuild {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The shared write-side state for [`Service::apply_updates_grouped`]:
/// the engine behind a mutex plus the [`CommitQueue`] that coalesces
/// concurrent callers into single commit cycles. Create one per engine
/// and hand `&WriteHub` to every writer thread.
pub struct WriteHub {
    engine: Mutex<Engine>,
    queue: CommitQueue<Vec<IngestUpdate>, Result<ApplyReport, Arc<ApplyError>>>,
}

impl WriteHub {
    /// Wraps `engine` for concurrent grouped writers.
    pub fn new(engine: Engine) -> Self {
        WriteHub {
            engine: Mutex::new(engine),
            queue: CommitQueue::new(),
        }
    }

    /// Runs `f` with exclusive access to the engine — for maintenance
    /// paths (checkpoint, drift inspection, explicit rebuild) that need
    /// the engine outside a commit cycle. Writers are blocked for the
    /// duration, so keep it short.
    pub fn with_engine<T>(&self, f: impl FnOnce(&mut Engine) -> T) -> T {
        let mut engine = self.engine.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut engine)
    }

    /// Unwraps the hub back into its engine (e.g. at shutdown).
    pub fn into_engine(self) -> Engine {
        self.engine
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// What one [`Service::apply_updates`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReport {
    /// The engine-level outcome (WAL sequence, layer reuse counts).
    pub outcome: ApplyOutcome,
    /// Whether a *finished* background rebuild was adopted (delta
    /// replayed, snapshot rebuilt) by this call.
    pub rebuilt: bool,
    /// Whether the staleness tracker launched a new background rebuild
    /// on this call. Adoption happens on a later call (or via
    /// [`Service::poll_rebuild`]) once the build finishes.
    pub rebuild_started: bool,
}

/// What one [`Service::apply_updates_sharded`] call did, shard by
/// shard.
#[derive(Debug)]
pub struct ShardedApplyReport {
    /// `per_shard[s]` is `None` when shard `s` had no share of the
    /// batch, otherwise that shard's independent commit outcome. One
    /// shard failing does not imply anything about the others.
    pub per_shard: Vec<Option<Result<ApplyReport, ApplyError>>>,
    /// `assigned[i]` = the shard that owns `updates[i]`'s primary
    /// effect (the owner of an added vertex, or of an edge's source).
    pub assigned: Vec<u32>,
}

impl ShardedApplyReport {
    /// True when every shard that had a share committed it.
    pub fn all_committed(&self) -> bool {
        self.per_shard.iter().flatten().all(Result::is_ok)
    }
}

/// Why a [`Service::apply_updates`] did not swap a new snapshot in.
#[derive(Debug)]
pub enum ApplyError {
    /// The batch was rejected or failed before the swap (invalid
    /// update, WAL I/O, replay gap). Invalid batches leave the engine
    /// unchanged; see [`bgi_ingest::IngestError`] for the cases.
    Ingest(IngestError),
    /// The updated bundle failed snapshot admission; the previous
    /// snapshot keeps serving.
    Snapshot(SnapshotError),
    /// This batch was coalesced into a group
    /// ([`Service::apply_updates_grouped`]) that failed as a whole; the
    /// shared cause is delivered to every caller in the group. The
    /// batch was **not** committed.
    Group(Arc<ApplyError>),
    /// The group leader handling this batch died (panicked) mid-cycle;
    /// the commit outcome is unknown — the batch may or may not have
    /// reached the WAL. Callers should re-check state before retrying.
    LeaderDied,
    /// Sharded writes only: an update referenced a vertex or label the
    /// router does not know. Nothing was journaled or committed
    /// anywhere.
    Route(RouteError),
    /// Sharded writes only: appending the batch's global-numbering and
    /// cut records to the meta WAL failed. The routing table was not
    /// advanced and no shard saw the batch.
    Meta(StoreError),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Ingest(e) => write!(f, "update batch failed: {e}"),
            ApplyError::Snapshot(e) => write!(f, "updated index refused: {e}"),
            ApplyError::Group(e) => write!(f, "update group failed: {e}"),
            ApplyError::LeaderDied => {
                write!(f, "group leader died mid-commit; batch outcome unknown")
            }
            ApplyError::Route(e) => write!(f, "update batch failed shard routing: {e}"),
            ApplyError::Meta(e) => write!(f, "meta WAL append failed: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Ingest(e) => Some(e),
            ApplyError::Snapshot(e) => Some(e),
            ApplyError::Group(e) => Some(e.as_ref()),
            ApplyError::LeaderDied => None,
            ApplyError::Route(e) => Some(e),
            ApplyError::Meta(e) => Some(e),
        }
    }
}

/// Why a [`Service::reload_from_disk`] left the old snapshot serving.
#[derive(Debug)]
pub enum ReloadError {
    /// The store produced no loadable generation (empty, all corrupt,
    /// or persistent I/O failure after retries).
    Store(StoreError),
    /// The loaded bundle failed snapshot admission (dirty hierarchy or
    /// layer-coverage mismatch).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Store(e) => write!(f, "store recovery failed: {e}"),
            ReloadError::Snapshot(e) => write!(f, "loaded bundle refused: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Store(e) => Some(e),
            ReloadError::Snapshot(e) => Some(e),
        }
    }
}
