//! Service diagnostics without `println!`.
//!
//! Library code in this workspace never prints (enforced by
//! `cargo xtask lint`); the service instead writes through a
//! [`Logger`], which is *silent by default* and only emits when handed
//! a writer (the `bgi serve` front-end passes stderr). Write failures
//! are swallowed — logging must never take the service down.

use bgi_check::sync::{Mutex, PoisonError};
use std::io::Write;

/// A shareable, optional line writer.
#[derive(Default)]
pub struct Logger {
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Logger {
    /// A logger that discards everything.
    pub fn disabled() -> Logger {
        Logger::default()
    }

    /// A logger writing lines to `sink`.
    pub fn to(sink: Box<dyn Write + Send>) -> Logger {
        Logger {
            sink: Mutex::new(Some(sink)),
        }
    }

    /// Writes one line (a newline is appended). Errors are ignored.
    pub fn line(&self, message: &str) {
        let mut guard = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = guard.as_mut() {
            let _ = writeln!(sink, "{message}");
        }
    }

    /// True when a writer is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::PoisonError;
    use std::sync::{Arc, Mutex};

    /// A Vec<u8> sink shared with the test.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_logger_is_silent_and_cheap() {
        let log = Logger::disabled();
        assert!(!log.is_enabled());
        log.line("nobody hears this");
    }

    #[test]
    fn enabled_logger_writes_lines() {
        let cap = Capture::default();
        let log = Logger::to(Box::new(cap.clone()));
        assert!(log.is_enabled());
        log.line("hello");
        log.line("world");
        let got = cap.0.lock().unwrap_or_else(PoisonError::into_inner).clone();
        assert_eq!(String::from_utf8_lossy(&got), "hello\nworld\n");
    }
}
