//! # bgi-service
//!
//! A concurrent query-serving layer over a BiG-index. The index
//! hierarchy `𝔾` is immutable once built (Algo. 2's pipeline is
//! read-only), which makes it ideal for shared-snapshot execution: the
//! service owns an `Arc`-shared [`snapshot::IndexSnapshot`] — the
//! BiG-index plus every plugged-in algorithm's per-layer index — and a
//! fixed pool of worker threads evaluates [`request::QueryRequest`]s
//! against it.
//!
//! The serving pipeline, request to response:
//!
//! 1. **admission** ([`admission`]) — a bounded submission queue sheds
//!    load with a typed [`request::QueryError::Overloaded`] instead of
//!    blocking the caller;
//! 2. **cache** ([`cache`]) — a sharded LRU keyed by the normalized
//!    query (keyword set, semantics, `k`, layer, `d_max`), invalidated
//!    wholesale when the index snapshot is swapped;
//! 3. **coalescing** ([`flight`]) — concurrent misses on the same key
//!    elect one leader to compute while the rest wait and re-read the
//!    cache, so a burst of identical queries costs one execution;
//! 4. **execution** ([`snapshot`]) — Algo. 2 at the requested (or
//!    cost-optimal) layer under a cooperative `bgi_search::Budget`, so a
//!    per-request deadline interrupts the search/specialize/generate
//!    loops mid-flight;
//! 5. **accounting** ([`stats`]) — lock-free counters and a fixed-bucket
//!    latency histogram behind [`stats::ServiceStats`].
//!
//! A snapshot that fails `bgi_verify::check_index` is refused at
//! construction ([`snapshot::SnapshotError`]): a serving process never
//! runs on an index whose invariants don't hold.
//!
//! The service never prints; diagnostics go through [`log::Logger`],
//! which is silent unless given a writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod cache;
pub mod flight;
pub mod log;
pub mod request;
pub mod service;
pub mod sharded;
pub mod snapshot;
pub mod stats;

pub use batch::{run_batch, BatchReport};
pub use cache::{AnswerCache, CacheStats};
pub use flight::{Flight, SingleFlight};
pub use log::Logger;
pub use request::{QueryError, QueryRequest, QueryResponse, Semantics};
pub use service::{
    ApplyError, ApplyReport, DegradationPolicy, ReloadError, Service, ServiceConfig,
    ShardedApplyReport, WriteHub,
};
pub use sharded::{
    boot_sharded, snapshot_from_build, ShardedBootError, ShardedSnapshot, ShardedWriteHub,
};
pub use snapshot::{IndexSnapshot, SnapshotConfig, SnapshotError};
pub use stats::{ServiceStats, ShardLaneStats};
