//! Scatter–gather serving over shard-local BiG-index hierarchies.
//!
//! A [`ShardedSnapshot`] holds one verified [`IndexSnapshot`] per
//! shard (each built over that shard's universe subgraph — owned set
//! plus halo, see `bgi_shard`) and runs Algorithm 2 as scatter–gather:
//! the request is validated once, every shard's summary hierarchy is
//! searched in parallel under a budget seeded from the caller's
//! cooperative [`Budget`], and the per-shard answers are translated to
//! global ids, anchor-filtered, and re-ranked with the same
//! deterministic `(score, identity)` tie-breaking the monolithic path
//! uses.
//!
//! ## Why the merge is exact
//!
//! The partition contract (see `bgi_shard`) guarantees that any answer
//! with `d_max ≤ dmax_ceiling` is fully contained — with exact
//! internal distances — in the universe of the shard that owns its
//! *anchor* (the root for rooted semantics, the minimum keyword match
//! otherwise). Every answer a shard reports is therefore a genuine
//! global answer with its true score; keeping only the copies whose
//! anchor the reporting shard owns deduplicates across overlapping
//! halos without losing anything. A request whose `d_max` exceeds the
//! ceiling is refused with [`QueryError::DmaxExceedsPartition`]
//! instead of silently returning partial answers.
//!
//! ## Degradation
//!
//! Legs run under budgets seeded from the caller's budget, so one
//! deadline governs the whole scatter. A leg that times out without
//! producing anything is *shed* (counted per shard in the stats
//! lanes) and the merged completeness degrades to `Truncated`; legs
//! that return best-effort answers merge their `Anytime` bounds with
//! [`Completeness::merge`]. Only when every leg sheds does the query
//! time out as a whole.

use crate::request::{QueryError, QueryRequest};
use crate::service::WriteHub;
use crate::snapshot::{ExecOutcome, IndexSnapshot, SnapshotError};
use crate::stats::StatsRegistry;
use bgi_check::sync::thread::JoinHandle;
use bgi_check::sync::Mutex;
use bgi_graph::par::par_map;
use bgi_graph::VId;
use bgi_ingest::{Engine, EngineConfig, IngestError};
use bgi_search::answer::rank_and_truncate;
use bgi_search::{AnswerGraph, Budget, Completeness};
use bgi_shard::{ShardPlan, ShardRouter, ShardedStore};
use bgi_store::{Failpoints, IndexBundle, Wal};
use std::sync::Arc;
use std::time::Instant;

/// Extra answers each scatter leg is asked for beyond the caller's
/// `k`, absorbing ties and halo duplicates that the anchor filter
/// removes at merge time.
const LEG_OVERSAMPLE: usize = 8;

/// One immutable serving unit for a sharded deployment: the partition
/// plan, one verified snapshot per shard, and each shard's
/// local-to-global id map.
pub struct ShardedSnapshot {
    plan: Arc<ShardPlan>,
    shards: Vec<Arc<IndexSnapshot>>,
    /// `maps[s][local]` = global id (strictly increasing per shard:
    /// the sorted base universe followed by the ascending grown tail),
    /// so translation preserves `(score, identity)` ordering.
    maps: Vec<Arc<Vec<VId>>>,
    /// Fan-out width for the scatter (legs beyond it queue).
    scatter_threads: usize,
}

impl ShardedSnapshot {
    /// Assembles a sharded snapshot from per-shard bundles (each is
    /// verified by [`IndexSnapshot::from_bundle`]). `maps[s]` must be
    /// shard `s`'s local-to-global table — the plan universe for a
    /// fresh build, or `ShardRouter::map` once vertices have grown.
    pub fn from_bundles(
        plan: Arc<ShardPlan>,
        bundles: Vec<IndexBundle>,
        maps: Vec<Vec<VId>>,
        scatter_threads: usize,
    ) -> Result<ShardedSnapshot, SnapshotError> {
        let shards = bundles
            .into_iter()
            .map(|b| IndexSnapshot::from_bundle(b).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedSnapshot {
            plan,
            shards,
            maps: maps.into_iter().map(Arc::new).collect(),
            scatter_threads,
        })
    }

    /// A copy of this snapshot with shard `s` replaced — the
    /// shard-local swap unit ([`crate::Service::swap_shard`] installs
    /// it atomically).
    pub fn with_shard(
        &self,
        s: usize,
        snapshot: Arc<IndexSnapshot>,
        map: Arc<Vec<VId>>,
    ) -> ShardedSnapshot {
        let mut shards = self.shards.clone();
        let mut maps = self.maps.clone();
        shards[s] = snapshot;
        maps[s] = map;
        ShardedSnapshot {
            plan: Arc::clone(&self.plan),
            shards,
            maps,
            scatter_threads: self.scatter_threads,
        }
    }

    /// The partition plan.
    pub fn plan(&self) -> &Arc<ShardPlan> {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s snapshot.
    pub fn shard(&self, s: usize) -> &Arc<IndexSnapshot> {
        &self.shards[s]
    }

    /// Shard `s`'s local-to-global id map.
    pub fn map(&self, s: usize) -> &Arc<Vec<VId>> {
        &self.maps[s]
    }

    /// The owner of global vertex `v`: the plan for base vertices,
    /// round-robin (the router's growth rule) beyond them.
    fn owner_of(&self, v: VId) -> Option<u32> {
        if v.index() < self.plan.num_vertices() {
            self.plan.owner_of(v)
        } else {
            Some(v.0 % self.num_shards() as u32)
        }
    }

    /// Executes one request as scatter–gather. See the module docs for
    /// the merge and degradation contract.
    pub fn execute(&self, req: &QueryRequest, budget: &Budget) -> Result<ExecOutcome, QueryError> {
        self.execute_observed(req, budget, None)
    }

    /// [`ShardedSnapshot::execute`] with per-shard leg accounting
    /// recorded into `stats` (the service wires its registry in; bare
    /// snapshot users pass `None`).
    pub fn execute_observed(
        &self,
        req: &QueryRequest,
        budget: &Budget,
        stats: Option<&StatsRegistry>,
    ) -> Result<ExecOutcome, QueryError> {
        if req.keywords.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let ceiling = self.plan.dmax_ceiling();
        if req.dmax > ceiling {
            return Err(QueryError::DmaxExceedsPartition {
                requested: req.dmax,
                ceiling,
            });
        }
        // Each leg is an independent search of one shard's hierarchy:
        // oversampled top-k, no client floor (the merged set applies
        // it), and the shared budget seeded per thread.
        let leg_req = QueryRequest {
            k: req.k * 2 + LEG_OVERSAMPLE,
            deadline: None,
            soft_deadline: None,
            min_results: 0,
            ..req.clone()
        };
        let seed = budget.seed();
        let legs = par_map(self.scatter_threads, self.shards.len(), |s| {
            let leg_budget = seed.budget();
            let started = Instant::now();
            let result = self.shards[s].execute(&leg_req, &leg_budget);
            (result, started.elapsed())
        });
        if let Some(stats) = stats {
            for (s, (result, latency)) in legs.iter().enumerate() {
                let shed = matches!(result, Err(QueryError::Timeout));
                stats.record_shard_leg(s, *latency, shed);
            }
        }
        // A non-timeout failure is a property of the request (empty,
        // bad layer, merged keywords), not of load: report the first
        // one deterministically.
        for (result, _) in &legs {
            if let Err(err) = result {
                if *err != QueryError::Timeout {
                    return Err(err.clone());
                }
            }
        }
        let mut merged: Vec<AnswerGraph> = Vec::new();
        let mut completeness = Completeness::Exact;
        let mut layer = usize::MAX;
        let mut fell_back = false;
        let mut sheds = 0usize;
        for (s, (result, _)) in legs.iter().enumerate() {
            let Ok(outcome) = result else {
                sheds += 1;
                continue;
            };
            completeness = completeness.merge(outcome.completeness);
            layer = layer.min(outcome.layer);
            fell_back |= outcome.fell_back;
            let map = &self.maps[s];
            for a in &outcome.answers {
                let global = translate(a, map);
                if anchor(&global).and_then(|v| self.owner_of(v)) == Some(s as u32) {
                    merged.push(global);
                }
            }
        }
        if sheds == self.shards.len() {
            return Err(QueryError::Timeout);
        }
        if sheds > 0 {
            // A dropped leg may have held arbitrarily good answers: the
            // merged set is correct but unboundedly incomplete.
            completeness = completeness.merge(Completeness::Truncated);
        }
        let answers = rank_and_truncate(merged, req.k);
        if !completeness.is_exact() && answers.len() < req.min_results {
            return Err(QueryError::Timeout);
        }
        Ok(ExecOutcome {
            answers,
            layer: if layer == usize::MAX { 0 } else { layer },
            fell_back,
            completeness,
        })
    }
}

/// Translates a shard-local answer to global ids. The per-shard map is
/// strictly increasing, so sorted vertex lists stay sorted and the
/// `(score, identity)` order is preserved.
fn translate(a: &AnswerGraph, map: &[VId]) -> AnswerGraph {
    let t = |v: VId| map[v.index()];
    AnswerGraph::new(
        a.vertices.iter().map(|&v| t(v)).collect(),
        a.edges.iter().map(|&(u, v)| (t(u), t(v))).collect(),
        a.keyword_matches
            .iter()
            .map(|m| m.iter().map(|&v| t(v)).collect())
            .collect(),
        a.root.map(t),
        a.score,
    )
}

/// The answer's anchor: the root for rooted semantics, the minimum
/// keyword match otherwise (both lie within `d_max` of every keyword
/// node, which is what the halo-containment argument needs).
fn anchor(a: &AnswerGraph) -> Option<VId> {
    a.root
        .or_else(|| a.keyword_matches.iter().flatten().copied().min())
}

/// The shared write-side state for a sharded deployment: the update
/// router, one [`WriteHub`] (engine + group-commit queue) per shard,
/// the meta WAL, and one background-rebuild slot per shard.
///
/// Lock ordering: the router (with the meta WAL inside its critical
/// section) is never held while an engine lock is acquired, and a
/// commit holding an engine lock may briefly take the router to read
/// a map — so `router → meta` and `engine → router` are the only
/// nestings, and they cannot deadlock.
pub struct ShardedWriteHub {
    pub(crate) router: Mutex<ShardRouter>,
    pub(crate) hubs: Vec<WriteHub>,
    pub(crate) meta: Mutex<Wal>,
    pub(crate) rebuilds: Mutex<Vec<Option<JoinHandle<IndexBundle>>>>,
}

impl ShardedWriteHub {
    /// Runs `f` with exclusive access to shard `s`'s engine (the
    /// sharded analogue of [`WriteHub::with_engine`]).
    pub fn with_engine<T>(&self, s: usize, f: impl FnOnce(&mut Engine) -> T) -> T {
        self.hubs[s].with_engine(f)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.hubs.len()
    }

    /// A point-in-time copy of the router (owner table, grown tails,
    /// live cut lists) for inspection and verification.
    pub fn router_snapshot(&self) -> ShardRouter {
        self.router
            .lock()
            .unwrap_or_else(bgi_check::sync::PoisonError::into_inner)
            .clone()
    }
}

/// Why a sharded deployment failed to boot.
#[derive(Debug)]
pub enum ShardedBootError {
    /// The sharded store failed (plan, generations, or meta WAL).
    Store(bgi_shard::ShardStoreError),
    /// A shard's WAL replay failed.
    Ingest(IngestError),
    /// A shard's recovered bundle failed snapshot admission.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ShardedBootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedBootError::Store(e) => write!(f, "sharded store: {e}"),
            ShardedBootError::Ingest(e) => write!(f, "shard WAL replay: {e}"),
            ShardedBootError::Snapshot(e) => write!(f, "shard snapshot refused: {e}"),
        }
    }
}

impl std::error::Error for ShardedBootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedBootError::Store(e) => Some(e),
            ShardedBootError::Ingest(e) => Some(e),
            ShardedBootError::Snapshot(e) => Some(e),
        }
    }
}

/// Boots a sharded deployment from disk: loads every shard's latest
/// generation, replays each shard's WAL on top, replays the meta WAL
/// into a fresh router (recovering global numbering and live cuts),
/// reconciles the router against what the engines actually recovered,
/// and assembles the serving snapshot from the *engines'* bundles
/// (post-replay state, not the on-disk generation).
///
/// Returns the snapshot, the write hub, and the per-shard replayed
/// update counts.
pub fn boot_sharded(
    store: &ShardedStore,
    engine_config: EngineConfig,
    scatter_threads: usize,
) -> Result<(Arc<ShardedSnapshot>, ShardedWriteHub, Vec<usize>), ShardedBootError> {
    let plan = Arc::new(store.plan().clone());
    let loaded = store.load_all().map_err(ShardedBootError::Store)?;
    let mut engines = Vec::with_capacity(loaded.len());
    let mut replayed = Vec::with_capacity(loaded.len());
    for (s, (_generation, bundle)) in loaded.into_iter().enumerate() {
        let (engine, n) = Engine::with_wal(bundle, engine_config, store.store(s))
            .map_err(ShardedBootError::Ingest)?;
        engines.push(engine);
        replayed.push(n);
    }
    let alphabet = engines
        .first()
        .map_or(0, |e| e.bundle().index.ontology().num_labels());
    let mut router = ShardRouter::new(Arc::clone(&plan), alphabet);
    let (meta, meta_batches) = store
        .meta_wal(Failpoints::disabled())
        .map_err(ShardedBootError::Store)?;
    router.replay_meta(&meta_batches);
    let engine_lens: Vec<usize> = engines
        .iter()
        .map(|e| e.bundle().index.graph_at(0).num_vertices())
        .collect();
    router.reconcile(&engine_lens);
    let bundles: Vec<IndexBundle> = engines.iter().map(|e| e.bundle().clone()).collect();
    let maps: Vec<Vec<VId>> = (0..engines.len()).map(|s| router.map(s)).collect();
    let snapshot = Arc::new(
        ShardedSnapshot::from_bundles(plan, bundles, maps, scatter_threads)
            .map_err(ShardedBootError::Snapshot)?,
    );
    let num_shards = engines.len();
    let hub = ShardedWriteHub {
        router: Mutex::new(router),
        hubs: engines.into_iter().map(WriteHub::new).collect(),
        meta: Mutex::new(meta),
        rebuilds: Mutex::new((0..num_shards).map(|_| None).collect()),
    };
    Ok((snapshot, hub, replayed))
}

/// Builds the serving snapshot for a freshly built (not yet updated)
/// sharded deployment: plan universes are the id maps.
pub fn snapshot_from_build(
    plan: Arc<ShardPlan>,
    bundles: Vec<IndexBundle>,
    scatter_threads: usize,
) -> Result<Arc<ShardedSnapshot>, SnapshotError> {
    let maps: Vec<Vec<VId>> = (0..plan.num_shards())
        .map(|s| plan.universe(s).to_vec())
        .collect();
    Ok(Arc::new(ShardedSnapshot::from_bundles(
        plan,
        bundles,
        maps,
        scatter_threads,
    )?))
}
