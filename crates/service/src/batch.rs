//! Closed-loop batch driver.
//!
//! [`run_batch`] replays a workload through a [`Service`] from
//! `clients` concurrent threads, each submitting its next request only
//! after the previous one answered (a classic closed loop). Shed
//! submissions ([`QueryError::Overloaded`]) are retried with capped
//! exponential backoff seeded from the server's `retry_after_hint`,
//! jittered per client so a herd of shed clients doesn't re-stampede
//! the queue in lockstep — back-pressure slows the batch down, it
//! never loses queries — so a clean run reports zero failures by
//! construction.
//!
//! With `repeat > 1` the workload is replayed that many times; repeats
//! re-ask identical (normalized) queries, so they land in the answer
//! cache and the report's `cache_hits` climbs.

use crate::request::{QueryError, QueryRequest};
use crate::service::Service;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a batch run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Requests issued (workload size × repeats).
    pub total: u64,
    /// Requests answered with answers.
    pub served: u64,
    /// Served requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that hit their deadline.
    pub timeouts: u64,
    /// Requests refused for any other reason.
    pub failed: u64,
    /// Wall-clock time for the whole batch, in microseconds.
    pub wall_us: u64,
}

impl BatchReport {
    /// Wall-clock duration of the batch.
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.wall_us)
    }

    /// Served queries per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.served as f64 / (self.wall_us as f64 / 1e6)
        }
    }
}

/// Replays `requests` `repeat` times through `service` from `clients`
/// closed-loop threads.
pub fn run_batch(
    service: &Service,
    requests: &[QueryRequest],
    repeat: usize,
    clients: usize,
) -> BatchReport {
    if requests.is_empty() || repeat == 0 {
        return BatchReport::default();
    }
    let total = requests.len() * repeat;
    let next = AtomicUsize::new(0);
    let served = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients.max(1) {
            let (next, served, cache_hits, timeouts, failed) =
                (&next, &served, &cache_hits, &timeouts, &failed);
            s.spawn(move || {
                // Per-client xorshift64 jitter stream, seeded by the
                // client index so runs are reproducible and no two
                // clients share a backoff schedule.
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15
                    ^ ((client as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
                loop {
                    // relaxed: pure work-claim ticket; the scope join is
                    // the only synchronization the report needs.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let request = requests[i % requests.len()].clone();
                    let mut shed_attempts: u32 = 0;
                    loop {
                        match service.query(request.clone()) {
                            Ok(resp) => {
                                // relaxed: outcome counters, read only
                                // after the thread scope joins.
                                served.fetch_add(1, Ordering::Relaxed);
                                if resp.cache_hit {
                                    // relaxed: see `served` above.
                                    cache_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(QueryError::Overloaded { retry_after_hint }) => {
                                // Back-pressure: capped exponential
                                // backoff with full jitter off the
                                // server's drain estimate; retry until
                                // admitted, never drop.
                                let base = retry_after_hint.max(Duration::from_micros(50));
                                let ceiling = base.saturating_mul(1 << shed_attempts.min(6));
                                rng ^= rng << 13;
                                rng ^= rng >> 7;
                                rng ^= rng << 17;
                                let unit = (rng >> 11) as f64 / (1u64 << 53) as f64;
                                let wait = ceiling.mul_f64(unit).max(Duration::from_micros(10));
                                std::thread::sleep(wait);
                                shed_attempts += 1;
                            }
                            Err(QueryError::Timeout) => {
                                // relaxed: see `served` above.
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(_) => {
                                // relaxed: see `served` above.
                                failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    BatchReport {
        total: total as u64,
        served: served.into_inner(),
        cache_hits: cache_hits.into_inner(),
        timeouts: timeouts.into_inner(),
        failed: failed.into_inner(),
        wall_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    }
}
