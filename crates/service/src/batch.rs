//! Closed-loop batch driver.
//!
//! [`run_batch`] replays a workload through a [`Service`] from
//! `clients` concurrent threads, each submitting its next request only
//! after the previous one answered (a classic closed loop). Shed
//! submissions ([`QueryError::Overloaded`]) are retried after a yield —
//! back-pressure slows the batch down, it never loses queries — so a
//! clean run reports zero failures by construction.
//!
//! With `repeat > 1` the workload is replayed that many times; repeats
//! re-ask identical (normalized) queries, so they land in the answer
//! cache and the report's `cache_hits` climbs.

use crate::request::{QueryError, QueryRequest};
use crate::service::Service;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a batch run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Requests issued (workload size × repeats).
    pub total: u64,
    /// Requests answered with answers.
    pub served: u64,
    /// Served requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that hit their deadline.
    pub timeouts: u64,
    /// Requests refused for any other reason.
    pub failed: u64,
    /// Wall-clock time for the whole batch, in microseconds.
    pub wall_us: u64,
}

impl BatchReport {
    /// Wall-clock duration of the batch.
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.wall_us)
    }

    /// Served queries per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.served as f64 / (self.wall_us as f64 / 1e6)
        }
    }
}

/// Replays `requests` `repeat` times through `service` from `clients`
/// closed-loop threads.
pub fn run_batch(
    service: &Service,
    requests: &[QueryRequest],
    repeat: usize,
    clients: usize,
) -> BatchReport {
    if requests.is_empty() || repeat == 0 {
        return BatchReport::default();
    }
    let total = requests.len() * repeat;
    let next = AtomicUsize::new(0);
    let served = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients.max(1) {
            s.spawn(|| loop {
                // relaxed: pure work-claim ticket; the scope join is the
                // only synchronization the report needs.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let request = requests[i % requests.len()].clone();
                loop {
                    match service.query(request.clone()) {
                        Ok(resp) => {
                            // relaxed: outcome counters, read only after
                            // the thread scope joins.
                            served.fetch_add(1, Ordering::Relaxed);
                            if resp.cache_hit {
                                // relaxed: see `served` above.
                                cache_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            break;
                        }
                        Err(QueryError::Overloaded) => {
                            // Back-pressure: yield and retry, never drop.
                            std::thread::yield_now();
                        }
                        Err(QueryError::Timeout) => {
                            // relaxed: see `served` above.
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(_) => {
                            // relaxed: see `served` above.
                            failed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    BatchReport {
        total: total as u64,
        served: served.into_inner(),
        cache_hits: cache_hits.into_inner(),
        timeouts: timeouts.into_inner(),
        failed: failed.into_inner(),
        wall_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    }
}
