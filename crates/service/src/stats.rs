//! Lock-free service accounting.
//!
//! Workers record every outcome into atomic counters plus a
//! power-of-two-bucket latency histogram (microsecond resolution). No
//! mutex sits on the hot path; [`StatsRegistry::snapshot`] assembles a
//! consistent-enough [`ServiceStats`] view on demand, including
//! p50/p95/p99 estimates read off the histogram.

use crate::request::Semantics;
use bgi_check::sync::atomic::{AtomicU64, Ordering};
use bgi_search::Completeness;
use std::time::Duration;

/// Bumps a monotonic event counter. Every registry counter funnels
/// through here so the memory-ordering choice lives in exactly one
/// place.
fn bump(counter: &AtomicU64) {
    // relaxed: independent monotonic counters; no data is published
    // through them and snapshot() reads are advisory.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Reads an event counter for a point-in-time snapshot.
fn read(counter: &AtomicU64) -> u64 {
    // relaxed: advisory snapshot read of an independent counter.
    counter.load(Ordering::Relaxed)
}

/// Histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1)) µs`, except bucket 0 which also holds sub-µs
/// samples and the last bucket which is unbounded above. 40 buckets
/// reach ~2^39 µs ≈ 6.4 days — effectively unbounded for a query.
const BUCKETS: usize = 40;

/// Live counters shared by all workers.
pub struct StatsRegistry {
    served: AtomicU64,
    per_semantics: [AtomicU64; 3],
    timeouts: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_invalid: AtomicU64,
    fallbacks: AtomicU64,
    coalesced: AtomicU64,
    index_swaps: AtomicU64,
    reloads: AtomicU64,
    reload_rollbacks: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_rebuilds: AtomicU64,
    ingest_rollbacks: AtomicU64,
    anytime_responses: AtomicU64,
    degraded_budget_requests: AtomicU64,
    latency_us: [AtomicU64; BUCKETS],
    /// Optimality-gap histogram for `Anytime` responses: bucket `i`
    /// counts reported bounds in `[2^i, 2^(i+1))` (bucket 0 includes
    /// bound 0 — provably optimal despite interruption).
    bound_gap: [AtomicU64; BUCKETS],
    /// Per-shard scatter legs (empty on monolithic deployments).
    shards: Vec<ShardLane>,
}

/// Per-shard scatter-leg counters: one lane per shard, so the final
/// stats flush can report each shard's query count and tail latency
/// instead of only aggregate totals.
struct ShardLane {
    queries: AtomicU64,
    sheds: AtomicU64,
    latency_us: [AtomicU64; BUCKETS],
}

impl ShardLane {
    fn new() -> ShardLane {
        ShardLane {
            queries: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry::new()
    }
}

impl StatsRegistry {
    /// A zeroed registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry {
            served: AtomicU64::new(0),
            per_semantics: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            timeouts: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            index_swaps: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_rollbacks: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            ingest_rebuilds: AtomicU64::new(0),
            ingest_rollbacks: AtomicU64::new(0),
            anytime_responses: AtomicU64::new(0),
            degraded_budget_requests: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            bound_gap: std::array::from_fn(|_| AtomicU64::new(0)),
            shards: Vec::new(),
        }
    }

    /// A zeroed registry with `shards` per-shard lanes (sharded
    /// deployments; monolithic services use [`StatsRegistry::new`]).
    pub fn with_shards(shards: usize) -> StatsRegistry {
        let mut r = StatsRegistry::new();
        r.shards = (0..shards).map(|_| ShardLane::new()).collect();
        r
    }

    /// Records one scatter leg against shard `s`: its execution
    /// latency, and whether the leg was shed (its partial result
    /// dropped because the budget expired before the leg finished).
    /// No-op when `s` has no lane.
    pub fn record_shard_leg(&self, s: usize, latency: Duration, shed: bool) {
        let Some(lane) = self.shards.get(s) else {
            return;
        };
        bump(&lane.queries);
        if shed {
            bump(&lane.sheds);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        bump(&lane.latency_us[Self::bucket(us)]);
    }

    /// Records one successfully served query.
    pub fn record_served(
        &self,
        semantics: Semantics,
        latency: Duration,
        fell_back: bool,
        completeness: Completeness,
    ) {
        bump(&self.served);
        bump(&self.per_semantics[semantics.index()]);
        if fell_back {
            bump(&self.fallbacks);
        }
        if !completeness.is_exact() {
            bump(&self.anytime_responses);
        }
        if let Completeness::Anytime { bound } = completeness {
            bump(&self.bound_gap[Self::bucket(bound)]);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        bump(&self.latency_us[Self::bucket(us)]);
    }

    /// Records a request whose budget was shrunk by the degradation
    /// ladder under sustained admission-queue pressure.
    pub fn record_degraded_budget(&self) {
        bump(&self.degraded_budget_requests);
    }

    /// Records a deadline expiry (queued or mid-execution).
    pub fn record_timeout(&self) {
        bump(&self.timeouts);
    }

    /// Records a shed submission (admission queue full).
    pub fn record_overloaded(&self) {
        bump(&self.rejected_overload);
    }

    /// Records a request refused for being malformed (empty keyword
    /// set, bad layer, merged keywords).
    pub fn record_invalid(&self) {
        bump(&self.rejected_invalid);
    }

    /// Records a query answered from cache after waiting out another
    /// worker's in-flight computation of the same key.
    pub fn record_coalesced(&self) {
        bump(&self.coalesced);
    }

    /// Records an index snapshot swap.
    pub fn record_swap(&self) {
        bump(&self.index_swaps);
    }

    /// Records a successful reload from disk (which also counts as a
    /// swap, recorded separately by the swap itself).
    pub fn record_reload(&self) {
        bump(&self.reloads);
    }

    /// Records a reload attempt that failed and rolled back to the
    /// running snapshot — the service is serving, but possibly from an
    /// older index than the operator intended.
    pub fn record_reload_rollback(&self) {
        bump(&self.reload_rollbacks);
    }

    /// Records one successfully applied (and swapped-in) update batch.
    pub fn record_ingest_batch(&self) {
        bump(&self.ingest_batches);
    }

    /// Records a drift-triggered full rebuild performed on the write
    /// path.
    pub fn record_ingest_rebuild(&self) {
        bump(&self.ingest_rebuilds);
    }

    /// Records an update batch whose resulting snapshot was refused —
    /// the previous snapshot keeps serving.
    pub fn record_ingest_rollback(&self) {
        bump(&self.ingest_rollbacks);
    }

    fn bucket(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Representative latency for bucket `i`: its geometric-ish
    /// midpoint, `1.5 * 2^i` µs.
    fn bucket_mid_us(i: usize) -> u64 {
        (1u64 << i) + (1u64 << i) / 2
    }

    /// Histogram percentile: the representative latency of the bucket
    /// holding the `p`-quantile sample.
    fn hist_pct(hist: &[u64], p: f64) -> Duration {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        // ceil(total * p) samples must lie at or below the answer.
        let rank = ((total as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Duration::from_micros(Self::bucket_mid_us(i));
            }
        }
        Duration::from_micros(Self::bucket_mid_us(BUCKETS - 1))
    }

    /// A point-in-time view of everything recorded so far.
    pub fn snapshot(&self) -> ServiceStats {
        let hist: Vec<u64> = self.latency_us.iter().map(read).collect();
        let pct = |p: f64| Self::hist_pct(&hist, p);
        let per_shard = self
            .shards
            .iter()
            .map(|lane| {
                let lane_hist: Vec<u64> = lane.latency_us.iter().map(read).collect();
                ShardLaneStats {
                    queries: read(&lane.queries),
                    sheds: read(&lane.sheds),
                    p95: Self::hist_pct(&lane_hist, 0.95),
                    p99: Self::hist_pct(&lane_hist, 0.99),
                }
            })
            .collect();
        ServiceStats {
            per_shard,
            served: read(&self.served),
            per_semantics: [
                read(&self.per_semantics[0]),
                read(&self.per_semantics[1]),
                read(&self.per_semantics[2]),
            ],
            timeouts: read(&self.timeouts),
            rejected_overload: read(&self.rejected_overload),
            rejected_invalid: read(&self.rejected_invalid),
            fallbacks: read(&self.fallbacks),
            coalesced: read(&self.coalesced),
            index_swaps: read(&self.index_swaps),
            reloads: read(&self.reloads),
            reload_rollbacks: read(&self.reload_rollbacks),
            ingest_batches: read(&self.ingest_batches),
            ingest_rebuilds: read(&self.ingest_rebuilds),
            ingest_rollbacks: read(&self.ingest_rollbacks),
            anytime_responses: read(&self.anytime_responses),
            degraded_budget_requests: read(&self.degraded_budget_requests),
            bound_gap: self.bound_gap.iter().map(read).collect(),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            cache: crate::cache::CacheStats::default(),
        }
    }
}

/// One shard's scatter-leg health at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLaneStats {
    /// Scatter legs executed against this shard.
    pub queries: u64,
    /// Legs whose partial result was dropped at merge (budget expired
    /// before the leg finished).
    pub sheds: u64,
    /// 95th-percentile leg latency (histogram estimate).
    pub p95: Duration,
    /// 99th-percentile leg latency (histogram estimate).
    pub p99: Duration,
}

/// A point-in-time snapshot of service health.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Per-shard scatter-leg stats, indexed by shard id; empty on
    /// monolithic deployments.
    pub per_shard: Vec<ShardLaneStats>,
    /// Queries answered (cache hits included).
    pub served: u64,
    /// Served counts by [`Semantics::index`] order: bkws, rkws, dkws.
    pub per_semantics: [u64; 3],
    /// Requests that hit their deadline.
    pub timeouts: u64,
    /// Requests shed at admission.
    pub rejected_overload: u64,
    /// Requests refused as malformed.
    pub rejected_invalid: u64,
    /// Served queries whose summary-layer attempt fell back to layer 0.
    pub fallbacks: u64,
    /// Served queries that coalesced onto another worker's in-flight
    /// computation of the same key instead of recomputing.
    pub coalesced: u64,
    /// Index snapshot swaps performed.
    pub index_swaps: u64,
    /// Successful reloads from disk.
    pub reloads: u64,
    /// Reload attempts that failed and kept the running snapshot — the
    /// degraded-but-serving signal an operator watches for.
    pub reload_rollbacks: u64,
    /// Update batches applied and swapped in.
    pub ingest_batches: u64,
    /// Drift-triggered full rebuilds performed on the write path.
    pub ingest_rebuilds: u64,
    /// Update batches whose snapshot was refused (previous snapshot
    /// kept serving) — the write-path analogue of `reload_rollbacks`.
    pub ingest_rollbacks: u64,
    /// Served responses carrying best-effort (non-exact) answers — the
    /// queries that would have been empty timeouts without anytime
    /// search.
    pub anytime_responses: u64,
    /// Requests whose budget was shrunk by the degradation ladder under
    /// sustained queue pressure.
    pub degraded_budget_requests: u64,
    /// Optimality-gap histogram over `Anytime` responses: bucket `i`
    /// counts reported bounds in `[2^i, 2^(i+1))`, bucket 0 includes a
    /// zero gap. Empty before any anytime response is recorded.
    pub bound_gap: Vec<u64>,
    /// Median served latency (histogram estimate).
    pub p50: Duration,
    /// 95th-percentile served latency (histogram estimate).
    pub p95: Duration,
    /// 99th-percentile served latency (histogram estimate).
    pub p99: Duration,
    /// Answer-cache counters at snapshot time.
    pub cache: crate::cache::CacheStats,
}

impl ServiceStats {
    /// Percentile estimate over the recorded `Anytime` optimality gaps
    /// (bucket representative values); `None` before any anytime
    /// response carried a bound.
    pub fn bound_gap_pct(&self, p: f64) -> Option<u64> {
        let total: u64 = self.bound_gap.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.bound_gap.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(StatsRegistry::bucket_mid_us(i));
            }
        }
        Some(StatsRegistry::bucket_mid_us(self.bound_gap.len() - 1))
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {} (bkws {}, rkws {}, dkws {}), fallbacks {}",
            self.served,
            self.per_semantics[0],
            self.per_semantics[1],
            self.per_semantics[2],
            self.fallbacks
        )?;
        writeln!(
            f,
            "anytime {} (degraded budgets {}), bound gap p50 {} p95 {}",
            self.anytime_responses,
            self.degraded_budget_requests,
            self.bound_gap_pct(0.50).unwrap_or(0),
            self.bound_gap_pct(0.95).unwrap_or(0)
        )?;
        writeln!(
            f,
            "latency p50 {:?}  p95 {:?}  p99 {:?}",
            self.p50, self.p95, self.p99
        )?;
        writeln!(
            f,
            "timeouts {}, shed {}, invalid {}, index swaps {}, reloads {}, rollbacks {}",
            self.timeouts,
            self.rejected_overload,
            self.rejected_invalid,
            self.index_swaps,
            self.reloads,
            self.reload_rollbacks
        )?;
        writeln!(
            f,
            "ingest: {} batches, {} rebuilds, {} rollbacks",
            self.ingest_batches, self.ingest_rebuilds, self.ingest_rollbacks
        )?;
        write!(
            f,
            "cache: {} entries, {} hits / {} misses ({:.1}% hit rate), {} coalesced, \
             {} evicted, {} invalidated",
            self.cache.entries,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.coalesced,
            self.cache.evictions,
            self.cache.invalidated
        )?;
        for (s, lane) in self.per_shard.iter().enumerate() {
            write!(
                f,
                "\nshard {s}: {} queries, p95 {:?}, p99 {:?}, {} shed",
                lane.queries, lane.p95, lane.p99, lane.sheds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(StatsRegistry::bucket(0), 0);
        assert_eq!(StatsRegistry::bucket(1), 0);
        assert_eq!(StatsRegistry::bucket(2), 1);
        assert_eq!(StatsRegistry::bucket(3), 1);
        assert_eq!(StatsRegistry::bucket(4), 2);
        assert_eq!(StatsRegistry::bucket(1024), 10);
        assert_eq!(StatsRegistry::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let r = StatsRegistry::new();
        // 90 fast queries (~100 µs), 10 slow (~100 ms).
        for _ in 0..90 {
            r.record_served(
                Semantics::Bkws,
                Duration::from_micros(100),
                false,
                Completeness::Exact,
            );
        }
        for _ in 0..10 {
            r.record_served(
                Semantics::Rkws,
                Duration::from_millis(100),
                false,
                Completeness::Exact,
            );
        }
        let s = r.snapshot();
        assert_eq!(s.served, 100);
        assert_eq!(s.per_semantics, [90, 10, 0]);
        assert!(s.p50 < Duration::from_millis(1), "p50 {:?}", s.p50);
        assert!(s.p95 > Duration::from_millis(10), "p95 {:?}", s.p95);
        assert!(s.p99 >= s.p95);
    }

    #[test]
    fn empty_registry_snapshot_is_zero() {
        let s = StatsRegistry::new().snapshot();
        assert_eq!(s.served, 0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn shard_lanes_report_per_shard() {
        let r = StatsRegistry::with_shards(3);
        r.record_shard_leg(0, Duration::from_micros(80), false);
        r.record_shard_leg(0, Duration::from_micros(90), false);
        r.record_shard_leg(2, Duration::from_millis(5), true);
        // Out-of-range shard ids are ignored, not panicked on.
        r.record_shard_leg(9, Duration::from_micros(1), false);
        let s = r.snapshot();
        assert_eq!(s.per_shard.len(), 3);
        assert_eq!(s.per_shard[0].queries, 2);
        assert_eq!(s.per_shard[0].sheds, 0);
        assert_eq!(s.per_shard[1].queries, 0);
        assert_eq!(s.per_shard[2].queries, 1);
        assert_eq!(s.per_shard[2].sheds, 1);
        assert!(s.per_shard[2].p95 >= Duration::from_millis(4));
        let text = s.to_string();
        assert!(text.contains("shard 0:"), "{text}");
        assert!(text.contains("shard 2:"), "{text}");
        // Monolithic registries print no shard lines.
        assert!(!StatsRegistry::new()
            .snapshot()
            .to_string()
            .contains("shard 0:"));
    }

    #[test]
    fn display_mentions_key_fields() {
        let r = StatsRegistry::new();
        r.record_served(
            Semantics::Dkws,
            Duration::from_micros(50),
            true,
            Completeness::Anytime { bound: 6 },
        );
        r.record_timeout();
        let text = r.snapshot().to_string();
        assert!(text.contains("served 1"));
        assert!(text.contains("timeouts 1"));
        assert!(text.contains("hit rate"));
    }
}
