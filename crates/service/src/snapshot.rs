//! The immutable unit the service shares across workers: a verified
//! BiG-index plus every plugged-in algorithm's per-layer index.
//!
//! Algo. 2 is read-only over the hierarchy, so one `Arc<IndexSnapshot>`
//! serves any number of concurrent queries without locking. Snapshot
//! construction runs `bgi_verify::check_index` first and *refuses* a
//! hierarchy whose invariants (Defs. 2.1/2.2, Prop. 4.1) don't hold —
//! a serving process never answers from a broken index.

use crate::request::{QueryError, QueryRequest, Semantics};
use bgi_search::banks::BanksIndex;
use bgi_search::blinks::{BlinksIndex, BlinksParams};
use bgi_search::rclique::RCliqueIndex;
use bgi_search::{
    AnswerGraph, Banks, Blinks, Budget, Completeness, Interrupted, KeywordQuery, KeywordSearch,
    RClique,
};
use big_index::eval::eval_at_layer_anytime;
use big_index::query_gen::{keywords_stay_distinct, optimal_layer};
use big_index::{BiGIndex, EvalOptions, RealizerKind};

/// Why a snapshot could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// `bgi_verify::check_index` found invariant violations; the index
    /// must not be served.
    DirtyIndex {
        /// Total violations across all checked invariants.
        violations: usize,
    },
    /// A deserialized bundle's per-layer index vectors don't cover the
    /// hierarchy (`h + 1` layers each).
    LayerMismatch {
        /// Which per-layer vector is wrong (`"banks"`, `"blinks"`,
        /// `"rclique"`).
        what: &'static str,
        /// Layers the hierarchy has (`h + 1`).
        expected: usize,
        /// Layers the vector actually covers.
        got: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::DirtyIndex { violations } => write!(
                f,
                "index failed verification with {violations} invariant violation(s); \
                 refusing to serve it"
            ),
            SnapshotError::LayerMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "bundle's {what} indexes cover {got} layer(s) but the hierarchy has \
                 {expected}; refusing to serve it"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Construction-time knobs for a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// BLINKS index parameters (block size, `τ_prune`).
    pub blinks: BlinksParams,
    /// r-clique algorithm parameters (radius, memory budget).
    pub rclique: RClique,
    /// Evaluation options for Algo. 2. The realizer is overridden per
    /// semantics at query time (`StructuralThenDistance` for `dkws`).
    pub eval: EvalOptions,
    /// Worker threads for the per-layer index builds (each of the
    /// `3 · (h + 1)` builds is independent). `1` is the serial build;
    /// every thread count produces an identical snapshot.
    pub threads: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            blinks: BlinksParams::default(),
            rclique: RClique::default(),
            eval: EvalOptions::default(),
            threads: 1,
        }
    }
}

/// The outcome of executing one request against a snapshot.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Final answers, ranked best-first.
    pub answers: Vec<AnswerGraph>,
    /// The layer the query was evaluated at.
    pub layer: usize,
    /// True if the summary-layer attempt realized nothing and the
    /// query was re-run on the data graph.
    pub fell_back: bool,
    /// Whether the run finished exactly or was cut short by its budget
    /// and returned best-effort answers (see [`Completeness`]).
    pub completeness: Completeness,
}

/// A verified, immutable BiG-index with all three semantics' per-layer
/// indexes prebuilt — the paper's "boosted" setting (Sec. 5), where
/// query time never includes index construction.
pub struct IndexSnapshot {
    index: BiGIndex,
    banks: Vec<BanksIndex>,
    blinks_algo: Blinks,
    blinks: Vec<BlinksIndex>,
    rclique_algo: RClique,
    rclique: Vec<RCliqueIndex>,
    eval: EvalOptions,
}

impl IndexSnapshot {
    /// Verifies `index` and prebuilds every algorithm's index on every
    /// layer. Fails with [`SnapshotError::DirtyIndex`] when
    /// `bgi_verify::check_index` reports any violation.
    pub fn build(index: BiGIndex, config: SnapshotConfig) -> Result<IndexSnapshot, SnapshotError> {
        let report = index.verify();
        if !report.is_clean() {
            return Err(SnapshotError::DirtyIndex {
                violations: report.total_violations(),
            });
        }
        let blinks_algo = Blinks::new(config.blinks);
        let rclique_algo = config.rclique;
        // All 3·(h+1) per-layer builds are independent reads of the
        // verified hierarchy; fan them out (bit-identical to serial for
        // any `config.threads`).
        let (banks, blinks, rclique) =
            bgi_store::build_layer_indexes(&index, config.blinks, config.rclique, config.threads);
        Ok(IndexSnapshot {
            index,
            banks,
            blinks_algo,
            blinks,
            rclique_algo,
            rclique,
            eval: config.eval,
        })
    }

    /// [`IndexSnapshot::build`] with default parameters.
    pub fn build_default(index: BiGIndex) -> Result<IndexSnapshot, SnapshotError> {
        Self::build(index, SnapshotConfig::default())
    }

    /// Assembles a snapshot from a deserialized [`bgi_store::IndexBundle`]
    /// *without rebuilding anything* — the prebuilt per-layer indexes are
    /// adopted as-is, which is what makes `load-index` skip hierarchy
    /// construction entirely.
    ///
    /// The hierarchy is still re-verified here (the store verifies on
    /// load, but a snapshot never trusts its producer), and the bundle's
    /// per-layer vectors must cover every layer `0..=h`.
    pub fn from_bundle(bundle: bgi_store::IndexBundle) -> Result<IndexSnapshot, SnapshotError> {
        let report = bundle.index.verify();
        if !report.is_clean() {
            return Err(SnapshotError::DirtyIndex {
                violations: report.total_violations(),
            });
        }
        let expected = bundle.index.num_layers() + 1;
        let lengths = [
            ("banks", bundle.banks.len()),
            ("blinks", bundle.blinks.len()),
            ("rclique", bundle.rclique.len()),
        ];
        for (what, got) in lengths {
            if got != expected {
                return Err(SnapshotError::LayerMismatch {
                    what,
                    expected,
                    got,
                });
            }
        }
        Ok(IndexSnapshot {
            index: bundle.index,
            banks: bundle.banks,
            blinks_algo: Blinks::new(bundle.blinks_params),
            blinks: bundle.blinks,
            rclique_algo: bundle.rclique_params,
            rclique: bundle.rclique,
            eval: bundle.eval,
        })
    }

    /// The underlying BiG-index.
    pub fn index(&self) -> &BiGIndex {
        &self.index
    }

    /// Number of summary layers (`h`; the hierarchy is `0..=h`).
    pub fn num_layers(&self) -> usize {
        self.index.num_layers()
    }

    /// Executes one request under `budget`. Validation errors
    /// ([`QueryError::EmptyQuery`], [`QueryError::InvalidLayer`],
    /// [`QueryError::MergedKeywords`]) are typed. Budget exhaustion is
    /// *anytime*: whenever the search found at least one answer, the
    /// outcome carries it with a non-exact [`Completeness`] marker;
    /// only a run interrupted before producing anything maps to
    /// [`QueryError::Timeout`].
    pub fn execute(&self, req: &QueryRequest, budget: &Budget) -> Result<ExecOutcome, QueryError> {
        let query = KeywordQuery::new(req.keywords.clone(), req.dmax);
        if query.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut opts = self.eval;
        if req.semantics == Semantics::Dkws {
            // boost-dkws (Sec. 5.2): structural realization first, with
            // distance verification as the per-answer fallback.
            opts.realizer = RealizerKind::StructuralThenDistance;
        }
        // Layer override, validated; otherwise the Def. 4.1 chooser
        // (which only considers layers keeping keywords distinct).
        let explicit = req.layer.is_some();
        let m = match req.layer {
            Some(m) => {
                if m > self.index.num_layers() {
                    return Err(QueryError::InvalidLayer {
                        requested: m,
                        num_layers: self.index.num_layers(),
                    });
                }
                if !keywords_stay_distinct(&self.index, &query, m) {
                    return Err(QueryError::MergedKeywords { layer: m });
                }
                m
            }
            None => optimal_layer(&self.index, &query, opts.beta),
        };
        let run = match req.semantics {
            Semantics::Bkws => self.run(
                &Banks,
                &self.banks,
                &query,
                req.k,
                m,
                explicit,
                &opts,
                budget,
            ),
            Semantics::Rkws => self.run(
                &self.blinks_algo,
                &self.blinks,
                &query,
                req.k,
                m,
                explicit,
                &opts,
                budget,
            ),
            Semantics::Dkws => self.run(
                &self.rclique_algo,
                &self.rclique,
                &query,
                req.k,
                m,
                explicit,
                &opts,
                budget,
            ),
        };
        let outcome = run.map_err(|Interrupted| QueryError::Timeout)?;
        // The client's floor for degraded results: a best-effort set
        // smaller than `min_results` is worth no more than a timeout to
        // them. Exact results are never filtered — fewer than
        // `min_results` answers may be all that exist.
        if !outcome.completeness.is_exact() && outcome.answers.len() < req.min_results {
            return Err(QueryError::Timeout);
        }
        Ok(outcome)
    }

    /// Algo. 2 at layer `m` with the `Boosted::query` empty-answer
    /// fallback: when the layer was *chosen* (not requested) and
    /// realizes nothing, retry on the data graph so no baseline-findable
    /// answer is lost to distortion. An explicit layer override skips
    /// the fallback — layer sweeps want the layer they asked for.
    #[allow(clippy::too_many_arguments)]
    fn run<F: KeywordSearch>(
        &self,
        algo: &F,
        layer_indexes: &[F::Index],
        query: &KeywordQuery,
        k: usize,
        m: usize,
        explicit_layer: bool,
        opts: &EvalOptions,
        budget: &Budget,
    ) -> Result<ExecOutcome, Interrupted> {
        let attempt = eval_at_layer_anytime(
            &self.index,
            algo,
            &layer_indexes[m],
            query,
            k,
            m,
            opts,
            budget,
        )?;
        // A best-effort attempt never falls back: its budget is spent,
        // and best-effort answers beat an empty retry.
        if m == 0
            || explicit_layer
            || !attempt.answers.is_empty()
            || !attempt.completeness.is_exact()
        {
            return Ok(ExecOutcome {
                answers: attempt.answers,
                layer: attempt.layer,
                fell_back: false,
                completeness: attempt.completeness,
            });
        }
        let fallback = eval_at_layer_anytime(
            &self.index,
            algo,
            &layer_indexes[0],
            query,
            k,
            0,
            opts,
            budget,
        )?;
        Ok(ExecOutcome {
            answers: fallback.answers,
            layer: 0,
            fell_back: true,
            completeness: fallback.completeness,
        })
    }
}
