//! Sharded LRU answer cache.
//!
//! Keyword queries are heavily repeated in serving workloads, and
//! BiG-index answers are immutable for a given snapshot — a perfect
//! cache target. The key is the *normalized* request (sorted deduped
//! keyword set, semantics, `k`, layer override, `d_max`); the value is
//! the complete execution outcome behind an `Arc`, so hits clone a
//! pointer, not answer graphs.
//!
//! The map is split into shards, each behind its own mutex, so
//! concurrent workers rarely contend. Recency is tracked by a per-shard
//! logical tick: a hit refreshes the entry's tick, and insertion into a
//! full shard evicts the smallest tick (exact LRU per shard, O(shard
//! capacity) scan on eviction — shards are small by construction).
//!
//! When the served index is swapped the whole cache is invalidated and
//! the *generation* counter bumps; in-flight results computed against
//! the old snapshot carry the old generation and are refused by
//! [`AnswerCache::insert_at`], so a stale answer can never outlive the
//! swap.

use crate::request::{QueryRequest, Semantics};
use crate::snapshot::ExecOutcome;
use bgi_check::sync::atomic::{AtomicU64, Ordering};
use bgi_check::sync::{Mutex, MutexGuard, PoisonError};
use bgi_graph::LabelId;
use rustc_hash::FxHashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::Arc;

/// Bumps a monotonic statistics counter.
fn bump(counter: &AtomicU64, n: u64) {
    // relaxed: independent event counter; nothing is published through
    // it and stats() reads are advisory snapshots.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Reads a statistics counter for a point-in-time snapshot.
fn counter(c: &AtomicU64) -> u64 {
    // relaxed: advisory read of an independent event counter.
    c.load(Ordering::Relaxed)
}

/// The normalized cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    semantics: Semantics,
    /// Sorted, deduplicated keywords — `{a, b}` and `{b, a, b}` are the
    /// same query (Sec. 2 defines `Q` as a set).
    keywords: Vec<LabelId>,
    dmax: u32,
    k: usize,
    layer: Option<usize>,
}

impl CacheKey {
    /// Normalizes a request into its cache key.
    pub fn of(req: &QueryRequest) -> CacheKey {
        let mut keywords = req.keywords.clone();
        keywords.sort_unstable();
        keywords.dedup();
        CacheKey {
            semantics: req.semantics,
            keywords,
            dmax: req.dmax,
            k: req.k,
            layer: req.layer,
        }
    }
}

struct Shard {
    map: FxHashMap<CacheKey, (u64, Arc<ExecOutcome>)>,
    tick: u64,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by LRU on insert.
    pub evictions: u64,
    /// Entries dropped by [`AnswerCache::invalidate_all`] (index swaps).
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded LRU answer cache.
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

impl AnswerCache {
    /// A cache of `shards` shards holding at most `capacity` entries in
    /// total (rounded up to a multiple of the shard count). Zero values
    /// are clamped to 1.
    pub fn new(shards: usize, capacity: usize) -> AnswerCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        AnswerCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: FxHashMap::default(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Number of shards (for tests and sizing).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: &CacheKey) -> usize {
        let hasher = BuildHasherDefault::<rustc_hash::FxHasher>::default();
        (hasher.hash_one(key) as usize) % self.shards.len()
    }

    /// The current cache generation; bumped by every
    /// [`AnswerCache::invalidate_all`]. Read it *before* resolving the
    /// snapshot a result is computed against, and pass it back to
    /// [`AnswerCache::insert_at`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ExecOutcome>> {
        let mut shard = self.lock_shard(self.shard_of(key));
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some((last_used, value)) => {
                *last_used = tick;
                let value = Arc::clone(value);
                drop(shard);
                bump(&self.hits, 1);
                Some(value)
            }
            None => {
                drop(shard);
                bump(&self.misses, 1);
                None
            }
        }
    }

    /// Inserts a result computed while the cache was at `generation`.
    /// If the generation has moved on (the index was swapped while the
    /// query ran), the stale result is silently dropped.
    pub fn insert_at(&self, generation: u64, key: CacheKey, value: Arc<ExecOutcome>) {
        let idx = self.shard_of(&key);
        let mut shard = self.lock_shard(idx);
        // Checked under the shard lock: invalidate_all takes every
        // shard lock before bumping, so a stale writer can't slip in
        // after its shard was cleared.
        if self.generation.load(Ordering::Acquire) != generation {
            return;
        }
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            // Exact LRU within the shard: evict the oldest tick.
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(old_key) = oldest {
                shard.map.remove(&old_key);
                bump(&self.evictions, 1);
            }
        }
        shard.map.insert(key, (tick, value));
    }

    /// Drops every entry and bumps the generation. Called on index
    /// swap: answers from the previous hierarchy must never be served
    /// against the new one.
    pub fn invalidate_all(&self) {
        // Hold all shard locks across the generation bump so in-flight
        // insert_at calls (which check the generation under their shard
        // lock) cannot interleave a stale write.
        let mut guards: Vec<_> = self.shards.iter().map(|s| Self::lock(s)).collect();
        let dropped: usize = guards.iter().map(|g| g.map.len()).sum();
        for g in &mut guards {
            g.map.clear();
        }
        self.generation.fetch_add(1, Ordering::Release);
        drop(guards);
        bump(&self.invalidated, dropped as u64);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: counter(&self.hits),
            misses: counter(&self.misses),
            evictions: counter(&self.evictions),
            invalidated: counter(&self.invalidated),
            entries: self.len(),
        }
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        Self::lock(&self.shards[idx])
    }

    /// Lock a shard, recovering from poisoning: the cache holds plain
    /// data, so a panicking peer cannot leave it logically broken.
    fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kws: &[u32], k: usize) -> CacheKey {
        CacheKey::of(&QueryRequest::new(
            Semantics::Bkws,
            kws.iter().map(|&l| LabelId(l)).collect(),
            3,
            k,
        ))
    }

    fn value(layer: usize) -> Arc<ExecOutcome> {
        Arc::new(ExecOutcome {
            answers: Vec::new(),
            layer,
            fell_back: false,
            completeness: bgi_search::Completeness::Exact,
        })
    }

    #[test]
    fn key_normalizes_keyword_sets() {
        assert_eq!(key(&[2, 1, 2], 5), key(&[1, 2], 5));
        assert_ne!(key(&[1, 2], 5), key(&[1, 2], 6));
    }

    #[test]
    fn hit_after_insert() {
        let c = AnswerCache::new(4, 64);
        let g = c.generation();
        assert!(c.get(&key(&[1], 5)).is_none());
        c.insert_at(g, key(&[1], 5), value(1));
        let got = c.get(&key(&[1], 5));
        assert_eq!(got.map(|v| v.layer), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard, capacity 2, so eviction order is fully observable.
        let c = AnswerCache::new(1, 2);
        let g = c.generation();
        c.insert_at(g, key(&[1], 1), value(0));
        c.insert_at(g, key(&[2], 1), value(0));
        // Touch key 1 so key 2 becomes the LRU.
        assert!(c.get(&key(&[1], 1)).is_some());
        c.insert_at(g, key(&[3], 1), value(0));
        assert!(c.get(&key(&[1], 1)).is_some(), "recently used survives");
        assert!(c.get(&key(&[2], 1)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(&[3], 1)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let c = AnswerCache::new(1, 2);
        let g = c.generation();
        c.insert_at(g, key(&[1], 1), value(0));
        c.insert_at(g, key(&[2], 1), value(0));
        c.insert_at(g, key(&[1], 1), value(7));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(&[1], 1)).map(|v| v.layer), Some(7));
        assert!(c.get(&key(&[2], 1)).is_some());
    }

    #[test]
    fn sharding_spreads_keys() {
        let c = AnswerCache::new(8, 1024);
        let mut used = vec![false; c.num_shards()];
        for i in 0..256 {
            used[c.shard_of(&key(&[i], 5))] = true;
        }
        let populated = used.iter().filter(|&&b| b).count();
        assert!(
            populated >= c.num_shards() / 2,
            "256 distinct keys hit only {populated}/{} shards",
            c.num_shards()
        );
    }

    #[test]
    fn invalidation_drops_everything_and_bumps_generation() {
        let c = AnswerCache::new(4, 64);
        let g = c.generation();
        for i in 0..10 {
            c.insert_at(g, key(&[i], 5), value(0));
        }
        assert_eq!(c.len(), 10);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidated, 10);
        assert_ne!(c.generation(), g);
        // A stale writer (computed against the old generation) is refused.
        c.insert_at(g, key(&[99], 5), value(0));
        assert!(c.is_empty(), "stale insert after invalidation refused");
        // A current writer is accepted.
        c.insert_at(c.generation(), key(&[99], 5), value(0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_counters_lose_no_updates() {
        // Capacity comfortably above the total insert volume (even under
        // hash skew), so no eviction can race the get-after-insert
        // assertion — every miss/hit pair is deterministic.
        let c = std::sync::Arc::new(AnswerCache::new(4, 8192));
        let threads = 8;
        let per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    let g = c.generation();
                    for i in 0..per_thread {
                        let k = key(&[t as u32 * 1000 + i as u32], 5);
                        assert!(c.get(&k).is_none()); // distinct keys: all misses
                        c.insert_at(g, k.clone(), value(0));
                        assert!(c.get(&k).is_some()); // now a hit
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.misses, threads as u64 * per_thread);
        assert_eq!(s.hits, threads as u64 * per_thread);
    }
}
