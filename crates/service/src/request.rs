//! The service's request/response surface.
//!
//! A [`QueryRequest`] names one of the three plugged-in semantics
//! (Sec. 5 of the paper), the keyword set, and per-request knobs:
//! top-`k`, an optional layer override (instead of the Def. 4.1
//! cost-optimal layer), and an optional deadline. Responses carry the
//! final ranked answers plus enough provenance (layer, fallback, cache
//! hit, latency) for clients and benchmarks to reason about them.

use bgi_graph::LabelId;
use bgi_search::{AnswerGraph, Completeness};
use std::time::Duration;

/// Which plugged-in keyword search semantics evaluates the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// `bkws` — backward keyword search (BANKS-style, Sec. 5.1).
    Bkws,
    /// `rkws` — ranked keyword search (BLINKS-style, Sec. 5.1).
    Rkws,
    /// `dkws` — distance-based keyword search (r-clique, Sec. 5.2).
    Dkws,
}

impl Semantics {
    /// All semantics, in stable display order.
    pub const ALL: [Semantics; 3] = [Semantics::Bkws, Semantics::Rkws, Semantics::Dkws];

    /// The wire/CLI name (`bkws` / `rkws` / `dkws`).
    pub fn as_str(self) -> &'static str {
        match self {
            Semantics::Bkws => "bkws",
            Semantics::Rkws => "rkws",
            Semantics::Dkws => "dkws",
        }
    }

    /// Parses a wire/CLI name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Semantics> {
        match s {
            "bkws" => Some(Semantics::Bkws),
            "rkws" => Some(Semantics::Rkws),
            "dkws" => Some(Semantics::Dkws),
            _ => None,
        }
    }

    /// Dense index for per-semantics counters.
    pub fn index(self) -> usize {
        match self {
            Semantics::Bkws => 0,
            Semantics::Rkws => 1,
            Semantics::Dkws => 2,
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One keyword query to serve.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The plugged-in semantics to evaluate with.
    pub semantics: Semantics,
    /// Query keywords (interned labels).
    pub keywords: Vec<LabelId>,
    /// Distance bound `d_max`.
    pub dmax: u32,
    /// Number of answers wanted (top-`k`).
    pub k: usize,
    /// Evaluate at this layer instead of the cost-optimal one.
    pub layer: Option<usize>,
    /// Per-request deadline, measured from *submission* — a request
    /// that waits out its deadline in the admission queue times out
    /// without ever running.
    pub deadline: Option<Duration>,
    /// Per-request *soft* deadline, measured from **execution start**:
    /// queue wait does not burn it, and reaching it does not fail the
    /// query — the search degrades to best-effort answers marked
    /// non-exact in [`QueryResponse::completeness`]. Combines with
    /// `deadline` (whichever expires first drives the budget).
    pub soft_deadline: Option<Duration>,
    /// Minimum acceptable answer count for a *degraded* response: a
    /// best-effort (non-exact) result with fewer answers than this is
    /// reported as [`QueryError::Timeout`] instead. `0` accepts any
    /// non-empty best-effort result. Exact results are never filtered.
    pub min_results: usize,
}

impl QueryRequest {
    /// A request with the common defaults: cost-optimal layer, no
    /// deadline.
    pub fn new(semantics: Semantics, keywords: Vec<LabelId>, dmax: u32, k: usize) -> Self {
        QueryRequest {
            semantics,
            keywords,
            dmax,
            k,
            layer: None,
            deadline: None,
            soft_deadline: None,
            min_results: 0,
        }
    }
}

/// A successfully served query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Final answers, ranked best-first, at most `k`.
    pub answers: Vec<AnswerGraph>,
    /// The layer the query was evaluated at.
    pub layer: usize,
    /// True if a summary-layer attempt produced nothing and the query
    /// was re-evaluated on the data graph.
    pub fell_back: bool,
    /// True if the response came from the answer cache.
    pub cache_hit: bool,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// How complete the answer set is: `Exact` for a full run, a
    /// non-exact marker when the deadline cut the search short and
    /// these are best-effort answers (see [`Completeness`]).
    pub completeness: Completeness,
}

/// Why a query was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The per-request deadline expired (in the queue or mid-execution).
    Timeout,
    /// The admission queue was full; the request was shed, not queued.
    Overloaded {
        /// Server-estimated wait before a retry is likely to be
        /// admitted: current queue drain time from the served-latency
        /// median. Clients should back off at least this long.
        retry_after_hint: Duration,
    },
    /// The service is shutting down.
    Shutdown,
    /// The request carried no keywords.
    EmptyQuery,
    /// The layer override exceeds the hierarchy height.
    InvalidLayer {
        /// The layer the request asked for.
        requested: usize,
        /// Layers available (`0..=num_layers`).
        num_layers: usize,
    },
    /// Two query keywords generalize to one label at the requested
    /// layer (Def. 4.1 condition 1) — the layer cannot evaluate this
    /// query.
    MergedKeywords {
        /// The offending layer.
        layer: usize,
    },
    /// Sharded deployments only: the request's `d_max` exceeds the
    /// partition's ceiling, so shard halos cannot guarantee every
    /// answer is fully visible to some shard. Lower `d_max` or rebuild
    /// the shards with a larger ceiling.
    DmaxExceedsPartition {
        /// The `d_max` the request asked for.
        requested: u32,
        /// The largest `d_max` the partition answers exactly.
        ceiling: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Timeout => f.write_str("deadline exceeded"),
            QueryError::Overloaded { retry_after_hint } => write!(
                f,
                "admission queue full; request shed (retry after ~{retry_after_hint:?})"
            ),
            QueryError::Shutdown => f.write_str("service shutting down"),
            QueryError::EmptyQuery => f.write_str("query has no keywords"),
            QueryError::InvalidLayer {
                requested,
                num_layers,
            } => write!(
                f,
                "layer {requested} out of range (index has layers 0..={num_layers})"
            ),
            QueryError::MergedKeywords { layer } => write!(
                f,
                "query keywords merge at layer {layer} (Def. 4.1); \
                 use a lower layer or the cost-optimal choice"
            ),
            QueryError::DmaxExceedsPartition { requested, ceiling } => write!(
                f,
                "d_max {requested} exceeds the shard partition's ceiling {ceiling}; \
                 lower d_max or rebuild with a larger --dmax-ceiling"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_roundtrip() {
        for s in Semantics::ALL {
            assert_eq!(Semantics::parse(s.as_str()), Some(s));
        }
        assert_eq!(Semantics::parse("nope"), None);
    }

    #[test]
    fn semantics_indexes_are_dense() {
        let mut seen = [false; 3];
        for s in Semantics::ALL {
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn errors_display() {
        let e = QueryError::InvalidLayer {
            requested: 9,
            num_layers: 2,
        };
        assert!(e.to_string().contains('9'));
        assert!(QueryError::Timeout.to_string().contains("deadline"));
    }
}
