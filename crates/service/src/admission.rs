//! Admission control: a bounded MPMC job queue.
//!
//! The service accepts work through a fixed-capacity queue. When the
//! queue is full the submission is *refused immediately* with a typed
//! rejection rather than blocked — callers see back-pressure as
//! `QueryError::Overloaded` and can retry, shed, or route elsewhere.
//! This keeps worst-case memory bounded and keeps queueing delay (and
//! therefore deadline burn) visible instead of unbounded.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` only — the crate adds no
//! dependencies beyond std.

use bgi_check::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item was shed.
    Full,
    /// The queue has been closed (service shutdown).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue that sheds on
/// overflow and wakes blocked consumers on close.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Tries to enqueue `item`; refuses instantly when full or closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work, ever" — the consumer should
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`];
    /// consumers drain what's left, then [`BoundedQueue::pop`] returns
    /// `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Closes the queue and returns everything still queued, so the
    /// caller can fail pending work instead of silently dropping it.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut state = self.lock();
        state.closed = true;
        let drained = state.items.drain(..).collect();
        drop(state);
        self.not_empty.notify_all();
        drained
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space frees after pop");
    }

    #[test]
    fn close_rejects_pushes_and_drains_consumers() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1).is_ok());
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "queued work drains after close");
        assert_eq!(q.pop(), None, "then consumers see end-of-work");
    }

    #[test]
    fn close_and_drain_returns_pending() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.close_and_drain(), vec![1, 2]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().ok().flatten(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let producers = 4;
        let per = 200u64;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        while q.push(t * per + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..3 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    while let Some(v) = q.pop() {
                        consumed
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(v);
                    }
                });
            }
            // Producers finish first (scope ordering is not guaranteed,
            // so poll until everything was pushed), then close.
            loop {
                let got = consumed
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                if got as u64 == producers * per {
                    break;
                }
                std::thread::yield_now();
            }
            q.close();
        });
        let mut got = match Arc::try_unwrap(consumed) {
            Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(_) => Vec::new(),
        };
        got.sort_unstable();
        let want: Vec<u64> = (0..producers * per).collect();
        assert_eq!(got, want);
    }
}
