//! Single-flight request coalescing.
//!
//! Without it, N concurrent submissions of the same uncached query all
//! miss the cache and compute the answer N times — pure waste, since
//! the snapshot is immutable and every computation yields the same
//! result. [`SingleFlight`] lets exactly one worker (the *leader*)
//! execute per distinct cache key while the others wait for the
//! leader to finish and then re-read the cache.
//!
//! The protocol is deliberately decoupled from the cache itself: a
//! follower woken by the leader's departure re-checks the cache and,
//! when the entry is absent (the leader erred, or a snapshot swap made
//! its insert stale), joins again — possibly becoming the new leader.
//! That keeps the failure path self-healing without the flight table
//! ever holding results.

use bgi_check::sync::{Condvar, Mutex, PoisonError};
use std::collections::HashSet;
use std::hash::Hash;
use std::time::Instant;

/// Outcome of [`SingleFlight::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flight {
    /// The caller owns the key and must compute, then [`SingleFlight::leave`].
    Leader,
    /// Another caller held the key and has since left; re-check the
    /// cache (and `join` again on a miss).
    Coalesced,
    /// The deadline expired while waiting for the leader.
    TimedOut,
}

/// A set of in-flight computation keys with leader election.
pub struct SingleFlight<K> {
    inflight: Mutex<HashSet<K>>,
    departed: Condvar,
}

impl<K: Eq + Hash + Clone> SingleFlight<K> {
    /// An empty flight table.
    pub fn new() -> SingleFlight<K> {
        SingleFlight {
            inflight: Mutex::new(HashSet::new()),
            departed: Condvar::new(),
        }
    }

    /// Claims `key` or waits for its current leader to leave.
    ///
    /// Returns [`Flight::Leader`] when the caller claimed the key —
    /// it *must* call [`SingleFlight::leave`] when done, on every
    /// path. Returns [`Flight::Coalesced`] once a prior leader left,
    /// or [`Flight::TimedOut`] when `deadline` passed first.
    pub fn join(&self, key: &K, deadline: Option<Instant>) -> Flight {
        let mut guard = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if !guard.contains(key) {
            guard.insert(key.clone());
            return Flight::Leader;
        }
        while guard.contains(key) {
            match deadline {
                None => {
                    guard = self
                        .departed
                        .wait(guard)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Flight::TimedOut;
                    }
                    let (g, _timeout) = self
                        .departed
                        .wait_timeout(guard, dl - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard = g;
                }
            }
        }
        Flight::Coalesced
    }

    /// Releases a key claimed via [`Flight::Leader`] and wakes every
    /// waiter so they can re-check the cache.
    pub fn leave(&self, key: &K) {
        let mut guard = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        guard.remove(key);
        drop(guard);
        self.departed.notify_all();
    }
}

impl<K: Eq + Hash + Clone> Default for SingleFlight<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn first_joiner_leads_distinct_keys_dont_block() {
        let f: SingleFlight<u32> = SingleFlight::new();
        assert_eq!(f.join(&1, None), Flight::Leader);
        assert_eq!(f.join(&2, None), Flight::Leader);
        f.leave(&1);
        f.leave(&2);
        // Released keys can be claimed again.
        assert_eq!(f.join(&1, None), Flight::Leader);
        f.leave(&1);
    }

    #[test]
    fn waiter_coalesces_when_leader_leaves() {
        let f: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert_eq!(f.join(&7, None), Flight::Leader);
        let releaser = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                f.leave(&7);
            })
        };
        // The key is held right now, so this blocks until the helper
        // releases it.
        assert_eq!(f.join(&7, None), Flight::Coalesced);
        assert!(releaser.join().is_ok(), "releaser thread panicked");
    }

    #[test]
    fn waiter_times_out_when_leader_stalls() {
        let f: SingleFlight<u32> = SingleFlight::new();
        assert_eq!(f.join(&7, None), Flight::Leader);
        let deadline = Instant::now() + Duration::from_millis(30);
        assert_eq!(f.join(&7, Some(deadline)), Flight::TimedOut);
        f.leave(&7);
    }

    #[test]
    fn expired_deadline_still_leads_on_a_free_key() {
        // A free key never waits, so even an already-expired deadline
        // claims it — deadline pre-checks belong to the caller.
        let f: SingleFlight<u32> = SingleFlight::new();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(f.join(&9, Some(past)), Flight::Leader);
        f.leave(&9);
    }
}
