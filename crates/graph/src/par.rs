//! Deterministic fork-join parallelism over index ranges.
//!
//! Index construction is dominated by embarrassingly parallel loops —
//! one independent unit of work per sampled subgraph, per candidate
//! configuration, per hierarchy layer. [`par_map`] runs such a loop on
//! `std::thread::scope` workers (no external dependencies) while
//! keeping the *result* a pure function of the input: workers pull task
//! indices from a shared atomic counter, stash each result with its
//! index, and the output vector is reassembled in index order. Thread
//! scheduling can change which worker computes what, never what is
//! computed or where it lands.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Effective worker count for `threads` over `n` tasks: at least one,
/// at most one per task.
fn worker_count(threads: usize, n: usize) -> usize {
    threads.max(1).min(n.max(1))
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With `threads <= 1` (or a single task) this is a plain serial loop —
/// zero thread overhead, the exact code the serial build runs. With
/// more, up to `threads` scoped workers claim indices from an atomic
/// counter, so long tasks (layer 0 of a hierarchy, say) don't serialize
/// behind a static partition. The output is identical either way.
///
/// A panic in `f` propagates to the caller once the scope joins, like
/// the serial loop's panic would.
pub fn par_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(threads, n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Mutex<Vec<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for bucket in &buckets {
            let next = &next;
            let f = &f;
            s.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    // relaxed: pure work-claim ticket; results are
                    // published by the scope join, not this counter.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                // One lock per worker, after all its work is done.
                match bucket.lock() {
                    Ok(mut b) => *b = local,
                    Err(poisoned) => *poisoned.into_inner() = local,
                }
            });
        }
    });
    let mut tagged: Vec<(usize, T)> = buckets
        .into_iter()
        .flat_map(|b| {
            b.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .collect();
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map(1, 100, |i| i * i);
        for threads in [2, 4, 8, 16] {
            assert_eq!(
                par_map(threads, 100, |i| i * i),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn order_is_index_order_under_skew() {
        // Wildly uneven task costs: scheduling varies, output must not.
        let out = par_map(4, 32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = par_map(8, 257, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(par_map(4, 0, |i| i).is_empty());
        assert_eq!(par_map(0, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(par_map(100, 1, |i| i), vec![0]);
    }
}
