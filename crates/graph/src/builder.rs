//! Mutable construction of [`DiGraph`]s.
//!
//! The builder accumulates vertices and an edge list, then performs a
//! two-pass counting sort into dual CSR form. Duplicate edges are merged
//! (the paper's graphs are simple), and self-loops are kept — bisimulation
//! and the search semantics are both well-defined on them.

use crate::graph::DiGraph;
use crate::ids::{LabelId, VId};

/// Builder for [`DiGraph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<LabelId>,
    edges: Vec<(VId, VId)>,
    max_label: u32,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            max_label: 0,
        }
    }

    /// Adds a vertex with `label` and returns its id.
    pub fn add_vertex(&mut self, label: LabelId) -> VId {
        let v = VId::from(self.labels.len());
        self.labels.push(label);
        self.max_label = self.max_label.max(label.0);
        v
    }

    /// Adds a directed edge `u -> v`. Both endpoints must already exist.
    pub fn add_edge(&mut self, u: VId, v: VId) {
        debug_assert!(u.index() < self.labels.len(), "edge source out of range");
        debug_assert!(v.index() < self.labels.len(), "edge target out of range");
        self.edges.push((u, v));
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable [`DiGraph`], deduplicating parallel
    /// edges and sorting each adjacency list.
    pub fn build(mut self) -> DiGraph {
        let n = self.labels.len();
        // Deduplicate parallel edges.
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        // Out-CSR by counting sort on source (edges already sorted by
        // source then target, so targets come out sorted).
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<VId> = self.edges.iter().map(|&(_, v)| v).collect();

        // In-CSR by counting sort on target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![VId(0); m];
        for &(u, v) in &self.edges {
            let slot = cursor[v.index()];
            in_sources[slot as usize] = u;
            cursor[v.index()] += 1;
        }
        // Sources within each in-list are already in ascending order because
        // the edge list is sorted by source first.

        let num_labels = if n == 0 {
            0
        } else {
            self.max_label as usize + 1
        };
        DiGraph::from_parts(
            self.labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            num_labels,
        )
    }

    /// Builds a graph from parallel arrays: `labels[i]` is the label of
    /// vertex `i`, `edges` are `(source, target)` pairs.
    pub fn from_edges(labels: Vec<LabelId>, edges: Vec<(VId, VId)>) -> DiGraph {
        let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
        for l in labels {
            b.add_vertex(l);
        }
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_merged() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(LabelId(0));
        let v = b.add_vertex(LabelId(0));
        b.add_edge(u, v);
        b.add_edge(u, v);
        b.add_edge(u, v);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_are_kept() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(LabelId(0));
        b.add_edge(u, u);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(u), &[u]);
        assert_eq!(g.in_neighbors(u), &[u]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(LabelId(0));
        let a = b.add_vertex(LabelId(0));
        let c = b.add_vertex(LabelId(0));
        let d = b.add_vertex(LabelId(0));
        b.add_edge(u, d);
        b.add_edge(u, a);
        b.add_edge(u, c);
        let g = b.build();
        assert_eq!(g.out_neighbors(u), &[a, c, d]);
    }

    #[test]
    fn in_lists_are_sorted_by_source() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(LabelId(0));
        let c = b.add_vertex(LabelId(0));
        let t = b.add_vertex(LabelId(0));
        b.add_edge(c, t);
        b.add_edge(a, t);
        let g = b.build();
        assert_eq!(g.in_neighbors(t), &[a, c]);
    }

    #[test]
    fn from_edges_convenience() {
        let g = GraphBuilder::from_edges(vec![LabelId(0), LabelId(1)], vec![(VId(0), VId(1))]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.check_consistency());
    }

    #[test]
    fn alphabet_size_covers_max_label() {
        let mut b = GraphBuilder::new();
        b.add_vertex(LabelId(5));
        let g = b.build();
        assert_eq!(g.alphabet_size(), 6);
    }
}
