//! r-hop node-induced subgraph sampling (Sec. 3.2, "Graph sampling").
//!
//! The compression ratio of a configuration is estimated on `n` sampled
//! subgraphs: pick a random vertex `v`, take the node-induced subgraph of
//! the vertices reachable from `v` within `r` hops, and average the
//! per-sample compression ratios. The paper sizes `n` by estimation of
//! proportion: `n = 0.25 · (z / E)²` (e.g. `z = 1.96`, `E = 5% → n = 384`,
//! rounded up to 400 in the paper).

use crate::graph::DiGraph;
use crate::ids::VId;
use crate::par::par_map;
use crate::subgraph::{induced_subgraph, InducedSubgraph};
use crate::traversal::undirected_r_hop_ball;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for subgraph sampling.
#[derive(Debug, Clone, Copy)]
pub struct SamplingParams {
    /// Radius of each sampled ball, in hops (`r`).
    pub radius: u32,
    /// Number of samples (`n`).
    pub num_samples: usize,
    /// Cap on each ball's vertex count: hub neighborhoods in knowledge
    /// graphs can cover a large fraction of the graph within two
    /// undirected hops, and estimating compression does not require the
    /// whole fan-in — a truncated ball preserves the local structure
    /// signal at a fraction of the cost (the paper likewise tunes `r`
    /// and `n` "to efficiently determine the compress cost").
    pub max_ball: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            radius: 3,
            num_samples: 400,
            max_ball: 256,
            seed: 0xB16_1DE5,
        }
    }
}

/// Sample size from estimation of proportion: `n = 0.5·0.5·(z/E)²`
/// (the paper's formula with worst-case variance p = 0.5).
pub fn sample_size(z: f64, max_error: f64) -> usize {
    assert!(max_error > 0.0, "error bound must be positive");
    (0.25 * (z / max_error).powi(2)).ceil() as usize
}

/// Seed of sample `i`: the global seed and the sample index mixed
/// through SplitMix64's finalizer, so every sample owns an independent
/// RNG stream regardless of which thread draws it.
fn sample_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `params.num_samples` r-hop node-induced subgraphs from `g`.
/// Empty graphs yield an empty sample set.
pub fn sample_subgraphs(g: &DiGraph, params: &SamplingParams) -> Vec<InducedSubgraph> {
    sample_subgraphs_threaded(g, params, 1)
}

/// [`sample_subgraphs`] on up to `threads` scoped worker threads.
///
/// Sample `i` is drawn from its own RNG seeded by
/// `mix(params.seed, i)` — not from one shared sequential stream — so
/// the sample set is a pure function of `(g, params)`: any thread
/// count, including 1, produces bit-identical samples in the same
/// order. This is the determinism contract the parallel index build
/// relies on (DESIGN.md §8).
pub fn sample_subgraphs_threaded(
    g: &DiGraph,
    params: &SamplingParams,
    threads: usize,
) -> Vec<InducedSubgraph> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let n = g.num_vertices() as u32;
    par_map(threads, params.num_samples, |i| {
        let mut rng = StdRng::seed_from_u64(sample_seed(params.seed, i as u64));
        let v = VId(rng.gen_range(0..n));
        let mut ball = undirected_r_hop_ball(g, v, params.radius);
        ball.truncate(params.max_ball.max(1));
        induced_subgraph(g, &ball)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::LabelId;

    fn chain(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(LabelId(0));
        }
        for i in 0..n - 1 {
            b.add_edge(VId(i as u32), VId(i as u32 + 1));
        }
        b.build()
    }

    #[test]
    fn paper_sample_size() {
        // z = 1.96, E = 5% -> n = 384.16 -> 385 (paper rounds to 400).
        let n = sample_size(1.96, 0.05);
        assert!((380..=400).contains(&n), "n = {n}");
    }

    #[test]
    fn sample_count_and_radius() {
        let g = chain(50);
        let params = SamplingParams {
            radius: 2,
            num_samples: 10,
            max_ball: 256,
            seed: 42,
        };
        let samples = sample_subgraphs(&g, &params);
        assert_eq!(samples.len(), 10);
        for s in &samples {
            // An undirected radius-2 ball on a chain has at most 5 vertices.
            assert!(s.graph.num_vertices() <= 5);
            assert!(s.graph.num_vertices() >= 1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = chain(30);
        let params = SamplingParams {
            radius: 1,
            num_samples: 5,
            max_ball: 256,
            seed: 7,
        };
        let a = sample_subgraphs(&g, &params);
        let b = sample_subgraphs(&g, &params);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.original, y.original);
        }
    }

    #[test]
    fn threaded_sampling_matches_serial_exactly() {
        let g = chain(200);
        let params = SamplingParams {
            radius: 2,
            num_samples: 64,
            max_ball: 16,
            seed: 0xB16,
        };
        let serial = sample_subgraphs(&g, &params);
        for threads in [2usize, 4, 8] {
            let parallel = sample_subgraphs_threaded(&g, &params, threads);
            assert_eq!(serial.len(), parallel.len());
            for (x, y) in serial.iter().zip(&parallel) {
                assert_eq!(x.original, y.original, "{threads} threads");
            }
        }
    }

    #[test]
    fn different_seeds_draw_different_samples() {
        let g = chain(500);
        let base = SamplingParams {
            radius: 1,
            num_samples: 20,
            max_ball: 8,
            seed: 1,
        };
        let a = sample_subgraphs(&g, &base);
        let b = sample_subgraphs(&g, &SamplingParams { seed: 2, ..base });
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.original != y.original),
            "seed change must perturb the sample set"
        );
    }

    #[test]
    fn empty_graph_yields_no_samples() {
        let g = GraphBuilder::new().build();
        let samples = sample_subgraphs(&g, &SamplingParams::default());
        assert!(samples.is_empty());
    }
}
