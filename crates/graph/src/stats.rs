//! Graph statistics: label support, degree distribution summaries.
//!
//! `sup(ℓ) = |V_ℓ| / |V|` (Sec. 3.2) weights the distortion model;
//! `sup(q, G)` also appears in the query-layer cost model (Formula 4).

use crate::graph::DiGraph;
use crate::ids::LabelId;

/// Per-label support table for a graph.
#[derive(Debug, Clone)]
pub struct LabelSupport {
    counts: Vec<u32>,
    num_vertices: usize,
}

impl LabelSupport {
    /// Computes supports for `g`.
    pub fn new(g: &DiGraph) -> Self {
        LabelSupport {
            counts: g.label_counts(),
            num_vertices: g.num_vertices(),
        }
    }

    /// Number of vertices carrying `l` (`|V_ℓ|`).
    pub fn count(&self, l: LabelId) -> u32 {
        self.counts.get(l.index()).copied().unwrap_or(0)
    }

    /// Support `sup(ℓ) = |V_ℓ| / |V|`, in `[0, 1]`.
    pub fn support(&self, l: LabelId) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.count(l) as f64 / self.num_vertices as f64
        }
    }

    /// Number of distinct labels that actually occur.
    pub fn distinct_labels(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Summary of a graph's degree structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean out-degree (== mean in-degree).
    pub mean_out: f64,
    /// Maximum out-degree.
    pub max_out: usize,
    /// Maximum in-degree.
    pub max_in: usize,
}

/// Computes degree statistics for `g`.
pub fn degree_stats(g: &DiGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            mean_out: 0.0,
            max_out: 0,
            max_in: 0,
        };
    }
    DegreeStats {
        mean_out: g.num_edges() as f64 / n as f64,
        max_out: g.vertices().map(|v| g.out_degree(v)).max().unwrap_or(0),
        max_in: g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::VId;

    fn star() -> DiGraph {
        // hub(0, label 0) -> 4 leaves (label 1)
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(0));
        for _ in 0..4 {
            let leaf = b.add_vertex(LabelId(1));
            b.add_edge(hub, leaf);
        }
        b.build()
    }

    #[test]
    fn supports_sum_to_one() {
        let g = star();
        let s = LabelSupport::new(&g);
        assert!((s.support(LabelId(0)) - 0.2).abs() < 1e-12);
        assert!((s.support(LabelId(1)) - 0.8).abs() < 1e-12);
        assert_eq!(s.distinct_labels(), 2);
    }

    #[test]
    fn unknown_label_has_zero_support() {
        let g = star();
        let s = LabelSupport::new(&g);
        assert_eq!(s.count(LabelId(99)), 0);
        assert_eq!(s.support(LabelId(99)), 0.0);
    }

    #[test]
    fn degree_summary() {
        let g = star();
        let d = degree_stats(&g);
        assert_eq!(d.max_out, 4);
        assert_eq!(d.max_in, 1);
        assert!((d.mean_out - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let s = LabelSupport::new(&g);
        assert_eq!(s.support(LabelId(0)), 0.0);
        let d = degree_stats(&g);
        assert_eq!(d.mean_out, 0.0);
        let _ = VId(0); // silence unused import in cfg(test)
    }
}
