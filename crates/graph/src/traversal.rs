//! Traversal primitives shared by the keyword search algorithms.
//!
//! All distances are hop counts (the paper's semantics use unweighted
//! shortest distances), so single-source shortest paths are plain BFS.
//! A reusable [`BfsScratch`] avoids reallocating the visited table for
//! every query on large graphs.

use crate::graph::DiGraph;
use crate::ids::VId;
use std::collections::VecDeque;

/// Which edge direction a traversal follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (`u -> v` visits `v` from `u`).
    Forward,
    /// Follow in-edges (`u -> v` visits `u` from `v`) — the direction of
    /// backward keyword search.
    Backward,
}

impl Direction {
    #[inline]
    fn neighbors(self, g: &DiGraph, v: VId) -> &[VId] {
        match self {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        }
    }
}

/// Sentinel distance for "unreached".
pub const UNREACHED: u32 = u32::MAX;

/// Reusable scratch space for repeated BFS runs over the same graph.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    dist: Vec<u32>,
    touched: Vec<VId>,
    queue: VecDeque<VId>,
}

impl BfsScratch {
    /// Scratch for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            dist: vec![UNREACHED; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Distance of `v` from the last BFS source set, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: VId) -> u32 {
        self.dist[v.index()]
    }

    /// Vertices reached by the last BFS, in visitation order.
    pub fn reached(&self) -> &[VId] {
        &self.touched
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v.index()] = UNREACHED;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Multi-source BFS from `sources` in `dir`, exploring up to
    /// `max_depth` hops. Calls `visit(v, d)` for every reached vertex
    /// including the sources (d = 0); if `visit` returns `false` the
    /// traversal stops early.
    pub fn run<F>(
        &mut self,
        g: &DiGraph,
        sources: &[VId],
        dir: Direction,
        max_depth: u32,
        mut visit: F,
    ) where
        F: FnMut(VId, u32) -> bool,
    {
        self.reset();
        for &s in sources {
            if self.dist[s.index()] == UNREACHED {
                self.dist[s.index()] = 0;
                self.touched.push(s);
                self.queue.push_back(s);
                if !visit(s, 0) {
                    return;
                }
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let d = self.dist[u.index()];
            if d >= max_depth {
                continue;
            }
            for &v in dir.neighbors(g, u) {
                if self.dist[v.index()] == UNREACHED {
                    self.dist[v.index()] = d + 1;
                    self.touched.push(v);
                    self.queue.push_back(v);
                    if !visit(v, d + 1) {
                        return;
                    }
                }
            }
        }
    }
}

/// Single-source hop distances from `s` in `dir`, bounded by `max_depth`.
/// Returns `(vertex, distance)` pairs for every vertex within the bound.
pub fn bfs_distances(g: &DiGraph, s: VId, dir: Direction, max_depth: u32) -> Vec<(VId, u32)> {
    let mut scratch = BfsScratch::new(g.num_vertices());
    let mut out = Vec::new();
    scratch.run(g, &[s], dir, max_depth, |v, d| {
        out.push((v, d));
        true
    });
    out
}

/// Shortest hop distance from `u` to `v` following out-edges, or `None`
/// if `v` is not reachable within `max_depth`.
pub fn shortest_distance(g: &DiGraph, u: VId, v: VId, max_depth: u32) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut scratch = BfsScratch::new(g.num_vertices());
    let mut found = None;
    scratch.run(g, &[u], Direction::Forward, max_depth, |x, d| {
        if x == v {
            found = Some(d);
            false
        } else {
            true
        }
    });
    found
}

/// True if `v` is reachable from `u` (following out-edges) within
/// `max_depth` hops. `reach(u, v, G)` in the paper's Prop. 5.1.
pub fn reachable(g: &DiGraph, u: VId, v: VId, max_depth: u32) -> bool {
    shortest_distance(g, u, v, max_depth).is_some()
}

/// The set of vertices reachable from `v` within `r` hops (forward),
/// including `v`. Used for r-hop node-induced subgraph sampling (Sec. 3.2).
pub fn r_hop_ball(g: &DiGraph, v: VId, r: u32) -> Vec<VId> {
    bfs_distances(g, v, Direction::Forward, r)
        .into_iter()
        .map(|(x, _)| x)
        .collect()
}

/// The set of vertices within `r` hops of `v` ignoring edge direction,
/// including `v`. Compression-ratio sampling uses undirected balls: the
/// collapsible "sibling" vertices of a hub live in its *in*-neighborhood,
/// which a forward ball from an entity never contains.
pub fn undirected_r_hop_ball(g: &DiGraph, v: VId, r: u32) -> Vec<VId> {
    // Sparse map: balls are small relative to the graph.
    let mut seen: rustc_hash::FxHashMap<VId, u32> = rustc_hash::FxHashMap::default();
    let mut queue = VecDeque::new();
    seen.insert(v, 0);
    queue.push_back(v);
    let mut out = vec![v];
    while let Some(u) = queue.pop_front() {
        let d = seen[&u];
        if d >= r {
            continue;
        }
        for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(w) {
                e.insert(d + 1);
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::LabelId;

    /// Path 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 2.
    fn path_graph() -> DiGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(3));
        b.add_edge(VId(0), VId(2));
        b.build()
    }

    #[test]
    fn forward_distances() {
        let g = path_graph();
        let d = bfs_distances(&g, VId(0), Direction::Forward, 10);
        let get = |v: u32| d.iter().find(|(x, _)| *x == VId(v)).map(|&(_, d)| d);
        assert_eq!(get(0), Some(0));
        assert_eq!(get(1), Some(1));
        assert_eq!(get(2), Some(1)); // via shortcut
        assert_eq!(get(3), Some(2));
    }

    #[test]
    fn backward_distances() {
        let g = path_graph();
        let d = bfs_distances(&g, VId(3), Direction::Backward, 10);
        let get = |v: u32| d.iter().find(|(x, _)| *x == VId(v)).map(|&(_, d)| d);
        assert_eq!(get(3), Some(0));
        assert_eq!(get(2), Some(1));
        assert_eq!(get(0), Some(2)); // 0 -> 2 -> 3 backwards
    }

    #[test]
    fn depth_bound_respected() {
        let g = path_graph();
        let d = bfs_distances(&g, VId(0), Direction::Forward, 1);
        assert!(d.iter().all(|&(_, dist)| dist <= 1));
        assert_eq!(d.len(), 3); // 0, 1, 2
    }

    #[test]
    fn shortest_distance_and_reachability() {
        let g = path_graph();
        assert_eq!(shortest_distance(&g, VId(0), VId(3), 10), Some(2));
        assert_eq!(shortest_distance(&g, VId(3), VId(0), 10), None);
        assert_eq!(shortest_distance(&g, VId(1), VId(1), 0), Some(0));
        assert!(reachable(&g, VId(0), VId(3), 2));
        assert!(!reachable(&g, VId(0), VId(3), 1));
    }

    #[test]
    fn multi_source() {
        let g = path_graph();
        let mut scratch = BfsScratch::new(g.num_vertices());
        let mut reached = vec![];
        scratch.run(&g, &[VId(1), VId(2)], Direction::Forward, 10, |v, d| {
            reached.push((v, d));
            true
        });
        let get = |v: u32| reached.iter().find(|(x, _)| *x == VId(v)).map(|&(_, d)| d);
        assert_eq!(get(1), Some(0));
        assert_eq!(get(2), Some(0));
        assert_eq!(get(3), Some(1));
        assert_eq!(get(0), None);
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let g = path_graph();
        let mut scratch = BfsScratch::new(g.num_vertices());
        scratch.run(&g, &[VId(0)], Direction::Forward, 10, |_, _| true);
        assert_eq!(scratch.dist(VId(3)), 2);
        scratch.run(&g, &[VId(3)], Direction::Forward, 10, |_, _| true);
        assert_eq!(scratch.dist(VId(3)), 0);
        assert_eq!(scratch.dist(VId(0)), UNREACHED);
    }

    #[test]
    fn early_termination() {
        let g = path_graph();
        let mut scratch = BfsScratch::new(g.num_vertices());
        let mut count = 0;
        scratch.run(&g, &[VId(0)], Direction::Forward, 10, |_, _| {
            count += 1;
            count < 2
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn r_hop_ball_contents() {
        let g = path_graph();
        let ball = r_hop_ball(&g, VId(0), 1);
        assert!(ball.contains(&VId(0)));
        assert!(ball.contains(&VId(1)));
        assert!(ball.contains(&VId(2)));
        assert!(!ball.contains(&VId(3)));
    }
}
