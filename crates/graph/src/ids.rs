//! Compact identifier newtypes.
//!
//! Graph vertices and labels are dense `u32` indices. Wrapping them in
//! newtypes prevents accidentally indexing a label table with a vertex id
//! (or vice versa) while staying `Copy` and 4 bytes.

use std::fmt;

/// A vertex identifier: a dense index into a [`crate::DiGraph`]'s tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VId(pub u32);

/// A label identifier: a dense index into a [`crate::LabelInterner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

impl VId {
    /// The index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// The index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VId {
    #[inline]
    fn from(v: u32) -> Self {
        VId(v)
    }
}

impl From<usize> for VId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "vertex id overflows u32");
        VId(v as u32)
    }
}

impl From<u32> for LabelId {
    #[inline]
    fn from(v: u32) -> Self {
        LabelId(v)
    }
}

impl From<usize> for LabelId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "label id overflows u32");
        LabelId(v as u32)
    }
}

impl fmt::Debug for VId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_roundtrip() {
        let v = VId::from(42usize);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VId(42));
        assert_eq!(format!("{v:?}"), "v42");
    }

    #[test]
    fn label_roundtrip() {
        let l = LabelId::from(7u32);
        assert_eq!(l.index(), 7);
        assert_eq!(format!("{l:?}"), "l7");
        assert_eq!(format!("{l}"), "7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VId(1) < VId(2));
        assert!(LabelId(0) < LabelId(1));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<VId>(), 4);
        assert_eq!(std::mem::size_of::<LabelId>(), 4);
        // Option<VId> should not be larger than 8 bytes.
        assert!(std::mem::size_of::<Option<VId>>() <= 8);
    }
}
