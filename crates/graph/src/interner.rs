//! String-to-[`LabelId`] interning.
//!
//! All graph labels (entity names, types, keywords) are interned exactly
//! once; every other component works with dense `u32` ids. The interner is
//! shared between a data graph and its ontology graph so that label
//! generalization is an id-to-id mapping.

use crate::ids::LabelId;
use rustc_hash::FxHashMap;

/// Bidirectional map between label strings and dense [`LabelId`]s.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_name: FxHashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent: interning the same
    /// string twice returns the same id.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId::from(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`. Panics if `id` was not produced by this interner.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// The string for `id`, or `None` if out of range.
    pub fn try_name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over `(LabelId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId::from(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = LabelInterner::new();
        let a = it.intern("Person");
        let b = it.intern("Person");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut it = LabelInterner::new();
        let a = it.intern("Person");
        let b = it.intern("Univ");
        assert_ne!(a, b);
        assert_eq!(it.name(a), "Person");
        assert_eq!(it.name(b), "Univ");
    }

    #[test]
    fn get_without_intern() {
        let mut it = LabelInterner::new();
        assert_eq!(it.get("x"), None);
        let id = it.intern("x");
        assert_eq!(it.get("x"), Some(id));
    }

    #[test]
    fn iter_in_id_order() {
        let mut it = LabelInterner::new();
        it.intern("a");
        it.intern("b");
        it.intern("c");
        let names: Vec<&str> = it.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn try_name_out_of_range() {
        let it = LabelInterner::new();
        assert_eq!(it.try_name(LabelId(0)), None);
    }
}
