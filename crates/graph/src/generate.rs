//! Random graph generators.
//!
//! Generic building blocks used by tests, property tests, and the
//! dataset crate. All generators are deterministic in their seed.

use crate::builder::GraphBuilder;
use crate::graph::DiGraph;
use crate::ids::{LabelId, VId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `G(n, m)`-style random digraph: `n` vertices with uniformly random
/// labels from `0..num_labels` and `m` uniformly random directed edges
/// (duplicates merged, so the result may have slightly fewer than `m`).
pub fn uniform_random(n: usize, m: usize, num_labels: usize, seed: u64) -> DiGraph {
    assert!(num_labels > 0, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_vertex(LabelId(rng.gen_range(0..num_labels as u32)));
    }
    if n > 0 {
        for _ in 0..m {
            let u = VId(rng.gen_range(0..n as u32));
            let v = VId(rng.gen_range(0..n as u32));
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Preferential-attachment digraph: each new vertex draws `out_degree`
/// out-edges whose targets are chosen proportionally to in-degree + 1,
/// giving the heavy-tailed in-degree distribution typical of knowledge
/// graphs. Labels are uniform over `0..num_labels`.
pub fn preferential_attachment(
    n: usize,
    out_degree: usize,
    num_labels: usize,
    seed: u64,
) -> DiGraph {
    assert!(num_labels > 0, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * out_degree);
    // Target pool: vertex v appears once per incoming edge, plus once
    // unconditionally, approximating P(target = v) ∝ in_deg(v) + 1.
    let mut pool: Vec<VId> = Vec::with_capacity(n * (out_degree + 1));
    for i in 0..n {
        let v = b.add_vertex(LabelId(rng.gen_range(0..num_labels as u32)));
        if i > 0 {
            for _ in 0..out_degree.min(i) {
                let t = pool[rng.gen_range(0..pool.len())];
                if t != v {
                    b.add_edge(v, t);
                    pool.push(t);
                }
            }
        }
        pool.push(VId(i as u32));
    }
    b.build()
}

/// A balanced out-tree of the given `depth` and `fanout`, labels cycling
/// through `0..num_labels` by depth. Useful in tests: its maximal
/// bisimulation collapses each level to one supernode.
pub fn balanced_tree(depth: u32, fanout: usize, num_labels: usize, seed: u64) -> DiGraph {
    let _ = seed; // deterministic shape; kept for interface uniformity
    assert!(num_labels > 0);
    let mut b = GraphBuilder::new();
    let root = b.add_vertex(LabelId(0));
    let mut frontier = vec![root];
    for d in 1..=depth {
        let label = LabelId((d as usize % num_labels) as u32);
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &p in &frontier {
            for _ in 0..fanout {
                let c = b.add_vertex(label);
                b.add_edge(p, c);
                next.push(c);
            }
        }
        frontier = next;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts() {
        let g = uniform_random(100, 300, 5, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250); // few collisions at this density
        assert!(g.check_consistency());
    }

    #[test]
    fn uniform_deterministic() {
        let a = uniform_random(50, 100, 3, 9);
        let b = uniform_random(50, 100, 3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_labels_in_range() {
        let g = uniform_random(200, 100, 4, 2);
        assert!(g.labels().iter().all(|l| l.0 < 4));
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(500, 3, 5, 3);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 0);
        assert!(g.check_consistency());
        // Heavy tail: some vertex should have in-degree much larger than
        // the mean (~3).
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        assert!(max_in >= 10, "max in-degree {max_in}");
    }

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(2, 3, 2, 0);
        // 1 + 3 + 9 vertices, 3 + 9 edges.
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_degree(VId(0)), 3);
    }

    #[test]
    fn tree_labels_cycle_by_depth() {
        let g = balanced_tree(2, 2, 2, 0);
        assert_eq!(g.label(VId(0)), LabelId(0));
        // Depth-1 vertices carry label 1, depth-2 label 0 again.
        for &c in g.out_neighbors(VId(0)) {
            assert_eq!(g.label(c), LabelId(1));
            for &gc in g.out_neighbors(c) {
                assert_eq!(g.label(gc), LabelId(0));
            }
        }
    }

    #[test]
    fn zero_vertices() {
        let g = uniform_random(0, 10, 3, 0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
