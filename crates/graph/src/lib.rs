//! # bgi-graph
//!
//! Graph substrate for the BiG-index reproduction: a compact directed,
//! vertex-labeled graph with CSR adjacency in both directions, an ontology
//! DAG for label generalization, traversal primitives used by the keyword
//! search algorithms, r-hop node-induced subgraph sampling (used by the
//! index-construction cost model), random graph generators, and a simple
//! text serialization format.
//!
//! The types here are deliberately small and `Copy` where possible:
//! vertices and labels are `u32` newtypes ([`VId`], [`LabelId`]), and labels
//! are interned once in a [`LabelInterner`] so the hot paths of
//! bisimulation and search never touch strings.
//!
//! ## Quick example
//!
//! ```
//! use bgi_graph::{GraphBuilder, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let person = labels.intern("Person");
//! let univ = labels.intern("Univ");
//!
//! let mut b = GraphBuilder::new();
//! let alice = b.add_vertex(person);
//! let mit = b.add_vertex(univ);
//! b.add_edge(alice, mit);
//! let g = b.build();
//!
//! assert_eq!(g.num_vertices(), 2);
//! assert_eq!(g.out_neighbors(alice), &[mit]);
//! assert_eq!(g.in_neighbors(mit), &[alice]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod generate;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod ontology;
pub mod par;
pub mod sampling;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::DiGraph;
pub use ids::{LabelId, VId};
pub use interner::LabelInterner;
pub use ontology::{Ontology, OntologyBuilder};
pub use subgraph::induced_subgraph;
