//! The immutable directed, vertex-labeled graph.
//!
//! [`DiGraph`] stores adjacency in compressed sparse row (CSR) form in
//! *both* directions: backward keyword search (BANKS, BLINKS) walks
//! in-edges, while bisimulation refinement and forward verification walk
//! out-edges. Both are offset/target arrays, so neighbor iteration is a
//! contiguous slice with no per-vertex allocation.

use crate::error::GraphError;
use crate::ids::{LabelId, VId};

/// A directed graph with one label per vertex, stored as dual CSR.
///
/// Construct via [`crate::GraphBuilder`]; the graph itself is immutable.
/// `|G| = |V| + |E|` as in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    labels: Vec<LabelId>,
    // Out-CSR: edges (u -> v) grouped by u.
    out_offsets: Vec<u32>,
    out_targets: Vec<VId>,
    // In-CSR: edges (u -> v) grouped by v, storing u.
    in_offsets: Vec<u32>,
    in_sources: Vec<VId>,
    num_labels: usize,
}

impl DiGraph {
    pub(crate) fn from_parts(
        labels: Vec<LabelId>,
        out_offsets: Vec<u32>,
        out_targets: Vec<VId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<VId>,
        num_labels: usize,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), labels.len() + 1);
        debug_assert_eq!(in_offsets.len(), labels.len() + 1);
        debug_assert_eq!(out_targets.len(), in_sources.len());
        DiGraph {
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            num_labels,
        }
    }

    /// Reassembles a graph from raw dual-CSR arrays, as produced by
    /// [`DiGraph::csr_parts`] — the persistence path
    /// (`bgi-store`) round-trips graphs through this so a loaded graph
    /// is bit-identical to the saved one. All structural invariants are
    /// re-validated; inconsistent input (torn or corrupted on-disk
    /// data) is refused with a typed error, never a panic.
    pub fn from_csr(
        labels: Vec<LabelId>,
        out_offsets: Vec<u32>,
        out_targets: Vec<VId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<VId>,
        num_labels: usize,
    ) -> Result<Self, GraphError> {
        let n = labels.len();
        let malformed = |message: &str| GraphError::Parse {
            line: 0,
            message: format!("inconsistent CSR graph: {message}"),
        };
        if out_offsets.len() != n + 1 || in_offsets.len() != n + 1 {
            return Err(malformed("offset array length != |V| + 1"));
        }
        if out_offsets.first() != Some(&0) || in_offsets.first() != Some(&0) {
            return Err(malformed("offsets must start at 0"));
        }
        if out_offsets.windows(2).any(|w| w[0] > w[1]) || in_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(malformed("offsets must be non-decreasing"));
        }
        if out_offsets[n] as usize != out_targets.len()
            || in_offsets[n] as usize != in_sources.len()
        {
            return Err(malformed("final offset != edge array length"));
        }
        for &l in &labels {
            if l.index() >= num_labels {
                return Err(GraphError::LabelOutOfRange {
                    label: l.0,
                    num_labels,
                });
            }
        }
        for &v in out_targets.iter().chain(&in_sources) {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange {
                    vid: v.0,
                    num_vertices: n,
                });
            }
        }
        let g = DiGraph {
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            num_labels,
        };
        // Mirror check: every out-edge has its in-edge and vice versa.
        if !g.check_consistency() {
            return Err(malformed("in/out adjacency is not a mirror pair"));
        }
        Ok(g)
    }

    /// The raw dual-CSR arrays backing this graph, in
    /// [`DiGraph::from_csr`] argument order:
    /// `(labels, out_offsets, out_targets, in_offsets, in_sources)`.
    #[allow(clippy::type_complexity)]
    pub fn csr_parts(&self) -> (&[LabelId], &[u32], &[VId], &[u32], &[VId]) {
        (
            &self.labels,
            &self.out_offsets,
            &self.out_targets,
            &self.in_offsets,
            &self.in_sources,
        )
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Graph size `|G| = |V| + |E|` as defined in Sec. 2 of the paper.
    #[inline]
    pub fn size(&self) -> usize {
        self.num_vertices() + self.num_edges()
    }

    /// Number of distinct labels the graph was built against (the size of
    /// its label alphabet `Σ`, which may exceed the labels actually used).
    #[inline]
    pub fn alphabet_size(&self) -> usize {
        self.num_labels
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: VId) -> LabelId {
        self.labels[v.index()]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VId> + '_ {
        (0..self.labels.len() as u32).map(VId)
    }

    /// Out-neighbors of `v` (targets of edges leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: VId) -> &[VId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbors of `v` (sources of edges entering `v`).
    #[inline]
    pub fn in_neighbors(&self, v: VId) -> &[VId] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total degree (in + out) of `v`. Joint vertices in the path-based
    /// answer generation (Sec. 4.3.3) are vertices of degree > 2.
    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Checks whether edge `(u, v)` exists. `O(out_degree(u))`.
    pub fn has_edge(&self, u: VId, v: VId) -> bool {
        self.out_neighbors(u).contains(&v)
    }

    /// Iterator over all edges `(u, v)` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VId, VId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Vertices carrying label `l` (linear scan; the search crates build
    /// inverted label indexes for their hot paths).
    pub fn vertices_with_label(&self, l: LabelId) -> impl Iterator<Item = VId> + '_ {
        self.vertices().filter(move |&v| self.label(v) == l)
    }

    /// Counts occurrences of every label; result is indexed by `LabelId`.
    pub fn label_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_labels];
        for &l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// Returns a copy of this graph with labels rewritten through `map`
    /// (`map[old_label] = new_label`). The adjacency structure is shared
    /// logic with the original; only the label table changes. This is the
    /// primitive behind graph generalization `Gen(G, C)`.
    pub fn relabel(&self, map: &[LabelId]) -> DiGraph {
        let labels = self.labels.iter().map(|l| map[l.index()]).collect();
        DiGraph {
            labels,
            out_offsets: self.out_offsets.clone(),
            out_targets: self.out_targets.clone(),
            in_offsets: self.in_offsets.clone(),
            in_sources: self.in_sources.clone(),
            num_labels: self.num_labels,
        }
    }

    /// Validates internal invariants; used by tests and debug assertions.
    pub fn check_consistency(&self) -> bool {
        let n = self.num_vertices();
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return false;
        }
        if self.out_offsets[n] as usize != self.out_targets.len() {
            return false;
        }
        if self.in_offsets[n] as usize != self.in_sources.len() {
            return false;
        }
        // Every out-edge must be mirrored by an in-edge and vice versa.
        let mut out_pairs: Vec<(u32, u32)> = self.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut in_pairs: Vec<(u32, u32)> = self
            .vertices()
            .flat_map(|v| self.in_neighbors(v).iter().map(move |&u| (u.0, v.0)))
            .collect();
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        out_pairs == in_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(LabelId(0));
        let x = b.add_vertex(LabelId(1));
        let y = b.add_vertex(LabelId(1));
        let z = b.add_vertex(LabelId(2));
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, z);
        b.add_edge(y, z);
        b.build()
    }

    #[test]
    fn counts_and_size() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        assert_eq!(g.out_neighbors(VId(0)), &[VId(1), VId(2)]);
        assert_eq!(g.in_neighbors(VId(3)), &[VId(1), VId(2)]);
        assert_eq!(g.in_neighbors(VId(0)), &[] as &[VId]);
        assert_eq!(g.out_neighbors(VId(3)), &[] as &[VId]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(VId(0)), 2);
        assert_eq!(g.in_degree(VId(0)), 0);
        assert_eq!(g.degree(VId(1)), 2);
    }

    #[test]
    fn has_edge_checks() {
        let g = diamond();
        assert!(g.has_edge(VId(0), VId(1)));
        assert!(!g.has_edge(VId(1), VId(0)));
        assert!(!g.has_edge(VId(0), VId(3)));
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 4);
        assert!(es.contains(&(VId(0), VId(1))));
        assert!(es.contains(&(VId(2), VId(3))));
    }

    #[test]
    fn label_counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.label(VId(1)), LabelId(1));
        let counts = g.label_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 1);
        let with_l1: Vec<_> = g.vertices_with_label(LabelId(1)).collect();
        assert_eq!(with_l1, vec![VId(1), VId(2)]);
    }

    #[test]
    fn relabel_rewrites_labels_only() {
        let g = diamond();
        // Map label 1 -> 2, identity elsewhere.
        let map = vec![LabelId(0), LabelId(2), LabelId(2)];
        let g2 = g.relabel(&map);
        assert_eq!(g2.label(VId(1)), LabelId(2));
        assert_eq!(g2.label(VId(2)), LabelId(2));
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.out_neighbors(VId(0)), g.out_neighbors(VId(0)));
    }

    #[test]
    fn consistency_holds() {
        assert!(diamond().check_consistency());
    }

    #[test]
    fn csr_roundtrip_is_identical() {
        let g = diamond();
        let (labels, oo, ot, io, is) = g.csr_parts();
        let g2 = DiGraph::from_csr(
            labels.to_vec(),
            oo.to_vec(),
            ot.to_vec(),
            io.to_vec(),
            is.to_vec(),
            g.alphabet_size(),
        )
        .expect("round-trip");
        assert_eq!(g, g2);
    }

    #[test]
    fn from_csr_rejects_torn_input() {
        let g = diamond();
        let (labels, oo, ot, io, is) = g.csr_parts();
        // Truncated edge array (simulates a short write).
        assert!(DiGraph::from_csr(
            labels.to_vec(),
            oo.to_vec(),
            ot[..ot.len() - 1].to_vec(),
            io.to_vec(),
            is.to_vec(),
            g.alphabet_size(),
        )
        .is_err());
        // Out-of-range vertex id.
        let mut bad = ot.to_vec();
        bad[0] = VId(99);
        assert!(DiGraph::from_csr(
            labels.to_vec(),
            oo.to_vec(),
            bad,
            io.to_vec(),
            is.to_vec(),
            g.alphabet_size(),
        )
        .is_err());
        // Mirror violation: swap two in-sources so adjacency no longer
        // matches.
        let mut bad_in = is.to_vec();
        bad_in[0] = VId(3);
        assert!(DiGraph::from_csr(
            labels.to_vec(),
            oo.to_vec(),
            ot.to_vec(),
            io.to_vec(),
            bad_in,
            g.alphabet_size(),
        )
        .is_err());
        // Label beyond the declared alphabet.
        assert!(DiGraph::from_csr(
            labels.to_vec(),
            oo.to_vec(),
            ot.to_vec(),
            io.to_vec(),
            is.to_vec(),
            1,
        )
        .is_err());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.check_consistency());
        assert_eq!(g.vertices().count(), 0);
    }
}
