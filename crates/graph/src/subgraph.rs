//! Node-induced subgraphs.
//!
//! The cost model of Sec. 3.2 estimates compression ratios on sampled
//! *node-induced subgraphs*: given a vertex set `U`, keep every edge of
//! the original graph whose endpoints are both in `U`.

use crate::builder::GraphBuilder;
use crate::graph::DiGraph;
use crate::ids::VId;
use rustc_hash::FxHashMap;

/// A node-induced subgraph together with the mapping back to the
/// original graph's vertex ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph; vertex `i` corresponds to `original[i]` in the parent.
    pub graph: DiGraph,
    /// For each subgraph vertex, its id in the parent graph.
    pub original: Vec<VId>,
}

impl InducedSubgraph {
    /// Maps a subgraph vertex back to the parent graph.
    pub fn to_original(&self, v: VId) -> VId {
        self.original[v.index()]
    }
}

/// Builds the subgraph of `g` induced by `vertices`. Duplicate ids in
/// `vertices` are ignored; order of first occurrence determines the new ids.
pub fn induced_subgraph(g: &DiGraph, vertices: &[VId]) -> InducedSubgraph {
    let mut remap: FxHashMap<VId, VId> = FxHashMap::default();
    let mut original = Vec::with_capacity(vertices.len());
    let mut b = GraphBuilder::with_capacity(vertices.len(), vertices.len() * 2);
    for &v in vertices {
        if remap.contains_key(&v) {
            continue;
        }
        let nv = b.add_vertex(g.label(v));
        remap.insert(v, nv);
        original.push(v);
    }
    for (&old, &new) in &remap {
        for &t in g.out_neighbors(old) {
            if let Some(&nt) = remap.get(&t) {
                b.add_edge(new, nt);
            }
        }
    }
    InducedSubgraph {
        graph: b.build(),
        original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LabelId;

    fn triangle_plus_tail() -> DiGraph {
        // 0 -> 1 -> 2 -> 0, 2 -> 3
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(LabelId(i));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(0));
        b.add_edge(VId(2), VId(3));
        b.build()
    }

    #[test]
    fn induces_edges_with_both_endpoints() {
        let g = triangle_plus_tail();
        let sub = induced_subgraph(&g, &[VId(0), VId(1), VId(2)]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // the triangle, not 2->3
    }

    #[test]
    fn labels_are_preserved() {
        let g = triangle_plus_tail();
        let sub = induced_subgraph(&g, &[VId(2), VId(3)]);
        assert_eq!(sub.graph.label(VId(0)), LabelId(2));
        assert_eq!(sub.graph.label(VId(1)), LabelId(3));
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn mapping_back_to_original() {
        let g = triangle_plus_tail();
        let sub = induced_subgraph(&g, &[VId(3), VId(1)]);
        assert_eq!(sub.to_original(VId(0)), VId(3));
        assert_eq!(sub.to_original(VId(1)), VId(1));
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn duplicates_ignored() {
        let g = triangle_plus_tail();
        let sub = induced_subgraph(&g, &[VId(0), VId(0), VId(1)]);
        assert_eq!(sub.graph.num_vertices(), 2);
    }

    #[test]
    fn empty_selection() {
        let g = triangle_plus_tail();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }
}
