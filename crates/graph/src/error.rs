//! Error type for graph construction and I/O.

use std::fmt;

/// Errors raised by graph construction, validation, and serialization.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an index outside the graph.
    VertexOutOfRange {
        /// The offending vertex index.
        vid: u32,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A label id referenced an index outside the interner.
    LabelOutOfRange {
        /// The offending label index.
        label: u32,
        /// The number of interned labels.
        num_labels: usize,
    },
    /// The ontology graph contains a supertype cycle.
    OntologyCycle {
        /// A label on the detected cycle.
        on_label: u32,
    },
    /// A parse error while reading the text graph format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vid, num_vertices } => {
                write!(
                    f,
                    "vertex v{vid} out of range (graph has {num_vertices} vertices)"
                )
            }
            GraphError::LabelOutOfRange { label, num_labels } => {
                write!(
                    f,
                    "label l{label} out of range ({num_labels} labels interned)"
                )
            }
            GraphError::OntologyCycle { on_label } => {
                write!(
                    f,
                    "ontology graph is not a DAG: cycle through label l{on_label}"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange {
            vid: 9,
            num_vertices: 3,
        };
        assert!(e.to_string().contains("v9"));
        let e = GraphError::OntologyCycle { on_label: 2 };
        assert!(e.to_string().contains("cycle"));
        let e = GraphError::Parse {
            line: 4,
            message: "bad edge".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
