//! Plain-text serialization of graphs and ontologies.
//!
//! A deliberately simple line format so datasets can be inspected and
//! diffed:
//!
//! ```text
//! # comment
//! v <id> <label-name>
//! e <src-id> <dst-id>
//! ```
//!
//! Ontologies use `t <supertype-name> <subtype-name>` lines. Vertex ids
//! must be dense `0..n` but may appear in any order.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::DiGraph;
use crate::ids::VId;
use crate::interner::LabelInterner;
use crate::ontology::{Ontology, OntologyBuilder};
use std::io::{BufRead, Write};

/// Writes `g` in the text format, using `labels` for label names.
pub fn write_graph<W: Write>(
    g: &DiGraph,
    labels: &LabelInterner,
    mut w: W,
) -> Result<(), GraphError> {
    for v in g.vertices() {
        let name = labels
            .try_name(g.label(v))
            .ok_or(GraphError::LabelOutOfRange {
                label: g.label(v).0,
                num_labels: labels.len(),
            })?;
        writeln!(w, "v {} {}", v.0, name)?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Reads a graph in the text format, interning labels into `labels`.
pub fn read_graph<R: BufRead>(r: R, labels: &mut LabelInterner) -> Result<DiGraph, GraphError> {
    let mut vertices: Vec<(u32, String)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let parse_err = |message: &str| GraphError::Parse {
            line: lineno + 1,
            message: message.to_string(),
        };
        match kind {
            "v" => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("expected vertex id"))?;
                let name = parts
                    .next()
                    .ok_or_else(|| parse_err("expected label name"))?;
                vertices.push((id, name.to_string()));
            }
            "e" => {
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("expected edge source"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("expected edge target"))?;
                edges.push((u, v));
            }
            other => {
                return Err(parse_err(&format!("unknown record kind '{other}'")));
            }
        }
    }
    vertices.sort_unstable_by_key(|&(id, _)| id);
    for (i, &(id, _)) in vertices.iter().enumerate() {
        if id as usize != i {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "vertex ids are not dense: missing or duplicate id {i} (saw {id})"
                ),
            });
        }
    }
    let n = vertices.len();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (_, name) in &vertices {
        b.add_vertex(labels.intern(name));
    }
    for (u, v) in edges {
        if u as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vid: u,
                num_vertices: n,
            });
        }
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vid: v,
                num_vertices: n,
            });
        }
        b.add_edge(VId(u), VId(v));
    }
    Ok(b.build())
}

/// Writes an ontology as `t <supertype> <subtype>` lines.
pub fn write_ontology<W: Write>(
    o: &Ontology,
    labels: &LabelInterner,
    mut w: W,
) -> Result<(), GraphError> {
    for l in 0..o.num_labels() as u32 {
        let l = crate::ids::LabelId(l);
        for &sub in o.direct_subtypes(l) {
            let sup_name = labels.try_name(l).ok_or(GraphError::LabelOutOfRange {
                label: l.0,
                num_labels: labels.len(),
            })?;
            let sub_name = labels.try_name(sub).ok_or(GraphError::LabelOutOfRange {
                label: sub.0,
                num_labels: labels.len(),
            })?;
            writeln!(w, "t {sup_name} {sub_name}")?;
        }
    }
    Ok(())
}

/// Reads an ontology, interning any new labels into `labels`.
pub fn read_ontology<R: BufRead>(r: R, labels: &mut LabelInterner) -> Result<Ontology, GraphError> {
    let mut edges = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        if kind != "t" {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("expected 't' record, got '{kind}'"),
            });
        }
        let sup = parts.next().ok_or_else(|| GraphError::Parse {
            line: lineno + 1,
            message: "expected supertype name".into(),
        })?;
        let sub = parts.next().ok_or_else(|| GraphError::Parse {
            line: lineno + 1,
            message: "expected subtype name".into(),
        })?;
        edges.push((labels.intern(sup), labels.intern(sub)));
    }
    let mut b = OntologyBuilder::new(labels.len());
    for (sup, sub) in edges {
        b.add_subtype(sup, sub);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LabelId;

    #[test]
    fn graph_roundtrip() {
        let mut labels = LabelInterner::new();
        let p = labels.intern("Person");
        let u = labels.intern("Univ");
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(p);
        let m = b.add_vertex(u);
        b.add_edge(a, m);
        let g = b.build();

        let mut buf = Vec::new();
        write_graph(&g, &labels, &mut buf).unwrap();
        let mut labels2 = LabelInterner::new();
        let g2 = read_graph(&buf[..], &mut labels2).unwrap();
        assert_eq!(g2.num_vertices(), 2);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(labels2.name(g2.label(VId(0))), "Person");
        assert_eq!(labels2.name(g2.label(VId(1))), "Univ");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\nv 0 A\nv 1 B\ne 0 1\n";
        let mut labels = LabelInterner::new();
        let g = read_graph(text.as_bytes(), &mut labels).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "v 0 A\nv 2 B\n";
        let mut labels = LabelInterner::new();
        assert!(read_graph(text.as_bytes(), &mut labels).is_err());
    }

    #[test]
    fn bad_record_kind_rejected() {
        let text = "x 0 A\n";
        let mut labels = LabelInterner::new();
        let err = read_graph(text.as_bytes(), &mut labels).unwrap_err();
        assert!(err.to_string().contains("unknown record kind"));
    }

    #[test]
    fn edge_out_of_range_rejected() {
        let text = "v 0 A\ne 0 5\n";
        let mut labels = LabelInterner::new();
        assert!(read_graph(text.as_bytes(), &mut labels).is_err());
    }

    #[test]
    fn ontology_roundtrip() {
        let mut labels = LabelInterner::new();
        let thing = labels.intern("Thing");
        let person = labels.intern("Person");
        let mut b = OntologyBuilder::new(labels.len());
        b.add_subtype(thing, person);
        let o = b.build().unwrap();

        let mut buf = Vec::new();
        write_ontology(&o, &labels, &mut buf).unwrap();
        let mut labels2 = LabelInterner::new();
        let o2 = read_ontology(&buf[..], &mut labels2).unwrap();
        let t2 = labels2.get("Thing").unwrap();
        let p2 = labels2.get("Person").unwrap();
        assert!(o2.is_supertype_of(t2, p2));
    }

    #[test]
    fn ontology_bad_record_rejected() {
        let mut labels = LabelInterner::new();
        assert!(read_ontology("v 0 A\n".as_bytes(), &mut labels).is_err());
    }

    #[test]
    fn vertex_order_in_file_is_irrelevant() {
        let text = "v 1 B\nv 0 A\ne 0 1\n";
        let mut labels = LabelInterner::new();
        let g = read_graph(text.as_bytes(), &mut labels).unwrap();
        assert_eq!(labels.name(g.label(VId(0))), "A");
        assert_eq!(labels.name(g.label(VId(1))), "B");
    }

    #[test]
    fn label_id_used_for_missing_name_errors() {
        // A graph whose label table refers past the interner.
        let mut b = GraphBuilder::new();
        b.add_vertex(LabelId(3));
        let g = b.build();
        let labels = LabelInterner::new();
        assert!(write_graph(&g, &labels, Vec::new()).is_err());
    }
}
