//! Ontology graph `G_Ont`: a DAG of labels whose edges `(ℓ', ℓ)` state
//! that `ℓ'` is a direct supertype of `ℓ` (Sec. 2 of the paper).
//!
//! The ontology drives label generalization: a generalization configuration
//! maps each label either to one of its direct supertypes or to itself
//! when it has none. We store both directions of the subtype relation in
//! CSR form and precompute a topological order so supertype-closure and
//! reachability queries are cheap.

use crate::error::GraphError;
use crate::ids::LabelId;
use rustc_hash::FxHashSet;

/// An immutable ontology DAG over [`LabelId`]s.
///
/// Labels not mentioned in any subtype edge are valid "isolated" types:
/// they have no supertypes and generalize only to themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ontology {
    num_labels: usize,
    // CSR: direct supertypes of each label (parents).
    sup_offsets: Vec<u32>,
    sup_targets: Vec<LabelId>,
    // CSR: direct subtypes of each label (children).
    sub_offsets: Vec<u32>,
    sub_targets: Vec<LabelId>,
    // Labels in topological order: supertypes before subtypes.
    topo_order: Vec<LabelId>,
    // depth[l] = longest path from a root to l (roots have depth 0).
    depth: Vec<u32>,
}

impl Ontology {
    /// Number of labels the ontology covers (the alphabet size).
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of subtype edges.
    pub fn num_edges(&self) -> usize {
        self.sup_targets.len()
    }

    /// The direct supertypes of `l` (may be empty).
    pub fn direct_supertypes(&self, l: LabelId) -> &[LabelId] {
        let i = l.index();
        &self.sup_targets[self.sup_offsets[i] as usize..self.sup_offsets[i + 1] as usize]
    }

    /// The direct subtypes of `l` (may be empty).
    pub fn direct_subtypes(&self, l: LabelId) -> &[LabelId] {
        let i = l.index();
        &self.sub_targets[self.sub_offsets[i] as usize..self.sub_offsets[i + 1] as usize]
    }

    /// True if `l` has no supertype (it is a root / topmost type).
    pub fn is_root(&self, l: LabelId) -> bool {
        self.direct_supertypes(l).is_empty()
    }

    /// True if `l` has no subtype (it is a leaf / most specific type).
    pub fn is_leaf(&self, l: LabelId) -> bool {
        self.direct_subtypes(l).is_empty()
    }

    /// All root labels.
    pub fn roots(&self) -> Vec<LabelId> {
        (0..self.num_labels as u32)
            .map(LabelId)
            .filter(|&l| self.is_root(l))
            .collect()
    }

    /// All leaf labels.
    pub fn leaves(&self) -> Vec<LabelId> {
        (0..self.num_labels as u32)
            .map(LabelId)
            .filter(|&l| self.is_leaf(l))
            .collect()
    }

    /// Depth of `l`: length of the longest supertype chain above it.
    /// Roots have depth 0.
    pub fn depth(&self, l: LabelId) -> u32 {
        self.depth[l.index()]
    }

    /// Height of the ontology: the maximum depth over all labels.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Labels in topological order (every supertype precedes its subtypes).
    pub fn topological_order(&self) -> &[LabelId] {
        &self.topo_order
    }

    /// True if `sup` is a (transitive, reflexive) supertype of `sub`:
    /// `sup == sub` or there is a supertype path from `sub` up to `sup`.
    /// This is the relation used for candidate filtering (Prop. 4.1).
    pub fn is_supertype_of(&self, sup: LabelId, sub: LabelId) -> bool {
        if sup == sub {
            return true;
        }
        // Upward DFS from `sub`. Ontologies are shallow (height ~7 in the
        // paper's datasets), so this is fast without a closure matrix.
        let mut stack = vec![sub];
        let mut seen = FxHashSet::default();
        while let Some(l) = stack.pop() {
            for &p in self.direct_supertypes(l) {
                if p == sup {
                    return true;
                }
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        false
    }

    /// All (transitive) supertypes of `l`, excluding `l` itself.
    pub fn supertype_closure(&self, l: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        let mut stack = vec![l];
        while let Some(x) = stack.pop() {
            for &p in self.direct_supertypes(x) {
                if seen.insert(p) {
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out
    }

    /// Iterator over all subtype edges as `(supertype, subtype)` pairs.
    pub fn subtype_edges(&self) -> impl Iterator<Item = (LabelId, LabelId)> + '_ {
        (0..self.num_labels as u32)
            .map(LabelId)
            .flat_map(move |l| self.direct_subtypes(l).iter().map(move |&sub| (l, sub)))
    }

    /// All (transitive) subtypes of `l`, excluding `l` itself.
    pub fn subtype_closure(&self, l: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        let mut stack = vec![l];
        while let Some(x) = stack.pop() {
            for &c in self.direct_subtypes(x) {
                if seen.insert(c) {
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out
    }
}

/// Builder for [`Ontology`]; validates acyclicity on `build`.
#[derive(Debug, Default, Clone)]
pub struct OntologyBuilder {
    num_labels: usize,
    // (supertype, subtype) pairs.
    edges: Vec<(LabelId, LabelId)>,
}

impl OntologyBuilder {
    /// Creates a builder for an alphabet of `num_labels` labels
    /// (ids `0..num_labels`).
    pub fn new(num_labels: usize) -> Self {
        OntologyBuilder {
            num_labels,
            edges: Vec::new(),
        }
    }

    /// Declares `sup` to be a direct supertype of `sub`
    /// (the paper's edge `(ℓ', ℓ) ∈ E_Ont`).
    pub fn add_subtype(&mut self, sup: LabelId, sub: LabelId) -> &mut Self {
        debug_assert!(sup.index() < self.num_labels);
        debug_assert!(sub.index() < self.num_labels);
        self.edges.push((sup, sub));
        self
    }

    /// Grows the alphabet if labels were interned after construction.
    pub fn ensure_labels(&mut self, num_labels: usize) {
        self.num_labels = self.num_labels.max(num_labels);
    }

    /// Validates the DAG property and builds the [`Ontology`].
    pub fn build(mut self) -> Result<Ontology, GraphError> {
        let n = self.num_labels;
        self.edges.sort_unstable();
        self.edges.dedup();

        // sup CSR: for each subtype, its parents. Group by subtype.
        let mut sup_offsets = vec![0u32; n + 1];
        for &(_, sub) in &self.edges {
            sup_offsets[sub.index() + 1] += 1;
        }
        for i in 0..n {
            sup_offsets[i + 1] += sup_offsets[i];
        }
        let mut cursor = sup_offsets.clone();
        let mut sup_targets = vec![LabelId(0); self.edges.len()];
        for &(sup, sub) in &self.edges {
            let slot = cursor[sub.index()];
            sup_targets[slot as usize] = sup;
            cursor[sub.index()] += 1;
        }

        // sub CSR: for each supertype, its children. Edges are sorted by
        // supertype already.
        let mut sub_offsets = vec![0u32; n + 1];
        for &(sup, _) in &self.edges {
            sub_offsets[sup.index() + 1] += 1;
        }
        for i in 0..n {
            sub_offsets[i + 1] += sub_offsets[i];
        }
        let sub_targets: Vec<LabelId> = self.edges.iter().map(|&(_, sub)| sub).collect();

        // Kahn's algorithm: process labels whose supertypes are all done.
        // in_deg[l] = number of direct supertypes of l.
        let mut in_deg: Vec<u32> = (0..n)
            .map(|i| sup_offsets[i + 1] - sup_offsets[i])
            .collect();
        let mut queue: Vec<LabelId> = (0..n as u32)
            .map(LabelId)
            .filter(|l| in_deg[l.index()] == 0)
            .collect();
        let mut topo_order = Vec::with_capacity(n);
        let mut depth = vec![0u32; n];
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            topo_order.push(l);
            let i = l.index();
            for &c in &sub_targets[sub_offsets[i] as usize..sub_offsets[i + 1] as usize] {
                depth[c.index()] = depth[c.index()].max(depth[i] + 1);
                in_deg[c.index()] -= 1;
                if in_deg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo_order.len() != n {
            let on_label = (0..n).find(|&i| in_deg[i] > 0).map_or(0, |i| i as u32);
            return Err(GraphError::OntologyCycle { on_label });
        }

        Ok(Ontology {
            num_labels: n,
            sup_offsets,
            sup_targets,
            sub_offsets,
            sub_targets,
            topo_order,
            depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2-like ontology:
    ///   Thing(0) -> Person(1), Organization(2), Location(3)
    ///   Person(1) -> Academics(4), Investor(5)
    ///   Location(3) -> Eastern(6), Western(7)
    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new(8);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        b.add_subtype(LabelId(0), LabelId(3));
        b.add_subtype(LabelId(1), LabelId(4));
        b.add_subtype(LabelId(1), LabelId(5));
        b.add_subtype(LabelId(3), LabelId(6));
        b.add_subtype(LabelId(3), LabelId(7));
        b.build().unwrap()
    }

    #[test]
    fn direct_relations() {
        let o = sample();
        assert_eq!(o.direct_supertypes(LabelId(4)), &[LabelId(1)]);
        assert_eq!(o.direct_subtypes(LabelId(1)), &[LabelId(4), LabelId(5)]);
        assert!(o.is_root(LabelId(0)));
        assert!(o.is_leaf(LabelId(4)));
        assert!(!o.is_leaf(LabelId(1)));
    }

    #[test]
    fn transitive_supertype() {
        let o = sample();
        assert!(o.is_supertype_of(LabelId(0), LabelId(4)));
        assert!(o.is_supertype_of(LabelId(1), LabelId(4)));
        assert!(o.is_supertype_of(LabelId(4), LabelId(4)));
        assert!(!o.is_supertype_of(LabelId(4), LabelId(1)));
        assert!(!o.is_supertype_of(LabelId(2), LabelId(4)));
    }

    #[test]
    fn closures() {
        let o = sample();
        let mut sup = o.supertype_closure(LabelId(4));
        sup.sort_unstable();
        assert_eq!(sup, vec![LabelId(0), LabelId(1)]);
        let mut sub = o.subtype_closure(LabelId(0));
        sub.sort_unstable();
        assert_eq!(sub.len(), 7);
    }

    #[test]
    fn depth_and_height() {
        let o = sample();
        assert_eq!(o.depth(LabelId(0)), 0);
        assert_eq!(o.depth(LabelId(1)), 1);
        assert_eq!(o.depth(LabelId(4)), 2);
        assert_eq!(o.height(), 2);
    }

    #[test]
    fn topo_order_respects_edges() {
        let o = sample();
        let pos: Vec<usize> = {
            let mut p = vec![0; o.num_labels()];
            for (i, &l) in o.topological_order().iter().enumerate() {
                p[l.index()] = i;
            }
            p
        };
        for l in 0..o.num_labels() as u32 {
            for &sub in o.direct_subtypes(LabelId(l)) {
                assert!(pos[l as usize] < pos[sub.index()]);
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = OntologyBuilder::new(2);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(1), LabelId(0));
        assert!(matches!(b.build(), Err(GraphError::OntologyCycle { .. })));
    }

    #[test]
    fn diamond_is_allowed() {
        // A DAG, not a tree: 0 -> {1,2} -> 3.
        let mut b = OntologyBuilder::new(4);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(2));
        b.add_subtype(LabelId(1), LabelId(3));
        b.add_subtype(LabelId(2), LabelId(3));
        let o = b.build().unwrap();
        assert_eq!(o.direct_supertypes(LabelId(3)).len(), 2);
        assert_eq!(o.depth(LabelId(3)), 2);
    }

    #[test]
    fn isolated_labels_are_roots_and_leaves() {
        let b = OntologyBuilder::new(3);
        let o = b.build().unwrap();
        for l in 0..3u32 {
            assert!(o.is_root(LabelId(l)));
            assert!(o.is_leaf(LabelId(l)));
            assert_eq!(o.depth(LabelId(l)), 0);
        }
    }

    #[test]
    fn duplicate_edges_deduped() {
        let mut b = OntologyBuilder::new(2);
        b.add_subtype(LabelId(0), LabelId(1));
        b.add_subtype(LabelId(0), LabelId(1));
        let o = b.build().unwrap();
        assert_eq!(o.num_edges(), 1);
    }
}
