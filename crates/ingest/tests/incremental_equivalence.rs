//! Property test: at every prefix of a random update sequence, the
//! incrementally maintained hierarchy answers keyword queries exactly
//! like an index rebuilt from scratch on the same graph.
//!
//! The incremental partition may be *finer* than the maximal
//! bisimulation (splits are eager, merges are deferred — Sec. 3.2), so
//! the summary graphs themselves can differ. What must not differ is
//! what a user can observe: the specialized answers on the data graph.
//! Small graphs and a generous `k` make the plugged-in search
//! exhaustive, so answer sets are compared exactly (sorted, deduped).

use bgi_graph::{DiGraph, GraphBuilder, LabelId, Ontology, OntologyBuilder};
use bgi_ingest::{Engine, EngineConfig, IngestUpdate};
use bgi_search::blinks::BlinksParams;
use bgi_search::{Banks, KeywordQuery, KeywordSearch, RClique};
use bgi_store::IndexBundle;
use big_index::{eval_at_layer, BiGIndex, EvalOptions, GenConfig};
use proptest::prelude::*;

/// Fig. 1-like instance: person subtypes → univ subtypes → state.
/// Labels: 0=Person, 1=Prof, 2=Student, 3=Univ, 4=PubUniv, 5=PrivUniv,
/// 6=State.
fn setup() -> (DiGraph, Ontology) {
    let mut gb = GraphBuilder::new();
    let pub_u = gb.add_vertex(LabelId(4));
    let priv_u = gb.add_vertex(LabelId(5));
    let state = gb.add_vertex(LabelId(6));
    gb.add_edge(pub_u, state);
    gb.add_edge(priv_u, state);
    for i in 0..24 {
        let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
        let v = gb.add_vertex(l);
        gb.add_edge(v, if i % 3 == 0 { pub_u } else { priv_u });
    }
    let g = gb.build();
    let mut ob = OntologyBuilder::new(7);
    ob.add_subtype(LabelId(0), LabelId(1));
    ob.add_subtype(LabelId(0), LabelId(2));
    ob.add_subtype(LabelId(3), LabelId(4));
    ob.add_subtype(LabelId(3), LabelId(5));
    let o = ob.build().unwrap();
    (g, o)
}

fn step_config(o: &Ontology) -> GenConfig {
    GenConfig::new(
        [
            (LabelId(1), LabelId(0)),
            (LabelId(2), LabelId(0)),
            (LabelId(4), LabelId(3)),
            (LabelId(5), LabelId(3)),
        ],
        o,
    )
    .unwrap()
}

/// All answers of `query` on `index` at layer `m`, rendered, sorted and
/// deduplicated — order- and multiplicity-insensitive.
fn answer_set(index: &BiGIndex, m: usize, query: &KeywordQuery) -> Vec<String> {
    let banks = Banks.build_index(index.graph_at(m));
    let result = eval_at_layer(
        index,
        &Banks,
        &banks,
        query,
        200,
        m,
        &EvalOptions::default(),
    );
    let mut rendered: Vec<String> = result.answers.iter().map(|a| format!("{a:?}")).collect();
    rendered.sort();
    rendered.dedup();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_prefix_answers_like_a_scratch_rebuild(
        ops in proptest::collection::vec((0u8..3, 0u32..1_000_000, 0u32..1_000_000), 1..14),
    ) {
        let (g, o) = setup();
        let config = step_config(&o);
        let index = BiGIndex::build_with_configs(
            g,
            o.clone(),
            vec![config.clone()],
            bgi_bisim::BisimDirection::Forward,
        );
        let bundle = IndexBundle::build(
            index,
            BlinksParams::default(),
            RClique::default(),
            EvalOptions::default(),
        );
        let mut engine = Engine::new(bundle, EngineConfig::default()).unwrap();

        let queries = [
            KeywordQuery::new(vec![LabelId(1), LabelId(4)], 3),
            KeywordQuery::new(vec![LabelId(2), LabelId(6)], 4),
            KeywordQuery::new(vec![LabelId(6)], 2),
        ];

        for &(kind, a, b) in &ops {
            let n = engine.index().base().num_vertices() as u32;
            let update = match kind {
                0 => IngestUpdate::InsertEdge { src: a % n, dst: b % n },
                1 => IngestUpdate::DeleteEdge { src: a % n, dst: b % n },
                _ => IngestUpdate::AddVertex { label: b % 7 },
            };
            engine.apply_batch(&[update]).unwrap();

            // The maintained hierarchy stays a valid BiG-index…
            prop_assert!(engine.index().verify().is_clean(), "{}", engine.index().verify());

            // …and answers every query at every layer exactly like an
            // index rebuilt from scratch on the updated graph.
            let scratch = BiGIndex::build_with_configs(
                engine.index().base().clone(),
                o.clone(),
                vec![config.clone()],
                bgi_bisim::BisimDirection::Forward,
            );
            prop_assert_eq!(scratch.num_layers(), engine.index().num_layers());
            for m in 0..=scratch.num_layers() {
                for query in &queries {
                    let incremental = answer_set(engine.index(), m, query);
                    let rebuilt = answer_set(&scratch, m, query);
                    prop_assert_eq!(
                        &incremental,
                        &rebuilt,
                        "layer {} answers diverged for {:?}",
                        m,
                        query
                    );
                }
            }

            // The *served* per-layer search indexes — whether reused,
            // incrementally patched, or rebuilt — must be exactly what a
            // fresh build on the served graph produces. (BLINKS keeps
            // its original partition across patches, so its reference
            // build runs over the served partition.)
            let bundle = engine.bundle();
            for m in 0..=engine.index().num_layers() {
                let g = engine.index().graph_at(m);
                prop_assert!(
                    bundle.banks[m] == Banks.build_index(g),
                    "layer {} served BANKS index diverged from a fresh build", m
                );
                prop_assert!(
                    bundle.rclique[m] == bundle.rclique_params.build_index(g),
                    "layer {} served r-clique index diverged from a fresh build", m
                );
                let reference = bgi_search::blinks::BlinksIndex::build_with_partition(
                    g,
                    bundle.blinks[m].partition().clone(),
                    bundle.blinks_params.prune_dist,
                );
                prop_assert!(
                    bundle.blinks[m] == reference,
                    "layer {} served BLINKS index diverged from a same-partition build", m
                );
            }
        }
    }
}
