//! # bgi-ingest
//!
//! Live updates for a served BiG-index (Sec. 3.2, "Maintenance of
//! BiG-index"): a write path that accepts a stream of graph mutations
//! while the read path keeps answering queries from an immutable
//! snapshot.
//!
//! The paper's maintenance recipe is *eager splits, deferred merges*:
//! an edge update re-refines the existing bisimulation partition until
//! stable again (splits only — cheap, local), leaving a valid but
//! possibly finer-than-maximal summary; the maximal one is recovered by
//! an occasional full recomputation. [`Engine`] industrializes that
//! recipe end to end:
//!
//! 1. **Durability first.** Every accepted batch is appended to a
//!    checksummed, fsynced write-ahead log ([`bgi_store::wal`]) before
//!    it touches any in-memory state. Recovery replays the log's
//!    committed prefix on top of the newest complete store generation;
//!    replay is idempotent, so the crash window between "generation
//!    saved" and "log truncated" is harmless.
//! 2. **Flat-partition apply pipeline.** Rather than re-running the
//!    layer-by-layer construction, the engine maintains, for each layer
//!    `m`, a partition of the *base* vertices over the base graph
//!    relabeled by the composed generalization map `C^m ∘ … ∘ C¹`.
//!    Stable partitions compose: the flat layer-`m` partition is stable
//!    iff the corresponding iterated hierarchy is, and split-only
//!    refinement preserves the coarseness chain `P^1 ⊑ P^2 ⊑ …` — so
//!    each batch is one [`bgi_bisim::IncrementalBisim::apply_batch`]
//!    per layer, and the `Layer` tables (`χ`, `Bisim⁻¹`) fall out of
//!    adjacent flat partitions. Per-layer search indexes are rebuilt
//!    only for layers whose summary graph actually changed.
//! 3. **Drift-triggered background rebuild.** Deferred merges cost
//!    compression. The engine re-evaluates the construction cost model
//!    (Formula 3, `α·compress + (1−α)·distort`) against the baseline
//!    captured at the last full build and recommends a rebuild once any
//!    layer's cost has drifted past the policy threshold (or a hard
//!    update cap). [`Engine::start_rebuild`] captures the inputs into a
//!    `Send` [`engine::RebuildJob`] that runs the from-scratch
//!    construction off-thread while batches keep applying (buffered as
//!    a delta); [`Engine::finish_rebuild`] adopts the result and
//!    replays the delta. [`Engine::rebuild`] is the inline
//!    (blocking) composition of the two.
//!
//! The serving integration (snapshot swap, cache invalidation,
//! rollback on verification failure) lives in `bgi-service`'s
//! `Service::apply_updates`; this crate deliberately depends only on
//! graph/bisim/core/store so the pipeline is testable without a
//! server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod policy;
pub mod update;

pub use engine::{ApplyOutcome, Engine, EngineConfig, RebuildJob};
pub use error::IngestError;
pub use policy::{DriftReport, LayerDrift, RebuildPolicy};
pub use update::IngestUpdate;
