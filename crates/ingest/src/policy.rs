//! Staleness tracking: when has split-only maintenance degraded the
//! index enough to warrant the full rebuild the paper prescribes?
//!
//! The trigger reuses the construction cost model (Formula 3):
//! `cost(Gᵐ⁻¹, Cᵐ) = α·compress + (1−α)·distort`. Distortion depends
//! only on the configuration and label supports, but *compress* — the
//! size ratio `|Gᵐ|/|Gᵐ⁻¹|` — is exactly what deferred merges erode:
//! every split the incremental maintenance keeps makes the summary
//! bigger than the maximal one. Re-evaluating the cost per layer
//! against the baseline captured at the last full build turns "we have
//! drifted" into the same currency Algo. 1 used to accept the
//! configuration in the first place.

use bgi_bisim::Drift;

/// When to recommend a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// `α` of Formula 3 (weight of compression vs distortion).
    pub alpha: f64,
    /// Recommend a rebuild once any layer's Formula-3 cost exceeds its
    /// baseline by more than this (absolute, both terms are in `[0,1]`).
    pub max_cost_increase: f64,
    /// Hard cap: recommend a rebuild after this many updates since the
    /// last one regardless of measured drift.
    pub max_updates: usize,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            alpha: 0.5,
            max_cost_increase: 0.05,
            max_updates: 100_000,
        }
    }
}

/// Drift of one layer since the last full build.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDrift {
    /// The layer (`1..=h`).
    pub layer: usize,
    /// Block-level drift of the layer's flat partition.
    pub bisim: Drift,
    /// Formula-3 cost of the layer right now.
    pub cost: f64,
    /// Formula-3 cost at the last full build.
    pub baseline_cost: f64,
}

impl LayerDrift {
    /// Cost increase over the baseline (0 when the layer improved).
    pub fn cost_increase(&self) -> f64 {
        (self.cost - self.baseline_cost).max(0.0)
    }
}

/// What the staleness tracker reports after a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Updates applied since the last full rebuild.
    pub updates_since_rebuild: usize,
    /// Per-layer drift, `1..=h` in order.
    pub layers: Vec<LayerDrift>,
    /// True when the policy says it is time for [`crate::Engine::rebuild`].
    pub rebuild_recommended: bool,
}

impl DriftReport {
    /// Evaluates `policy` over the measurements, filling in
    /// [`DriftReport::rebuild_recommended`].
    pub(crate) fn evaluate(
        updates_since_rebuild: usize,
        layers: Vec<LayerDrift>,
        policy: &RebuildPolicy,
    ) -> Self {
        let over_cost = layers
            .iter()
            .any(|l| l.cost_increase() > policy.max_cost_increase);
        let over_updates = updates_since_rebuild >= policy.max_updates;
        DriftReport {
            updates_since_rebuild,
            layers,
            rebuild_recommended: over_cost || over_updates,
        }
    }
}
