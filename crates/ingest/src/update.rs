//! The client-facing update type and its line format.
//!
//! [`IngestUpdate`] is what callers submit: no bookkeeping fields. The
//! engine validates each update, stamps vertex additions with the id
//! they will create, and logs the result as [`bgi_store::GraphUpdate`]
//! — the durable, replayable form.

/// One graph mutation as submitted by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestUpdate {
    /// Insert edge `src → dst` between existing vertices.
    InsertEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Delete edge `src → dst` (a no-op if the edge is absent).
    DeleteEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Add an isolated vertex with an existing (indexed) label. The new
    /// vertex id is assigned by the engine (`num_vertices` at apply
    /// time) and reported back.
    AddVertex {
        /// Label of the new vertex.
        label: u32,
    },
}

impl IngestUpdate {
    /// Parses the line format `insert <u> <v>` / `delete <u> <v>` /
    /// `addv <label>` (the format `bgi gen --updates` emits and the
    /// `update` protocol verb accepts).
    pub fn parse_line(line: &str) -> Option<IngestUpdate> {
        let mut it = line.split_whitespace();
        let op = it.next()?;
        let a: u32 = it.next()?.parse().ok()?;
        match op {
            "insert" | "delete" => {
                let b: u32 = it.next()?.parse().ok()?;
                if it.next().is_some() {
                    return None;
                }
                Some(if op == "insert" {
                    IngestUpdate::InsertEdge { src: a, dst: b }
                } else {
                    IngestUpdate::DeleteEdge { src: a, dst: b }
                })
            }
            "addv" => {
                if it.next().is_some() {
                    return None;
                }
                Some(IngestUpdate::AddVertex { label: a })
            }
            _ => None,
        }
    }

    /// Renders the update in the [`IngestUpdate::parse_line`] format.
    pub fn to_line(&self) -> String {
        match *self {
            IngestUpdate::InsertEdge { src, dst } => format!("insert {src} {dst}"),
            IngestUpdate::DeleteEdge { src, dst } => format!("delete {src} {dst}"),
            IngestUpdate::AddVertex { label } => format!("addv {label}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip() {
        let ops = [
            IngestUpdate::InsertEdge { src: 3, dst: 9 },
            IngestUpdate::DeleteEdge { src: 0, dst: 1 },
            IngestUpdate::AddVertex { label: 4 },
        ];
        for op in ops {
            assert_eq!(IngestUpdate::parse_line(&op.to_line()), Some(op));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "insert 1",
            "insert 1 2 3",
            "frobnicate 1 2",
            "addv",
            "addv 1 2",
            "insert x y",
        ] {
            assert_eq!(IngestUpdate::parse_line(bad), None, "{bad:?}");
        }
    }
}
