//! The live-update engine: WAL-backed apply pipeline over flat
//! per-layer partitions, with drift-triggered full rebuild.
//!
//! ## The flat-partition representation
//!
//! The hierarchy is defined iteratively (`Gᵐ = Bisim(Gen(Gᵐ⁻¹, Cᵐ))`),
//! but maintaining it that way would mean updating `m` graphs whose
//! vertex sets all shift under splits. Instead the engine keeps, per
//! layer `m`, a partition `Pᵐ` of the **base** vertices over the base
//! graph relabeled by the composed map `Cᵐ ∘ … ∘ C¹`. This is faithful:
//!
//! - stability composes — `Pᵐ` is stable on the composed-relabeled base
//!   graph iff the corresponding layer-level partition is stable on the
//!   relabeled `Gᵐ⁻¹` (for summary edges, "some member has an edge" and
//!   "every member has an edge" coincide exactly when `Pᵐ⁻¹` is
//!   stable);
//! - split-only refinement preserves the coarseness chain
//!   `Pᵐ⁻¹ ⊑ Pᵐ`: refinement signatures ignore labels and vertices in
//!   one stable `Pᵐ⁻¹` block have identical block-neighborhoods, so no
//!   round of refining `Pᵐ` ever separates them;
//! - the `Layer` tables fall out of adjacent partitions: layer-`m`
//!   supernodes are `Pᵐ` blocks, `χ` maps a `Pᵐ⁻¹` block to the `Pᵐ`
//!   block containing it, and `summarize` over the flat graph
//!   reproduces the summary `Gᵐ` exactly (supernode ids are block ids
//!   in both views).
//!
//! A batch is therefore: validate → WAL append (fsync = commit) → one
//! `apply_batch` per layer → re-materialize `Layer`s and the
//! `IndexBundle`, rebuilding per-layer search indexes only where the
//! summary graph changed. The result is a *stable but possibly finer
//! than maximal* hierarchy — precisely the paper's eager-split /
//! deferred-merge maintenance — which still passes the full
//! `bgi-verify` invariant suite (it checks stability, not maximality).

use crate::error::IngestError;
use crate::policy::{DriftReport, LayerDrift, RebuildPolicy};
use crate::update::IngestUpdate;
use bgi_bisim::incremental::Update as BisimUpdate;
use bgi_bisim::{summarize, IncrementalBisim, Partition};
use bgi_graph::par::par_map;
use bgi_graph::stats::LabelSupport;
use bgi_graph::{DiGraph, GraphBuilder, LabelId, Ontology, VId};
use bgi_search::banks::BanksIndex;
use bgi_search::blinks::BlinksIndex;
use bgi_search::rclique::RCliqueIndex;
use bgi_search::{diff_graphs, Banks, Blinks, KeywordSearch};
use bgi_store::{build_layer_indexes, GraphUpdate, IndexBundle, Store, Wal};
use big_index::cost::construction_cost_with_compress;
use big_index::layer::Layer;
use big_index::{BiGIndex, GenConfig, Summarizer};
use std::collections::BTreeSet;

/// Construction-time knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// When to recommend a full rebuild.
    pub policy: RebuildPolicy,
    /// Worker threads for full rebuilds' per-layer index builds (the
    /// `par_map` path; `1` = serial, any count is bit-identical).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: RebuildPolicy::default(),
            threads: 1,
        }
    }
}

/// What one [`Engine::apply_batch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// WAL sequence number the batch committed under (`None` when the
    /// engine runs without a log).
    pub seq: Option<u64>,
    /// Updates applied to the in-memory state.
    pub applied: usize,
    /// Layers (incl. layer 0) whose search indexes were reused because
    /// their summary graph did not change.
    pub reused_layers: usize,
    /// Layers whose search indexes were *patched* in place of a rebuild
    /// — the summary changed, but the structural diff was small enough
    /// for the incremental entry points on all three indexes.
    pub patched_layers: usize,
    /// Layers whose search indexes had to be rebuilt from scratch.
    pub rebuilt_layers: usize,
}

/// The live-update engine. See the module docs for the pipeline.
pub struct Engine {
    ontology: Ontology,
    direction: bgi_bisim::BisimDirection,
    summarizer: Summarizer,
    /// Labels an [`IngestUpdate::AddVertex`] may use (`0..alphabet`).
    alphabet: usize,
    /// Per-layer step configurations `Cᵐ` (fixed under updates).
    configs: Vec<GenConfig>,
    /// Per-layer step label maps (dense form of `Cᵐ`).
    step_maps: Vec<Vec<LabelId>>,
    /// `composed[m-1][ℓ] = Cᵐ(…C¹(ℓ)…)` over the full alphabet.
    composed: Vec<Vec<LabelId>>,
    /// The current base graph `G⁰`.
    base: DiGraph,
    /// Flat per-layer state: `flats[m-1]` maintains `Pᵐ` over
    /// `relabel(base, composed[m-1])`.
    flats: Vec<IncrementalBisim>,
    /// The current materialized serving artifact.
    bundle: IndexBundle,
    wal: Option<Wal>,
    /// Highest WAL sequence folded into the in-memory state.
    last_seq: u64,
    policy: RebuildPolicy,
    threads: usize,
    /// Formula-3 cost per layer at the last full build.
    baseline: Vec<f64>,
    updates_since_rebuild: usize,
    /// `Some` while a [`RebuildJob`] is outstanding: every batch logged
    /// since [`Engine::start_rebuild`] captured its inputs, to be
    /// replayed onto the rebuilt hierarchy at adoption.
    rebuild_delta: Option<Vec<GraphUpdate>>,
    /// Per-layer `(assignment, num_blocks)` snapshot of the flat
    /// partitions as of the served bundle — the baseline against which
    /// [`Engine::materialize`] decides whether a layer's summary can be
    /// patched block-by-block instead of re-summarized from scratch.
    prev_parts: Vec<(Vec<u32>, usize)>,
}

/// Structural diffs above this many edge operations always fall back
/// to a full per-layer index rebuild: past a few hundred touched edges
/// the incremental entry points stop paying for themselves.
const MAX_PATCH_EDGE_OPS: usize = 512;

/// The three per-layer search indexes produced by the incremental
/// patch path (all three must succeed or the layer is rebuilt).
struct PatchedLayer {
    banks: BanksIndex,
    blinks: BlinksIndex,
    rclique: RCliqueIndex,
}

/// Snapshots every flat partition for the patchability baseline.
fn snapshot_parts(flats: &[IncrementalBisim]) -> Vec<(Vec<u32>, usize)> {
    flats
        .iter()
        .map(|f| {
            let p = f.partition();
            (p.assignment().to_vec(), p.num_blocks())
        })
        .collect()
}

/// Whether `part` extends the snapshot `prev` by appended singleton
/// blocks only: every pre-existing vertex keeps its block, and each
/// appended vertex sits in a fresh block numbered consecutively after
/// the old ones. Exactly the shape under which the old summary graph
/// can be patched per update op instead of re-derived.
fn extends_by_singletons(prev: &(Vec<u32>, usize), part: &Partition) -> bool {
    let (prev_bo, prev_nb) = prev;
    let bo = part.assignment();
    let n_old = prev_bo.len();
    bo.len() >= n_old
        && part.num_blocks() == prev_nb + (bo.len() - n_old)
        && bo[..n_old] == prev_bo[..]
        && bo[n_old..]
            .iter()
            .enumerate()
            .all(|(k, &b)| b as usize == prev_nb + k)
}

impl Engine {
    /// Starts an engine from a built (or loaded) bundle, without a WAL
    /// — updates are applied in memory only. Fails with
    /// [`IngestError::Inconsistent`] if the bundle's hierarchy cannot
    /// seed the flat partitions (which a verified index always can).
    pub fn new(bundle: IndexBundle, config: EngineConfig) -> Result<Engine, IngestError> {
        let seed = Seed::from_index(&bundle.index, config.policy.alpha)?;
        let prev_parts = snapshot_parts(&seed.flats);
        Ok(Engine {
            ontology: seed.ontology,
            direction: seed.direction,
            summarizer: seed.summarizer,
            alphabet: seed.alphabet,
            configs: seed.configs,
            step_maps: seed.step_maps,
            composed: seed.composed,
            base: seed.base,
            flats: seed.flats,
            bundle,
            wal: None,
            last_seq: 0,
            policy: config.policy,
            threads: config.threads.max(1),
            baseline: seed.baseline,
            updates_since_rebuild: 0,
            rebuild_delta: None,
            prev_parts,
        })
    }

    /// [`Engine::new`] plus durability: opens the store's WAL, replays
    /// its committed prefix on top of the bundle (which recovery
    /// guarantees is the newest complete generation), and logs every
    /// future batch. Returns the engine and the number of replayed
    /// updates.
    pub fn with_wal(
        bundle: IndexBundle,
        config: EngineConfig,
        store: &Store,
    ) -> Result<(Engine, usize), IngestError> {
        let mut engine = Engine::new(bundle, config)?;
        let (wal, batches) = store.open_wal()?;
        let mut replayed = 0usize;
        let mut all: Vec<GraphUpdate> = Vec::new();
        for batch in &batches {
            replayed += engine.apply_to_state(&batch.updates)?;
            engine.last_seq = batch.seq;
            all.extend_from_slice(&batch.updates);
        }
        if !batches.is_empty() {
            engine.materialize(&all)?;
        }
        engine.wal = Some(wal);
        Ok((engine, replayed))
    }

    /// The current serving artifact: hierarchy plus per-layer search
    /// indexes, consistent with every update applied so far. Hand a
    /// clone to `IndexSnapshot::from_bundle` to serve it.
    pub fn bundle(&self) -> &IndexBundle {
        &self.bundle
    }

    /// The current hierarchy.
    pub fn index(&self) -> &BiGIndex {
        &self.bundle.index
    }

    /// Highest WAL sequence number folded into the in-memory state
    /// (0 before the first logged batch).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Updates applied since the last full rebuild.
    pub fn updates_since_rebuild(&self) -> usize {
        self.updates_since_rebuild
    }

    /// Validates, logs (fsync = commit), applies, and re-materializes
    /// one batch of updates. On any error the serving bundle is left at
    /// its previous value (validation rejects before logging; a logged
    /// batch that fails mid-apply is recovered from the WAL on
    /// restart). An empty batch is a complete no-op: nothing is logged
    /// (no WAL append, no fsync) and the serving bundle is untouched.
    pub fn apply_batch(&mut self, updates: &[IngestUpdate]) -> Result<ApplyOutcome, IngestError> {
        if updates.is_empty() {
            return Ok(self.noop_outcome());
        }
        let logged = self.validate(updates)?;
        let seq = match &mut self.wal {
            Some(wal) => Some(wal.append(&logged)?),
            None => None,
        };
        if let Some(s) = seq {
            self.last_seq = s;
        }
        let applied = self.apply_to_state(&logged)?;
        if let Some(delta) = &mut self.rebuild_delta {
            delta.extend_from_slice(&logged);
        }
        let (reused_layers, patched_layers, rebuilt_layers) = self.materialize(&logged)?;
        Ok(ApplyOutcome {
            seq,
            applied,
            reused_layers,
            patched_layers,
            rebuilt_layers,
        })
    }

    /// Commits several callers' batches as **one group**: one WAL
    /// append + fsync for the whole group
    /// ([`bgi_store::Wal::append_group`]), one state application, one
    /// re-materialization. This is the engine half of the group-commit
    /// write path — [`bgi_store::CommitQueue`] coalesces concurrent
    /// callers into the `batches` slice and a single leader calls this.
    ///
    /// Every batch is validated up front (in order, with vertex
    /// additions numbered across batch boundaries); the first invalid
    /// update rejects the *whole group* before anything is logged.
    /// Empty batches are no-ops: they get no WAL record and a `None`
    /// seq. The per-layer reuse/patch/rebuild counts describe the one
    /// shared materialization and are repeated on every outcome.
    pub fn apply_group(
        &mut self,
        batches: &[Vec<IngestUpdate>],
    ) -> Result<Vec<ApplyOutcome>, IngestError> {
        let mut n = self.base.num_vertices() as u32;
        let mut logged: Vec<Vec<GraphUpdate>> = Vec::with_capacity(batches.len());
        for batch in batches {
            let (out, next_n) = self.validate_from(n, batch)?;
            n = next_n;
            logged.push(out);
        }
        let nonempty: Vec<Vec<GraphUpdate>> =
            logged.iter().filter(|b| !b.is_empty()).cloned().collect();
        if nonempty.is_empty() {
            return Ok(batches.iter().map(|_| self.noop_outcome()).collect());
        }
        let seqs = match &mut self.wal {
            Some(wal) => wal.append_group(&nonempty)?,
            None => Vec::new(),
        };
        if let Some(&last) = seqs.last() {
            self.last_seq = last;
        }
        let mut seq_iter = seqs.into_iter();
        let per_batch_seq: Vec<Option<u64>> = logged
            .iter()
            .map(|b| if b.is_empty() { None } else { seq_iter.next() })
            .collect();
        let flat: Vec<GraphUpdate> = logged.iter().flatten().copied().collect();
        self.apply_to_state(&flat)?;
        if let Some(delta) = &mut self.rebuild_delta {
            delta.extend_from_slice(&flat);
        }
        let (reused_layers, patched_layers, rebuilt_layers) = self.materialize(&flat)?;
        Ok(logged
            .iter()
            .zip(per_batch_seq)
            .map(|(b, seq)| ApplyOutcome {
                seq,
                applied: b.len(),
                reused_layers,
                patched_layers,
                rebuilt_layers,
            })
            .collect())
    }

    /// Total WAL fsyncs issued by this engine's log (0 without a WAL) —
    /// the quantity group commit exists to amortize.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::fsyncs)
    }

    fn noop_outcome(&self) -> ApplyOutcome {
        ApplyOutcome {
            seq: None,
            applied: 0,
            reused_layers: self.bundle.index.num_layers() + 1,
            patched_layers: 0,
            rebuilt_layers: 0,
        }
    }

    /// Measures drift since the last full build and evaluates the
    /// rebuild policy — the staleness tracker.
    pub fn drift(&self) -> DriftReport {
        let costs = layer_costs(&self.bundle.index, self.policy.alpha);
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &cost)| LayerDrift {
                layer: i + 1,
                bisim: self.flats[i].drift(),
                cost,
                baseline_cost: self.baseline.get(i).copied().unwrap_or(cost),
            })
            .collect();
        DriftReport::evaluate(self.updates_since_rebuild, layers, &self.policy)
    }

    /// Recomputes the full hierarchy from scratch with the original
    /// per-layer configurations — the paper's occasional recomputation
    /// that wins back the compression deferred merges gave up. Per-layer
    /// search indexes are rebuilt in parallel on the engine's thread
    /// budget; the flat partitions and cost baselines are re-seeded
    /// from the fresh index.
    ///
    /// This is the *inline* form: the caller blocks for the whole
    /// build. The serving write path instead runs the same computation
    /// off-thread via [`Engine::start_rebuild`] /
    /// [`Engine::finish_rebuild`] so updates keep flowing; this method
    /// is the two stitched together.
    pub fn rebuild(&mut self) -> Result<(), IngestError> {
        let job = self.start_rebuild();
        let bundle = job.run();
        self.finish_rebuild(bundle)
    }

    /// Whether a [`RebuildJob`] started by [`Engine::start_rebuild`] is
    /// outstanding (neither finished nor aborted).
    pub fn rebuild_in_flight(&self) -> bool {
        self.rebuild_delta.is_some()
    }

    /// Captures everything a full rebuild needs — the current base
    /// graph, ontology, and per-layer configurations — into a
    /// [`RebuildJob`] that can run on another thread while this engine
    /// keeps applying batches. From here until
    /// [`Engine::finish_rebuild`] (or [`Engine::abort_rebuild`]) the
    /// engine buffers every applied batch so adoption can replay them
    /// onto the rebuilt hierarchy. Starting a second job before the
    /// first resolves replaces the capture and restarts the buffer.
    pub fn start_rebuild(&mut self) -> RebuildJob {
        self.rebuild_delta = Some(Vec::new());
        RebuildJob {
            base: self.base.clone(),
            ontology: self.ontology.clone(),
            configs: self.configs.clone(),
            direction: self.direction,
            summarizer: self.summarizer,
            blinks_params: self.bundle.blinks_params,
            rclique_params: self.bundle.rclique_params,
            eval: self.bundle.eval,
            threads: self.threads,
        }
    }

    /// Adopts a finished [`RebuildJob`]'s bundle: re-seeds the flat
    /// partitions and cost baselines from the rebuilt hierarchy, then
    /// replays every batch applied since the capture (buffered by
    /// [`Engine::apply_batch`]) so no update is lost. The result is the
    /// full rebuild as of the capture plus eager-split maintenance for
    /// the in-flight window — stable, answer-equivalent, and almost all
    /// of the deferred-merge compression won back.
    ///
    /// Fails with [`IngestError::Inconsistent`] when no rebuild is in
    /// flight (e.g. the job belonged to a different engine instance);
    /// the engine state is untouched in that case. An error while
    /// replaying the buffered delta leaves the engine on the rebuilt
    /// state with the delta partially applied — callers should restart
    /// from the store (the WAL still holds every committed batch).
    pub fn finish_rebuild(&mut self, bundle: IndexBundle) -> Result<(), IngestError> {
        let Some(delta) = self.rebuild_delta.take() else {
            return Err(IngestError::Inconsistent {
                detail: "finish_rebuild without a rebuild in flight".to_string(),
            });
        };
        let seed = Seed::from_index(&bundle.index, self.policy.alpha)?;
        self.ontology = seed.ontology;
        self.alphabet = seed.alphabet;
        self.configs = seed.configs;
        self.step_maps = seed.step_maps;
        self.composed = seed.composed;
        self.base = seed.base;
        self.prev_parts = snapshot_parts(&seed.flats);
        self.flats = seed.flats;
        self.baseline = seed.baseline;
        self.bundle = bundle;
        self.updates_since_rebuild = 0;
        if !delta.is_empty() {
            self.apply_to_state(&delta)?;
            self.materialize(&delta)?;
        }
        Ok(())
    }

    /// Drops the in-flight rebuild bookkeeping without adopting
    /// anything — the current incrementally maintained state stays
    /// authoritative. Used when the background build fails or its
    /// result has gone stale.
    pub fn abort_rebuild(&mut self) {
        self.rebuild_delta = None;
    }

    /// Persists the current bundle as a new store generation and
    /// truncates the WAL through the last folded sequence — the
    /// checkpoint that bounds replay work. Crash-safe in both halves:
    /// the save is the store's old-or-new protocol, and a crash between
    /// save and truncation merely replays idempotent batches onto the
    /// new generation.
    pub fn checkpoint(&mut self, store: &Store) -> Result<u64, IngestError> {
        let generation = store.save_with_threads(&self.bundle, self.threads)?;
        if let Some(wal) = &mut self.wal {
            wal.truncate_through(self.last_seq)?;
        }
        Ok(generation)
    }

    /// Validates a client batch against the current state and stamps
    /// vertex additions with the id they will create. Rejects the whole
    /// batch on the first invalid update — nothing is logged or
    /// applied.
    fn validate(&self, updates: &[IngestUpdate]) -> Result<Vec<GraphUpdate>, IngestError> {
        let n = self.base.num_vertices() as u32;
        self.validate_from(n, updates).map(|(out, _)| out)
    }

    /// [`Engine::validate`] starting from an explicit vertex count, so
    /// a group of batches can be validated in order with vertex
    /// additions numbered across batch boundaries. Returns the logged
    /// form plus the vertex count after the batch.
    fn validate_from(
        &self,
        start_n: u32,
        updates: &[IngestUpdate],
    ) -> Result<(Vec<GraphUpdate>, u32), IngestError> {
        let mut n = start_n;
        let mut out = Vec::with_capacity(updates.len());
        for (index, u) in updates.iter().enumerate() {
            match *u {
                IngestUpdate::InsertEdge { src, dst } | IngestUpdate::DeleteEdge { src, dst } => {
                    let bad = if src >= n {
                        Some(src)
                    } else if dst >= n {
                        Some(dst)
                    } else {
                        None
                    };
                    if let Some(v) = bad {
                        return Err(IngestError::InvalidUpdate {
                            index,
                            detail: format!("vertex {v} does not exist (graph has {n} vertices)"),
                        });
                    }
                    out.push(match *u {
                        IngestUpdate::InsertEdge { src, dst } => {
                            GraphUpdate::InsertEdge { src, dst }
                        }
                        _ => GraphUpdate::DeleteEdge { src, dst },
                    });
                }
                IngestUpdate::AddVertex { label } => {
                    if label as usize >= self.alphabet {
                        return Err(IngestError::InvalidUpdate {
                            index,
                            detail: format!(
                                "label {label} is outside the indexed alphabet (0..{})",
                                self.alphabet
                            ),
                        });
                    }
                    out.push(GraphUpdate::AddVertex { label, expected: n });
                    n += 1;
                }
            }
        }
        Ok((out, n))
    }

    /// Applies logged updates to the base graph and every flat layer —
    /// one CSR rebuild and one re-stabilization per layer for the whole
    /// batch. Idempotent over replay: an `AddVertex` whose vertex
    /// already exists is skipped, edge ops are naturally absorbing.
    /// Returns the number of updates actually applied.
    fn apply_to_state(&mut self, updates: &[GraphUpdate]) -> Result<usize, IngestError> {
        let mut labels: Vec<LabelId> = self.base.labels().to_vec();
        let mut edges: BTreeSet<(VId, VId)> = self.base.edges().collect();
        let mut per_layer: Vec<Vec<BisimUpdate>> = vec![Vec::new(); self.flats.len()];
        let mut applied = 0usize;
        for u in updates {
            match *u {
                GraphUpdate::InsertEdge { src, dst } | GraphUpdate::DeleteEdge { src, dst } => {
                    let n = labels.len() as u32;
                    if src >= n || dst >= n {
                        return Err(IngestError::ReplayGap {
                            expected: src.max(dst),
                            have: n,
                        });
                    }
                    let (a, b) = (VId(src), VId(dst));
                    let insert = matches!(u, GraphUpdate::InsertEdge { .. });
                    if insert {
                        edges.insert((a, b));
                    } else {
                        edges.remove(&(a, b));
                    }
                    for layer in &mut per_layer {
                        layer.push(if insert {
                            BisimUpdate::InsertEdge(a, b)
                        } else {
                            BisimUpdate::DeleteEdge(a, b)
                        });
                    }
                    applied += 1;
                }
                GraphUpdate::AddVertex { label, expected } => {
                    let n = labels.len() as u32;
                    if expected < n {
                        continue; // already applied; idempotent replay
                    }
                    if expected > n {
                        return Err(IngestError::ReplayGap { expected, have: n });
                    }
                    labels.push(LabelId(label));
                    for (i, layer) in per_layer.iter_mut().enumerate() {
                        let gl = self.composed[i]
                            .get(label as usize)
                            .copied()
                            .unwrap_or(LabelId(label));
                        layer.push(BisimUpdate::AddVertex(gl));
                    }
                    applied += 1;
                }
            }
        }
        self.base = GraphBuilder::from_edges(labels, edges.into_iter().collect());
        for (i, batch) in per_layer.into_iter().enumerate() {
            self.flats[i].apply_batch(&batch);
        }
        self.updates_since_rebuild += applied;
        Ok(applied)
    }

    /// Patches layer `m`'s summary graph from the served one instead of
    /// re-summarizing: valid only when the layer's partition extends
    /// the served snapshot by appended singleton blocks (checked by the
    /// caller via [`extends_by_singletons`]), so every update op maps
    /// to a summary-local edit. Edge inserts add the block-pair edge;
    /// edge deletes drop it only after a **witness scan over the
    /// touched block** finds no surviving member edge into the target
    /// block — the dirty-block scoping that keeps the cost proportional
    /// to the touched blocks' degree, not the base graph.
    fn patch_summary(
        &self,
        m: usize,
        ops: &[GraphUpdate],
        part: &Partition,
        flat: &DiGraph,
        n_old: usize,
    ) -> DiGraph {
        let old = self.bundle.index.graph_at(m);
        let mut labels: Vec<LabelId> = old.labels().to_vec();
        let mut edges: BTreeSet<(VId, VId)> = old.edges().collect();
        let mut members: Option<Vec<Vec<VId>>> = None;
        for u in ops {
            match *u {
                GraphUpdate::InsertEdge { src, dst } => {
                    edges.insert((VId(part.block_of(VId(src))), VId(part.block_of(VId(dst)))));
                }
                GraphUpdate::DeleteEdge { src, dst } => {
                    let (bs, bd) = (part.block_of(VId(src)), part.block_of(VId(dst)));
                    let mem = members.get_or_insert_with(|| part.blocks());
                    // The scan runs against the post-batch flat graph,
                    // so out-of-order ops within the batch (delete then
                    // re-insert, insert then delete) still converge on
                    // the final edge set.
                    let witness = mem[bs as usize].iter().any(|&w| {
                        flat.out_neighbors(w)
                            .iter()
                            .any(|&x| part.block_of(x) == bd)
                    });
                    if !witness {
                        edges.remove(&(VId(bs), VId(bd)));
                    }
                }
                GraphUpdate::AddVertex { label, expected } => {
                    if (expected as usize) < n_old {
                        continue; // replay of an already-absorbed addition
                    }
                    let gl = self.composed[m - 1]
                        .get(label as usize)
                        .copied()
                        .unwrap_or(LabelId(label));
                    labels.push(gl);
                }
            }
        }
        GraphBuilder::from_edges(labels, edges.into_iter().collect())
    }

    /// Tries the incremental patch path for changed layer `m`: a small
    /// structural diff of the summary graphs, pushed through the
    /// per-vertex-local patch entry points of all three search indexes.
    /// `None` (diff too large, or any index declines) sends the layer
    /// to the full rebuild fan-out.
    fn try_patch_layer(&self, m: usize, index: &BiGIndex) -> Option<PatchedLayer> {
        if m > self.bundle.index.num_layers()
            || self.bundle.banks.len() <= m
            || self.bundle.blinks.len() <= m
            || self.bundle.rclique.len() <= m
        {
            return None;
        }
        let old_g = self.bundle.index.graph_at(m);
        let new_g = index.graph_at(m);
        let diff = diff_graphs(old_g, new_g, MAX_PATCH_EDGE_OPS)?;
        // A blinks decline is cost-based (patch would out-cost a
        // rebuild), not a correctness failure: rebuild blinks alone and
        // keep the cheap banks and lazy rclique patches for the layer.
        let blinks = match self.bundle.blinks[m].patched(old_g, new_g, &diff) {
            Some(p) => p,
            None => Blinks::new(self.bundle.blinks_params).build_index(new_g),
        };
        let rclique = self.bundle.rclique[m].patched(old_g, new_g, &diff)?;
        let banks = self.bundle.banks[m].patched(new_g, &diff);
        Some(PatchedLayer {
            banks,
            blinks,
            rclique,
        })
    }

    /// Rebuilds the `Layer` tables and the serving bundle from the flat
    /// state, given the update ops applied since the last
    /// materialization. Layers whose partition only grew by appended
    /// singletons get their summary graph *patched* from the served one
    /// ([`Engine::patch_summary`]); search indexes of changed layers
    /// are patched incrementally when the structural diff is small
    /// ([`Engine::try_patch_layer`]) and rebuilt otherwise. Returns
    /// `(reused, patched, rebuilt)` layer counts.
    fn materialize(&mut self, ops: &[GraphUpdate]) -> Result<(usize, usize, usize), IngestError> {
        let n = self.base.num_vertices();
        let h = self.flats.len();
        let served_layers_match = self.bundle.index.num_layers() == h;
        let mut layers: Vec<Layer> = Vec::with_capacity(h);
        for m in 1..=h {
            let flat = &self.flats[m - 1];
            let part = flat.partition();
            let summary_graph = if served_layers_match
                && self
                    .prev_parts
                    .get(m - 1)
                    .is_some_and(|prev| extends_by_singletons(prev, part))
            {
                let n_old = self.prev_parts[m - 1].0.len();
                let patched = self.patch_summary(m, ops, part, flat.graph(), n_old);
                debug_assert!(
                    patched == summarize(flat.graph(), part).graph,
                    "patched summary diverged from summarize at layer {m}"
                );
                patched
            } else {
                summarize(flat.graph(), part).graph
            };
            let supernode_of: Vec<VId> = if m == 1 {
                (0..n).map(|u| VId(part.block_of(VId(u as u32)))).collect()
            } else {
                let prev = self.flats[m - 2].partition();
                let mut table = vec![u32::MAX; prev.num_blocks()];
                for u in 0..n {
                    let v = VId(u as u32);
                    let b = prev.block_of(v) as usize;
                    let s = part.block_of(v);
                    if table[b] == u32::MAX {
                        table[b] = s;
                    } else if table[b] != s {
                        return Err(IngestError::Inconsistent {
                            detail: format!(
                                "layer {m}: layer-{} supernode {b} straddles two layer-{m} \
                                 supernodes ({} and {s}) — coarseness chain broken",
                                m - 1,
                                table[b]
                            ),
                        });
                    }
                }
                if let Some(b) = table.iter().position(|&s| s == u32::MAX) {
                    return Err(IngestError::Inconsistent {
                        detail: format!("layer {m}: layer-{} supernode {b} has no members", m - 1),
                    });
                }
                table.into_iter().map(VId).collect()
            };
            let mut members: Vec<Vec<VId>> = vec![Vec::new(); part.num_blocks()];
            for (b, s) in supernode_of.iter().enumerate() {
                members[s.index()].push(VId(b as u32));
            }
            layers.push(Layer::new(
                self.configs[m - 1].clone(),
                self.step_maps[m - 1].clone(),
                summary_graph,
                supernode_of,
                members,
            ));
        }
        let index = BiGIndex::from_parts(
            self.base.clone(),
            self.ontology.clone(),
            layers,
            self.direction,
            self.summarizer,
        );

        if index == self.bundle.index {
            // Every update in the batch was absorbed without changing any
            // summary: keep the served bundle untouched.
            self.prev_parts = snapshot_parts(&self.flats);
            return Ok((h + 1, 0, 0));
        }
        let blinks_params = self.bundle.blinks_params;
        let rclique_params = self.bundle.rclique_params;
        let eval = self.bundle.eval;
        let blinks_algo = Blinks::new(blinks_params);
        let changed: Vec<usize> = (0..=h)
            .filter(|&m| {
                !(m <= self.bundle.index.num_layers()
                    && self.bundle.banks.len() > m
                    && index.graph_at(m) == self.bundle.index.graph_at(m))
            })
            .collect();
        // Patch changed layers incrementally where the diff allows it —
        // layers are independent, so in parallel; everything else goes
        // to the parallel rebuild fan-out.
        let mut patches: Vec<Option<PatchedLayer>> = par_map(self.threads, changed.len(), |i| {
            self.try_patch_layer(changed[i], &index)
        });
        let rebuild_list: Vec<usize> = changed
            .iter()
            .zip(&patches)
            .filter(|(_, p)| p.is_none())
            .map(|(&m, _)| m)
            .collect();
        // Rebuild the three search indexes of every unpatchable layer
        // in parallel — `(layer, algorithm)` granularity, same task
        // shape (and same determinism argument) as the store's full
        // build.
        let mut built: Vec<Option<BuiltIndex>> =
            par_map(self.threads, rebuild_list.len() * 3, |t| {
                let g = index.graph_at(rebuild_list[t / 3]);
                match t % 3 {
                    0 => BuiltIndex::Banks(Banks.build_index(g)),
                    1 => BuiltIndex::Blinks(blinks_algo.build_index(g)),
                    // Lazy rows: an eager ball construction here would
                    // stall the commit for ~the full index build.
                    _ => BuiltIndex::RClique(rclique_params.build_index_lazy(g)),
                }
            })
            .into_iter()
            .map(Some)
            .collect();
        // Move the unchanged layers' indexes out of the old bundle instead
        // of cloning them — per-layer r-clique tables are the bulk of a
        // bundle's footprint, and the old bundle is dead after the swap.
        let old = std::mem::replace(
            &mut self.bundle,
            IndexBundle {
                index,
                banks: Vec::new(),
                blinks: Vec::new(),
                rclique: Vec::new(),
                blinks_params,
                rclique_params,
                eval,
            },
        );
        let mut old_banks: Vec<Option<BanksIndex>> = old.banks.into_iter().map(Some).collect();
        let mut old_blinks: Vec<Option<BlinksIndex>> = old.blinks.into_iter().map(Some).collect();
        let mut old_rclique: Vec<Option<RCliqueIndex>> =
            old.rclique.into_iter().map(Some).collect();
        let mut banks = Vec::with_capacity(h + 1);
        let mut blinks = Vec::with_capacity(h + 1);
        let mut rclique = Vec::with_capacity(h + 1);
        let (mut reused, mut patched, mut rebuilt) = (0usize, 0usize, 0usize);
        for m in 0..=h {
            match changed.iter().position(|&c| c == m) {
                None => {
                    let slots = (
                        old_banks.get_mut(m).and_then(Option::take),
                        old_blinks.get_mut(m).and_then(Option::take),
                        old_rclique.get_mut(m).and_then(Option::take),
                    );
                    let (Some(ba), Some(bl), Some(rc)) = slots else {
                        // Unreachable: `changed` only skips layers the old
                        // bundle covers.
                        return Err(IngestError::Inconsistent {
                            detail: format!("layer {m}: reusable index missing from bundle"),
                        });
                    };
                    banks.push(ba);
                    blinks.push(bl);
                    rclique.push(rc);
                    reused += 1;
                }
                Some(p) => {
                    if let Some(pl) = patches[p].take() {
                        banks.push(pl.banks);
                        blinks.push(pl.blinks);
                        rclique.push(pl.rclique);
                        patched += 1;
                        continue;
                    }
                    let Some(rp) = rebuild_list.iter().position(|&c| c == m) else {
                        // Unreachable: an unpatched changed layer is
                        // always in the rebuild fan-out.
                        return Err(IngestError::Inconsistent {
                            detail: format!("layer {m}: neither patched nor rebuilt"),
                        });
                    };
                    let slots = (
                        built[rp * 3].take(),
                        built[rp * 3 + 1].take(),
                        built[rp * 3 + 2].take(),
                    );
                    let (
                        Some(BuiltIndex::Banks(ba)),
                        Some(BuiltIndex::Blinks(bl)),
                        Some(BuiltIndex::RClique(rc)),
                    ) = slots
                    else {
                        // Unreachable by construction of `built`.
                        return Err(IngestError::Inconsistent {
                            detail: format!("layer {m}: rebuilt index slots out of order"),
                        });
                    };
                    banks.push(ba);
                    blinks.push(bl);
                    rclique.push(rc);
                    rebuilt += 1;
                }
            }
        }
        self.bundle.banks = banks;
        self.bundle.blinks = blinks;
        self.bundle.rclique = rclique;
        self.prev_parts = snapshot_parts(&self.flats);
        Ok((reused, patched, rebuilt))
    }
}

/// A captured full-rebuild work order: everything
/// [`Engine::start_rebuild`] cloned out of the engine, self-contained
/// and `Send`, so [`RebuildJob::run`] — the expensive part — can
/// execute on a background thread while the engine keeps applying
/// batches. Hand the resulting bundle back to
/// [`Engine::finish_rebuild`].
pub struct RebuildJob {
    base: DiGraph,
    ontology: Ontology,
    configs: Vec<GenConfig>,
    direction: bgi_bisim::BisimDirection,
    summarizer: Summarizer,
    blinks_params: bgi_search::blinks::BlinksParams,
    rclique_params: bgi_search::RClique,
    eval: big_index::EvalOptions,
    threads: usize,
}

impl RebuildJob {
    /// Runs the from-scratch construction (hierarchy, then per-layer
    /// search indexes in parallel on the captured thread budget). Pure
    /// compute — no engine, no disk.
    pub fn run(self) -> IndexBundle {
        let index = BiGIndex::build_with_configs_summarizer(
            self.base,
            self.ontology,
            self.configs,
            self.direction,
            self.summarizer,
        );
        let (banks, blinks, rclique) = build_layer_indexes(
            &index,
            self.blinks_params,
            self.rclique_params,
            self.threads,
        );
        IndexBundle {
            index,
            banks,
            blinks,
            rclique,
            blinks_params: self.blinks_params,
            rclique_params: self.rclique_params,
            eval: self.eval,
        }
    }
}

/// One rebuilt per-layer search index (tagged for the `par_map` fan-out
/// in [`Engine::materialize`]).
enum BuiltIndex {
    Banks(BanksIndex),
    Blinks(BlinksIndex),
    RClique(RCliqueIndex),
}

/// Everything [`Engine`] derives from a hierarchy: the fixed step
/// structure plus the flat per-layer partitions seeded from `χ`.
struct Seed {
    ontology: Ontology,
    direction: bgi_bisim::BisimDirection,
    summarizer: Summarizer,
    alphabet: usize,
    configs: Vec<GenConfig>,
    step_maps: Vec<Vec<LabelId>>,
    composed: Vec<Vec<LabelId>>,
    base: DiGraph,
    flats: Vec<IncrementalBisim>,
    baseline: Vec<f64>,
}

impl Seed {
    fn from_index(index: &BiGIndex, alpha: f64) -> Result<Seed, IngestError> {
        let base = index.base().clone();
        let ontology = index.ontology().clone();
        let direction = index.direction();
        let summarizer = index.summarizer();
        let alphabet = base.alphabet_size().max(ontology.num_labels());
        let configs: Vec<GenConfig> = index.layers().iter().map(|l| l.config.clone()).collect();
        let step_maps: Vec<Vec<LabelId>> =
            index.layers().iter().map(|l| l.label_map.clone()).collect();

        let mut composed: Vec<Vec<LabelId>> = Vec::with_capacity(step_maps.len());
        let mut current: Vec<LabelId> = (0..alphabet as u32).map(LabelId).collect();
        for step in &step_maps {
            for l in &mut current {
                *l = step.get(l.index()).copied().unwrap_or(*l);
            }
            composed.push(current.clone());
        }

        let n = base.num_vertices();
        let mut flats = Vec::with_capacity(index.num_layers());
        for m in 1..=index.num_layers() {
            let assignment: Vec<u32> = (0..n).map(|u| index.chi(VId(u as u32), m).0).collect();
            let partition = Partition::new(assignment, index.graph_at(m).num_vertices());
            let flat_graph = base.relabel(&composed[m - 1]);
            let Some(inc) = IncrementalBisim::from_partition(flat_graph, partition, direction)
            else {
                return Err(IngestError::Inconsistent {
                    detail: format!("layer {m}: χ table does not induce a label-uniform partition"),
                });
            };
            flats.push(inc);
        }
        let baseline = layer_costs(index, alpha);
        Ok(Seed {
            ontology,
            direction,
            summarizer,
            alphabet,
            configs,
            step_maps,
            composed,
            base,
            flats,
            baseline,
        })
    }
}

/// Formula-3 cost of each layer (`1..=h`) measured on the *actual*
/// hierarchy — `compress` is the realized size ratio `|Gᵐ|/|Gᵐ⁻¹|`, no
/// sampling estimator needed.
fn layer_costs(index: &BiGIndex, alpha: f64) -> Vec<f64> {
    (1..=index.num_layers())
        .map(|m| {
            let lower = index.graph_at(m - 1);
            let upper = index.graph_at(m);
            let compress = if lower.size() == 0 {
                1.0
            } else {
                upper.size() as f64 / lower.size() as f64
            };
            let support = LabelSupport::new(lower);
            construction_cost_with_compress(compress, &support, &index.layer(m).config, alpha)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, OntologyBuilder};
    use bgi_search::blinks::BlinksParams;
    use bgi_search::RClique;
    use big_index::EvalOptions;

    /// Fig. 1-like: person subtypes → univ subtypes → state.
    fn setup() -> (DiGraph, Ontology) {
        let mut gb = GraphBuilder::new();
        // 0=Person, 1=Prof, 2=Student, 3=Univ, 4=PubUniv, 5=PrivUniv, 6=State.
        let pub_u = gb.add_vertex(LabelId(4));
        let priv_u = gb.add_vertex(LabelId(5));
        let state = gb.add_vertex(LabelId(6));
        gb.add_edge(pub_u, state);
        gb.add_edge(priv_u, state);
        for i in 0..30 {
            let l = if i % 2 == 0 { LabelId(1) } else { LabelId(2) };
            let v = gb.add_vertex(l);
            gb.add_edge(v, if i % 3 == 0 { pub_u } else { priv_u });
        }
        let g = gb.build();
        let mut ob = OntologyBuilder::new(7);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        ob.add_subtype(LabelId(3), LabelId(4));
        ob.add_subtype(LabelId(3), LabelId(5));
        let o = ob.build().unwrap();
        (g, o)
    }

    fn build_bundle(g: DiGraph, o: Ontology) -> IndexBundle {
        let c1 = GenConfig::new(
            [
                (LabelId(1), LabelId(0)),
                (LabelId(2), LabelId(0)),
                (LabelId(4), LabelId(3)),
                (LabelId(5), LabelId(3)),
            ],
            &o,
        )
        .unwrap();
        let index =
            BiGIndex::build_with_configs(g, o, vec![c1], bgi_bisim::BisimDirection::Forward);
        IndexBundle::build(
            index,
            BlinksParams::default(),
            RClique::default(),
            EvalOptions::default(),
        )
    }

    fn engine() -> Engine {
        let (g, o) = setup();
        Engine::new(build_bundle(g, o), EngineConfig::default()).unwrap()
    }

    #[test]
    fn seeding_reproduces_the_served_hierarchy() {
        let (g, o) = setup();
        let bundle = build_bundle(g, o);
        let reference = bundle.index.clone();
        let mut e = Engine::new(bundle, EngineConfig::default()).unwrap();
        // Materializing with zero updates must reproduce the original
        // hierarchy byte for byte (same supernode numbering included).
        e.materialize(&[]).unwrap();
        assert!(e.index() == &reference);
        assert!(e.index().verify().is_clean());
    }

    #[test]
    fn updates_keep_the_index_verifiable() {
        let mut e = engine();
        let out = e
            .apply_batch(&[
                IngestUpdate::InsertEdge { src: 3, dst: 1 },
                IngestUpdate::DeleteEdge { src: 4, dst: 2 },
                IngestUpdate::AddVertex { label: 2 },
                IngestUpdate::InsertEdge { src: 33, dst: 0 },
            ])
            .unwrap();
        assert_eq!(out.applied, 4);
        assert!(e.index().verify().is_clean(), "{}", e.index().verify());
        assert_eq!(e.index().base().num_vertices(), 34);
        assert!(e.index().base().has_edge(VId(33), VId(0)));
    }

    #[test]
    fn invalid_batch_is_rejected_atomically() {
        let mut e = engine();
        let before = e.index().clone();
        let err = e
            .apply_batch(&[
                IngestUpdate::InsertEdge { src: 0, dst: 1 },
                IngestUpdate::InsertEdge { src: 0, dst: 999 },
            ])
            .unwrap_err();
        assert!(matches!(err, IngestError::InvalidUpdate { index: 1, .. }));
        assert!(e.index() == &before, "rejected batch must not change state");

        let err = e
            .apply_batch(&[IngestUpdate::AddVertex { label: 99 }])
            .unwrap_err();
        assert!(matches!(err, IngestError::InvalidUpdate { index: 0, .. }));
    }

    #[test]
    fn unchanged_layers_reuse_search_indexes() {
        let mut e = engine();
        // A no-op-ish delete of a non-existent edge between valid
        // vertices: graphs unchanged, everything reused.
        let out = e
            .apply_batch(&[IngestUpdate::DeleteEdge { src: 0, dst: 1 }])
            .unwrap();
        assert_eq!(out.rebuilt_layers, 0);
        assert_eq!(out.reused_layers, e.index().num_layers() + 1);
        // A real edge change refreshes at least layer 0 — through the
        // incremental patch path when the diff is small, like here.
        let out = e
            .apply_batch(&[IngestUpdate::InsertEdge { src: 5, dst: 2 }])
            .unwrap();
        assert!(out.patched_layers + out.rebuilt_layers >= 1);
        assert!(out.reused_layers < e.index().num_layers() + 1);
    }

    #[test]
    fn vertex_addition_patches_every_layer() {
        let mut e = engine();
        // A fresh isolated vertex extends every partition by one
        // singleton block: the summaries patch in place and all three
        // search indexes take the per-vertex-local entry points — no
        // layer pays a rebuild.
        let out = e
            .apply_batch(&[IngestUpdate::AddVertex { label: 1 }])
            .unwrap();
        assert_eq!(out.rebuilt_layers, 0, "vertex append must not rebuild");
        assert_eq!(out.patched_layers, e.index().num_layers() + 1);
        assert!(e.index().verify().is_clean(), "{}", e.index().verify());
        // The debug_assert in materialize already cross-checked the
        // patched summaries against summarize(); spot-check the base.
        assert_eq!(e.index().base().num_vertices(), 34);
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("bgi-ingest-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn group_commit_shares_one_fsync_across_batches() {
        let (g, o) = setup();
        let dir = tempdir("group");
        let store = bgi_store::Store::open(&dir).unwrap();
        let (mut e, replayed) =
            Engine::with_wal(build_bundle(g, o), EngineConfig::default(), &store).unwrap();
        assert_eq!(replayed, 0);
        let before = e.wal_fsyncs();
        let outcomes = e
            .apply_group(&[
                vec![IngestUpdate::InsertEdge { src: 3, dst: 1 }],
                Vec::new(),
                vec![
                    IngestUpdate::AddVertex { label: 2 },
                    // Cross-batch numbering: vertex 33 was added by
                    // this very group.
                    IngestUpdate::InsertEdge { src: 33, dst: 0 },
                ],
            ])
            .unwrap();
        assert_eq!(e.wal_fsyncs(), before + 1, "a group commits on one fsync");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].seq.is_some());
        assert_eq!(outcomes[1].seq, None, "empty batch gets no WAL record");
        assert!(outcomes[2].seq > outcomes[0].seq);
        assert_eq!(outcomes[2].applied, 2);
        assert!(e.index().base().has_edge(VId(33), VId(0)));
        assert!(e.index().verify().is_clean(), "{}", e.index().verify());

        // Recovery sees exactly the two non-empty batches.
        drop(e);
        let (_, batches) = store.open_wal().unwrap();
        assert_eq!(batches.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batches_skip_the_wal_entirely() {
        let (g, o) = setup();
        let dir = tempdir("noop");
        let store = bgi_store::Store::open(&dir).unwrap();
        let (mut e, _) =
            Engine::with_wal(build_bundle(g, o), EngineConfig::default(), &store).unwrap();
        let before = e.wal_fsyncs();
        let bundle_before = e.bundle().index.clone();
        let out = e.apply_batch(&[]).unwrap();
        assert_eq!(out.seq, None);
        assert_eq!(out.applied, 0);
        let outs = e.apply_group(&[Vec::new(), Vec::new()]).unwrap();
        assert!(outs.iter().all(|o| o.seq.is_none() && o.applied == 0));
        assert_eq!(e.wal_fsyncs(), before, "no-op batches must not fsync");
        assert!(e.bundle().index == bundle_before);
        let (_, batches) = store.open_wal().unwrap();
        assert!(batches.is_empty(), "no-op batches must not reach the log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_batch_rejects_the_whole_group_before_logging() {
        let (g, o) = setup();
        let dir = tempdir("reject");
        let store = bgi_store::Store::open(&dir).unwrap();
        let (mut e, _) =
            Engine::with_wal(build_bundle(g, o), EngineConfig::default(), &store).unwrap();
        let before = e.index().clone();
        let err = e
            .apply_group(&[
                vec![IngestUpdate::InsertEdge { src: 0, dst: 1 }],
                vec![IngestUpdate::InsertEdge { src: 0, dst: 999 }],
            ])
            .unwrap_err();
        assert!(matches!(err, IngestError::InvalidUpdate { index: 0, .. }));
        assert_eq!(e.wal_fsyncs(), 0, "rejected group must not touch the WAL");
        assert!(e.index() == &before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_recommends_rebuild_and_rebuild_resets() {
        let (g, o) = setup();
        let config = EngineConfig {
            policy: RebuildPolicy {
                alpha: 0.5,
                max_cost_increase: 2.0, // never trip on cost
                max_updates: 10,
            },
            threads: 1,
        };
        let mut e = Engine::new(build_bundle(g, o), config).unwrap();
        // A long update stream must eventually trigger the rebuild
        // recommendation (the satellite fix: drift is actually consulted).
        let mut recommended = false;
        for i in 0..12u32 {
            e.apply_batch(&[IngestUpdate::InsertEdge { src: 3 + i, dst: 2 }])
                .unwrap();
            if e.drift().rebuild_recommended {
                recommended = true;
                break;
            }
        }
        assert!(recommended, "update stream never triggered rebuild");
        e.rebuild().unwrap();
        assert_eq!(e.updates_since_rebuild(), 0);
        assert!(!e.drift().rebuild_recommended);
        assert!(e.index().verify().is_clean());
        // After rebuild the hierarchy equals a from-scratch build.
        let scratch = BiGIndex::build_with_configs(
            e.index().base().clone(),
            e.index().ontology().clone(),
            e.configs.clone(),
            e.direction,
        );
        assert!(e.index() == &scratch);
    }

    #[test]
    fn background_rebuild_replays_updates_applied_while_building() {
        let mut e = engine();
        e.apply_batch(&[IngestUpdate::InsertEdge { src: 3, dst: 1 }])
            .unwrap();
        let job = e.start_rebuild();
        assert!(e.rebuild_in_flight());
        // Updates keep landing while the job "runs elsewhere" — both an
        // edge change and a vertex addition (whose expected id must
        // line up with the capture-time base on replay).
        e.apply_batch(&[
            IngestUpdate::InsertEdge { src: 7, dst: 2 },
            IngestUpdate::AddVertex { label: 1 },
            IngestUpdate::InsertEdge { src: 33, dst: 0 },
        ])
        .unwrap();
        let handle = std::thread::spawn(move || job.run());
        let bundle = handle.join().unwrap();
        e.finish_rebuild(bundle).unwrap();
        assert!(!e.rebuild_in_flight());
        // The delta survived adoption: the rebuilt state includes the
        // updates applied during the build.
        assert_eq!(e.index().base().num_vertices(), 34);
        assert!(e.index().base().has_edge(VId(7), VId(2)));
        assert!(e.index().base().has_edge(VId(33), VId(0)));
        assert!(e.index().verify().is_clean(), "{}", e.index().verify());
        // The baseline reset to the capture; only the delta counts as
        // post-rebuild drift.
        assert_eq!(e.updates_since_rebuild(), 3);
    }

    #[test]
    fn finish_rebuild_without_start_is_rejected() {
        let mut e = engine();
        let bundle = e.bundle().clone();
        let err = e.finish_rebuild(bundle).unwrap_err();
        assert!(matches!(err, IngestError::Inconsistent { .. }));
        // abort clears an in-flight capture; finishing afterwards is
        // rejected too (the job's result went stale).
        let job = e.start_rebuild();
        e.abort_rebuild();
        assert!(!e.rebuild_in_flight());
        let err = e.finish_rebuild(job.run()).unwrap_err();
        assert!(matches!(err, IngestError::Inconsistent { .. }));
    }

    #[test]
    fn cost_drift_triggers_on_compression_loss() {
        let (g, o) = setup();
        let config = EngineConfig {
            policy: RebuildPolicy {
                alpha: 0.5,
                max_cost_increase: 0.01,
                max_updates: usize::MAX,
            },
            threads: 1,
        };
        let mut e = Engine::new(build_bundle(g, o), config).unwrap();
        // Give many persons distinct extra edges: blocks split, the
        // summary grows, compress worsens, Formula-3 cost rises.
        let updates: Vec<IngestUpdate> = (0..12)
            .map(|i| IngestUpdate::InsertEdge {
                src: 3 + i,
                dst: (i % 3),
            })
            .collect();
        e.apply_batch(&updates).unwrap();
        let drift = e.drift();
        assert!(
            drift.layers.iter().any(|l| l.bisim.block_growth() > 0),
            "splits expected"
        );
        assert!(drift.rebuild_recommended, "cost drift should recommend");
    }
}
