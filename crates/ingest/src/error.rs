//! Typed ingest errors. The write path never panics on bad input or
//! bad disk state — every failure maps to one of these.

use bgi_store::StoreError;

/// Why an ingest operation failed.
#[derive(Debug)]
pub enum IngestError {
    /// The WAL or the generation store failed underneath.
    Store(StoreError),
    /// An update in the submitted batch is invalid (vertex out of
    /// range, label outside the indexed alphabet). The whole batch is
    /// rejected *before* anything is logged or applied, so state is
    /// unchanged.
    InvalidUpdate {
        /// Position of the offending update within the batch.
        index: usize,
        /// What exactly was wrong.
        detail: String,
    },
    /// WAL replay found a record referencing state ahead of the
    /// recovered base graph — the store fell back past a generation the
    /// log was already truncated against. Updates were lost; refusing
    /// to silently build on a gap.
    ReplayGap {
        /// Vertex id the log expected to create next.
        expected: u32,
        /// Vertices the recovered base graph actually has.
        have: u32,
    },
    /// An internal cross-layer consistency check failed while
    /// materializing the hierarchy (the coarseness chain between
    /// adjacent flat partitions was violated). Indicates a bug, never
    /// user input; surfaced as an error so a serving process can refuse
    /// the batch and keep its last good snapshot.
    Inconsistent {
        /// What exactly did not hold.
        detail: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Store(e) => write!(f, "store error during ingest: {e}"),
            IngestError::InvalidUpdate { index, detail } => {
                write!(f, "invalid update at batch position {index}: {detail}")
            }
            IngestError::ReplayGap { expected, have } => write!(
                f,
                "wal replay gap: log expects vertex {expected} to be created next but the \
                 recovered base graph has only {have} vertices — updates between the recovered \
                 generation and the log's truncation point were lost"
            ),
            IngestError::Inconsistent { detail } => {
                write!(f, "hierarchy materialization inconsistency: {detail}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}
