//! Incremental maintenance of a bisimulation partition under edge
//! updates (Sec. 3.2, "Maintenance of BiG-index").
//!
//! Inserting or deleting an edge can *split* blocks (vertices that were
//! equivalent no longer are) and, in principle, also *merge* them. Like
//! the practical algorithm the paper adopts (Deng et al. [7]), we apply
//! splits eagerly and defer merges: [`IncrementalBisim::apply`] refines
//! the current partition until it is stable again. The result is a valid
//! (stable) bisimulation — hence label- and path-preserving, so queries
//! stay correct — but possibly finer than the maximal one; callers
//! rebuild periodically to restore maximal compression, exactly as the
//! paper prescribes ("BiG-index can be recomputed occasionally").
//!
//! [`IncrementalBisim::drift`] exposes how far the maintained partition
//! has drifted since the last rebuild (updates applied and block-count
//! growth) so a policy layer — bgi-ingest's staleness tracker — can
//! decide when "occasionally" is now.

use crate::partition::Partition;
use crate::refine::{maximal_bisimulation, refine_round, BisimDirection};
use bgi_graph::{DiGraph, GraphBuilder, LabelId, VId};
use std::collections::BTreeSet;

/// A graph/partition pair maintained under edge updates.
#[derive(Debug, Clone)]
pub struct IncrementalBisim {
    graph: DiGraph,
    partition: Partition,
    dir: BisimDirection,
    updates_since_rebuild: usize,
    blocks_at_rebuild: usize,
}

/// An edge-level update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(u, v)`.
    InsertEdge(VId, VId),
    /// Delete edge `(u, v)` (no-op if absent).
    DeleteEdge(VId, VId),
    /// Add an isolated vertex with the given label. It starts in a
    /// fresh singleton block (split-only maintenance never merges it;
    /// a rebuild will).
    AddVertex(LabelId),
}

/// How far the maintained partition has drifted from the last full
/// rebuild. Split-only maintenance is monotone: blocks only get finer,
/// so `blocks - blocks_at_rebuild` bounds the compression lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drift {
    /// Updates applied since the last rebuild.
    pub updates: usize,
    /// Current number of blocks.
    pub blocks: usize,
    /// Block count right after the last rebuild (or construction).
    pub blocks_at_rebuild: usize,
}

impl Drift {
    /// Blocks gained since the last rebuild — the compression the
    /// deferred merges would win back. (Vertex additions legitimately
    /// add blocks too; the policy layer treats growth as a proxy.)
    pub fn block_growth(&self) -> usize {
        self.blocks.saturating_sub(self.blocks_at_rebuild)
    }
}

impl IncrementalBisim {
    /// Starts from `g`'s maximal bisimulation.
    pub fn new(g: DiGraph, dir: BisimDirection) -> Self {
        let partition = maximal_bisimulation(&g, dir);
        let blocks = partition.num_blocks();
        IncrementalBisim {
            graph: g,
            partition,
            dir,
            updates_since_rebuild: 0,
            blocks_at_rebuild: blocks,
        }
    }

    /// Starts from a caller-supplied partition — e.g. one recovered
    /// from a served index's `χ` table — instead of recomputing the
    /// maximal bisimulation. The partition is re-stabilized here (a
    /// no-op when it was already stable), so the invariant "current
    /// partition is a stable bisimulation of the current graph" holds
    /// regardless of what was passed in. Returns `None` when the
    /// partition does not cover `g`'s vertices or fails to separate
    /// labels (a partition mixing labels in one block can never be
    /// made stable by splitting alone in a label-blind refiner).
    pub fn from_partition(g: DiGraph, partition: Partition, dir: BisimDirection) -> Option<Self> {
        if partition.num_vertices() != g.num_vertices() {
            return None;
        }
        for block in partition.blocks() {
            let mut labels = block.iter().map(|&v| g.label(v));
            let Some(first) = labels.next() else {
                continue;
            };
            if labels.any(|l| l != first) {
                return None;
            }
        }
        let partition = stabilize(&g, partition, dir);
        let blocks = partition.num_blocks();
        Some(IncrementalBisim {
            graph: g,
            partition,
            dir,
            updates_since_rebuild: 0,
            blocks_at_rebuild: blocks,
        })
    }

    /// The current graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The current (stable, possibly non-maximal) partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of updates applied since the last full rebuild.
    pub fn updates_since_rebuild(&self) -> usize {
        self.updates_since_rebuild
    }

    /// Drift from the last rebuild — what a staleness policy consults.
    pub fn drift(&self) -> Drift {
        Drift {
            updates: self.updates_since_rebuild,
            blocks: self.partition.num_blocks(),
            blocks_at_rebuild: self.blocks_at_rebuild,
        }
    }

    /// Applies one update and restores stability by re-refining from the
    /// current partition (splits only; merges deferred to [`Self::rebuild`]).
    pub fn apply(&mut self, update: Update) {
        self.apply_batch(std::slice::from_ref(&update));
    }

    /// Applies a batch of updates with **one** graph rebuild and **one**
    /// re-stabilization — the amortization that makes sustained update
    /// streams affordable (rebuilding the CSR is `O(V + E)` regardless
    /// of batch size). Updates apply in order; edge updates naming a
    /// vertex that does not exist (even after the batch's additions)
    /// are ignored.
    pub fn apply_batch(&mut self, updates: &[Update]) {
        if updates.is_empty() {
            return;
        }
        let mut labels: Vec<LabelId> = self.graph.labels().to_vec();
        let mut edges: BTreeSet<(VId, VId)> = self.graph.edges().collect();
        for u in updates {
            match *u {
                Update::InsertEdge(a, b) => {
                    if a.index() < labels.len() && b.index() < labels.len() {
                        edges.insert((a, b));
                    }
                }
                Update::DeleteEdge(a, b) => {
                    edges.remove(&(a, b));
                }
                Update::AddVertex(l) => labels.push(l),
            }
        }
        let old_n = self.graph.num_vertices();
        let new_n = labels.len();
        self.graph = GraphBuilder::from_edges(labels, edges.into_iter().collect());
        // New vertices enter as fresh singleton blocks (finer is always
        // safe); existing assignments carry over, then one fixpoint
        // restores stability for the whole batch.
        if new_n > old_n {
            let mut assignment = self.partition.assignment().to_vec();
            let mut next = self.partition.num_blocks() as u32;
            for _ in old_n..new_n {
                assignment.push(next);
                next += 1;
            }
            self.partition = Partition::new(assignment, next as usize);
        }
        self.partition = stabilize(&self.graph, self.partition.clone(), self.dir);
        self.updates_since_rebuild += updates.len();
    }

    /// Recomputes the maximal bisimulation from scratch, restoring
    /// maximal compression after a batch of updates.
    pub fn rebuild(&mut self) {
        self.partition = maximal_bisimulation(&self.graph, self.dir);
        self.updates_since_rebuild = 0;
        self.blocks_at_rebuild = self.partition.num_blocks();
    }
}

/// Runs split-only refinement to its fixpoint. Because refinement only
/// splits, the result refines `part` and is a stable bisimulation of
/// `g`. Block ids are renumbered onto `part`'s ids (see
/// [`remap_onto_parent`]) so that incremental maintenance keeps ids
/// stable: untouched blocks keep their number, split-off fragments get
/// fresh ids past the old count. Downstream consumers (the ingest
/// engine's summary patching, per-layer index patching) depend on this
/// to localize their work to the touched blocks.
fn stabilize(g: &DiGraph, part: Partition, dir: BisimDirection) -> Partition {
    let mut refined = part.clone();
    loop {
        let next = refine_round(g, &refined, dir);
        let done = next.num_blocks() == refined.num_blocks();
        refined = next;
        if done {
            break;
        }
    }
    remap_onto_parent(&part, &refined)
}

/// Renumbers `refined` — a refinement of `parent` — so ids are stable
/// across maintenance rounds: within each parent block, the fragment
/// containing the parent block's lowest-id vertex inherits the parent's
/// id, and every other fragment gets a fresh id `≥ parent.num_blocks()`,
/// assigned in order of each fragment's lowest vertex. When refinement
/// split nothing the result is bit-identical to `parent`.
fn remap_onto_parent(parent: &Partition, refined: &Partition) -> Partition {
    let n = refined.num_vertices();
    // Lowest-id vertex of each parent block.
    let mut parent_first = vec![u32::MAX; parent.num_blocks()];
    for v in (0..n as u32).rev() {
        parent_first[parent.block_of(VId(v)) as usize] = v;
    }
    let mut map = vec![u32::MAX; refined.num_blocks()];
    let mut next = parent.num_blocks() as u32;
    for v in 0..n as u32 {
        let rb = refined.block_of(VId(v)) as usize;
        if map[rb] != u32::MAX {
            continue; // not this fragment's lowest vertex
        }
        let pb = parent.block_of(VId(v));
        map[rb] = if parent_first[pb as usize] == v {
            pb
        } else {
            next += 1;
            next - 1
        };
    }
    let assignment = (0..n as u32)
        .map(|v| map[refined.block_of(VId(v)) as usize])
        .collect();
    Partition::new(assignment, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_stable;
    use bgi_graph::{GraphBuilder, LabelId};

    fn fan(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        for _ in 0..n {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
        }
        b.build()
    }

    #[test]
    fn split_keeps_untouched_block_ids_stable() {
        // 10 bisimilar persons plus hub and other: splitting one person
        // off must leave every untouched block's id unchanged and put
        // the fragment at the end — the contract summary patching and
        // per-layer index patching rely on.
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        let other = b.add_vertex(LabelId(2));
        let mut persons = vec![];
        for _ in 0..10 {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
            persons.push(p);
        }
        let g = b.build();
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        let before = inc.partition().assignment().to_vec();
        let old_blocks = inc.partition().num_blocks();
        // Split a person that is NOT the lowest-id member of its block.
        inc.apply(Update::InsertEdge(persons[3], other));
        let after = inc.partition().assignment();
        for v in 0..before.len() {
            if VId(v as u32) == persons[3] {
                assert_eq!(after[v] as usize, old_blocks, "fragment gets a fresh id");
            } else {
                assert_eq!(after[v], before[v], "untouched vertex {v} moved blocks");
            }
        }
        assert_eq!(inc.partition().num_blocks(), old_blocks + 1);
    }

    #[test]
    fn insert_splits_affected_block() {
        // 10 bisimilar persons; give one of them an extra edge to a new
        // target — it must split off.
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        let other = b.add_vertex(LabelId(2));
        let mut persons = vec![];
        for _ in 0..10 {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
            persons.push(p);
        }
        let g = b.build();
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        assert_eq!(inc.partition().num_blocks(), 3);

        inc.apply(Update::InsertEdge(persons[0], other));
        assert_eq!(inc.partition().num_blocks(), 4);
        assert!(!inc.partition().equivalent(persons[0], persons[1]));
        assert!(is_stable(
            inc.graph(),
            inc.partition(),
            BisimDirection::Forward
        ));
    }

    #[test]
    fn delete_keeps_partition_stable() {
        let g = fan(5);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        inc.apply(Update::DeleteEdge(VId(1), VId(0)));
        assert!(is_stable(
            inc.graph(),
            inc.partition(),
            BisimDirection::Forward
        ));
        // The person who lost its edge is no longer like the others.
        assert!(!inc.partition().equivalent(VId(1), VId(2)));
    }

    #[test]
    fn rebuild_recovers_maximal_compression() {
        let g = fan(6);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        // Delete and reinsert the same edge: the graph is back to the
        // original, but the incremental partition stays split.
        inc.apply(Update::DeleteEdge(VId(1), VId(0)));
        inc.apply(Update::InsertEdge(VId(1), VId(0)));
        assert!(inc.partition().num_blocks() > 2);
        assert_eq!(inc.updates_since_rebuild(), 2);
        let drift = inc.drift();
        assert_eq!(drift.updates, 2);
        assert!(drift.block_growth() > 0);
        inc.rebuild();
        assert_eq!(inc.partition().num_blocks(), 2);
        assert_eq!(inc.updates_since_rebuild(), 0);
        assert_eq!(inc.drift().block_growth(), 0);
    }

    #[test]
    fn incremental_refines_maximal() {
        // After any update sequence the incremental partition must refine
        // the true maximal bisimulation of the current graph.
        let g = fan(8);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        inc.apply(Update::InsertEdge(VId(2), VId(3)));
        inc.apply(Update::DeleteEdge(VId(4), VId(0)));
        let maximal = maximal_bisimulation(inc.graph(), BisimDirection::Forward);
        assert!(maximal.is_refined_by(inc.partition()));
    }

    #[test]
    fn delete_missing_edge_is_noop_on_graph() {
        let g = fan(3);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        let edges_before = inc.graph().num_edges();
        inc.apply(Update::DeleteEdge(VId(0), VId(1)));
        assert_eq!(inc.graph().num_edges(), edges_before);
    }

    #[test]
    fn add_vertex_gets_singleton_block_and_can_be_wired() {
        let g = fan(4);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        let n = inc.graph().num_vertices();
        inc.apply_batch(&[
            Update::AddVertex(LabelId(0)),
            Update::InsertEdge(VId(n as u32), VId(0)),
        ]);
        assert_eq!(inc.graph().num_vertices(), n + 1);
        assert_eq!(inc.graph().label(VId(n as u32)), LabelId(0));
        assert!(inc.graph().has_edge(VId(n as u32), VId(0)));
        assert!(is_stable(
            inc.graph(),
            inc.partition(),
            BisimDirection::Forward
        ));
        // The new person is bisimilar to the old ones but stays in its
        // own (finer) block until rebuild merges it back.
        inc.rebuild();
        assert!(inc.partition().equivalent(VId(n as u32), VId(1)));
    }

    #[test]
    fn batch_equals_one_by_one() {
        let g = fan(7);
        let updates = [
            Update::InsertEdge(VId(2), VId(3)),
            Update::DeleteEdge(VId(4), VId(0)),
            Update::AddVertex(LabelId(2)),
            Update::InsertEdge(VId(8), VId(1)),
        ];
        let mut one = IncrementalBisim::new(g.clone(), BisimDirection::Forward);
        for u in updates {
            one.apply(u);
        }
        let mut batched = IncrementalBisim::new(g, BisimDirection::Forward);
        batched.apply_batch(&updates);
        assert_eq!(one.graph(), batched.graph());
        // Both are stable refinements; block *counts* can differ only
        // through refinement order, and the refiner is deterministic,
        // so the partitions agree up to renumbering — compare via
        // mutual refinement.
        assert!(
            one.partition().is_refined_by(batched.partition()) || {
                batched.partition().is_refined_by(one.partition())
            }
        );
        assert_eq!(batched.updates_since_rebuild(), 4);
    }

    #[test]
    fn edge_to_unknown_vertex_is_ignored() {
        let g = fan(3);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        let edges_before = inc.graph().num_edges();
        inc.apply(Update::InsertEdge(VId(0), VId(999)));
        assert_eq!(inc.graph().num_edges(), edges_before);
    }

    #[test]
    fn from_partition_restabilizes_and_rejects_mismatch() {
        let g = fan(5);
        let maximal = maximal_bisimulation(&g, BisimDirection::Forward);
        let inc =
            IncrementalBisim::from_partition(g.clone(), maximal.clone(), BisimDirection::Forward)
                .expect("matching partition accepted");
        assert_eq!(inc.partition().num_blocks(), maximal.num_blocks());
        assert_eq!(inc.drift().block_growth(), 0);

        // Wrong vertex count → rejected.
        let small = Partition::discrete(2);
        assert!(
            IncrementalBisim::from_partition(g.clone(), small, BisimDirection::Forward).is_none()
        );

        // One block mixing both labels → rejected.
        let mixed = Partition::new(vec![0; g.num_vertices()], 1);
        assert!(IncrementalBisim::from_partition(g, mixed, BisimDirection::Forward).is_none());
    }
}
