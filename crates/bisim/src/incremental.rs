//! Incremental maintenance of a bisimulation partition under edge
//! updates (Sec. 3.2, "Maintenance of BiG-index").
//!
//! Inserting or deleting an edge can *split* blocks (vertices that were
//! equivalent no longer are) and, in principle, also *merge* them. Like
//! the practical algorithm the paper adopts (Deng et al. [7]), we apply
//! splits eagerly and defer merges: [`IncrementalBisim::apply`] refines
//! the current partition until it is stable again. The result is a valid
//! (stable) bisimulation — hence label- and path-preserving, so queries
//! stay correct — but possibly finer than the maximal one; callers
//! rebuild periodically to restore maximal compression, exactly as the
//! paper prescribes ("BiG-index can be recomputed occasionally").

use crate::partition::Partition;
use crate::refine::{maximal_bisimulation, refine_round, BisimDirection};
use bgi_graph::{DiGraph, GraphBuilder, VId};

/// A graph/partition pair maintained under edge updates.
#[derive(Debug, Clone)]
pub struct IncrementalBisim {
    graph: DiGraph,
    partition: Partition,
    dir: BisimDirection,
    updates_since_rebuild: usize,
}

/// An edge-level update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(u, v)`.
    InsertEdge(VId, VId),
    /// Delete edge `(u, v)` (no-op if absent).
    DeleteEdge(VId, VId),
}

impl IncrementalBisim {
    /// Starts from `g`'s maximal bisimulation.
    pub fn new(g: DiGraph, dir: BisimDirection) -> Self {
        let partition = maximal_bisimulation(&g, dir);
        IncrementalBisim {
            graph: g,
            partition,
            dir,
            updates_since_rebuild: 0,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The current (stable, possibly non-maximal) partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of updates applied since the last full rebuild.
    pub fn updates_since_rebuild(&self) -> usize {
        self.updates_since_rebuild
    }

    /// Applies one update and restores stability by re-refining from the
    /// current partition (splits only; merges deferred to [`Self::rebuild`]).
    pub fn apply(&mut self, update: Update) {
        let edges: Vec<(VId, VId)> = match update {
            Update::InsertEdge(u, v) => {
                let mut es: Vec<_> = self.graph.edges().collect();
                es.push((u, v));
                es
            }
            Update::DeleteEdge(u, v) => self.graph.edges().filter(|&e| e != (u, v)).collect(),
        };
        self.graph = GraphBuilder::from_edges(self.graph.labels().to_vec(), edges);
        // Re-stabilize starting from the current partition. Because
        // refinement only splits, the fixpoint refines the old partition
        // and is a valid bisimulation of the updated graph.
        loop {
            let next = refine_round(&self.graph, &self.partition, self.dir);
            if next.num_blocks() == self.partition.num_blocks() {
                self.partition = next;
                break;
            }
            self.partition = next;
        }
        self.updates_since_rebuild += 1;
    }

    /// Recomputes the maximal bisimulation from scratch, restoring
    /// maximal compression after a batch of updates.
    pub fn rebuild(&mut self) {
        self.partition = maximal_bisimulation(&self.graph, self.dir);
        self.updates_since_rebuild = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_stable;
    use bgi_graph::{GraphBuilder, LabelId};

    fn fan(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        for _ in 0..n {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
        }
        b.build()
    }

    #[test]
    fn insert_splits_affected_block() {
        // 10 bisimilar persons; give one of them an extra edge to a new
        // target — it must split off.
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        let other = b.add_vertex(LabelId(2));
        let mut persons = vec![];
        for _ in 0..10 {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
            persons.push(p);
        }
        let g = b.build();
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        assert_eq!(inc.partition().num_blocks(), 3);

        inc.apply(Update::InsertEdge(persons[0], other));
        assert_eq!(inc.partition().num_blocks(), 4);
        assert!(!inc.partition().equivalent(persons[0], persons[1]));
        assert!(is_stable(
            inc.graph(),
            inc.partition(),
            BisimDirection::Forward
        ));
    }

    #[test]
    fn delete_keeps_partition_stable() {
        let g = fan(5);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        inc.apply(Update::DeleteEdge(VId(1), VId(0)));
        assert!(is_stable(
            inc.graph(),
            inc.partition(),
            BisimDirection::Forward
        ));
        // The person who lost its edge is no longer like the others.
        assert!(!inc.partition().equivalent(VId(1), VId(2)));
    }

    #[test]
    fn rebuild_recovers_maximal_compression() {
        let g = fan(6);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        // Delete and reinsert the same edge: the graph is back to the
        // original, but the incremental partition stays split.
        inc.apply(Update::DeleteEdge(VId(1), VId(0)));
        inc.apply(Update::InsertEdge(VId(1), VId(0)));
        assert!(inc.partition().num_blocks() > 2);
        assert_eq!(inc.updates_since_rebuild(), 2);
        inc.rebuild();
        assert_eq!(inc.partition().num_blocks(), 2);
        assert_eq!(inc.updates_since_rebuild(), 0);
    }

    #[test]
    fn incremental_refines_maximal() {
        // After any update sequence the incremental partition must refine
        // the true maximal bisimulation of the current graph.
        let g = fan(8);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        inc.apply(Update::InsertEdge(VId(2), VId(3)));
        inc.apply(Update::DeleteEdge(VId(4), VId(0)));
        let maximal = maximal_bisimulation(inc.graph(), BisimDirection::Forward);
        assert!(maximal.is_refined_by(inc.partition()));
    }

    #[test]
    fn delete_missing_edge_is_noop_on_graph() {
        let g = fan(3);
        let mut inc = IncrementalBisim::new(g, BisimDirection::Forward);
        let edges_before = inc.graph().num_edges();
        inc.apply(Update::DeleteEdge(VId(0), VId(1)));
        assert_eq!(inc.graph().num_edges(), edges_before);
    }
}
