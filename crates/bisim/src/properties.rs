//! Verifiable properties of summaries: the paper's Def. 2.1
//! (path-preserving) and Def. 2.2 (label-preserving), plus partition
//! stability. Used by tests, property tests, and debug validation of
//! index layers.

use crate::partition::Partition;
use crate::refine::BisimDirection;
use crate::summary::Summary;
use bgi_graph::DiGraph;
use rustc_hash::FxHashSet;

/// True if every original edge `(u, v)` has a summary edge
/// `(χ(u), χ(v))` — which by induction makes every path of `g` map to a
/// path of the summary (Def. 2.1).
pub fn is_path_preserving(g: &DiGraph, s: &Summary) -> bool {
    g.edges()
        .all(|(u, v)| s.graph.has_edge(s.supernode_of(u), s.supernode_of(v)))
}

/// True if every vertex keeps its label across summarization.
pub fn is_label_preserving(g: &DiGraph, s: &Summary) -> bool {
    g.vertices()
        .all(|v| s.graph.label(s.supernode_of(v)) == g.label(v))
}

/// True if the summary has no edge that does not come from some original
/// edge (no "phantom" connectivity beyond the quotient).
pub fn has_no_phantom_edges(g: &DiGraph, s: &Summary) -> bool {
    let real: FxHashSet<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (s.supernode_of(u).0, s.supernode_of(v).0))
        .collect();
    s.graph.edges().all(|(a, b)| real.contains(&(a.0, b.0)))
}

/// True if `part` is *stable* on `g` in direction `dir`: all vertices of
/// a block have the same label and the same set of neighbor blocks. A
/// stable partition is a bisimulation; the maximal bisimulation is the
/// coarsest stable partition.
pub fn is_stable(g: &DiGraph, part: &Partition, dir: BisimDirection) -> bool {
    let blocks = part.blocks();
    for members in &blocks {
        let first = members[0];
        let label = g.label(first);
        let out_sig = |v| {
            let mut s: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .map(|&t| part.block_of(t))
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let in_sig = |v| {
            let mut s: Vec<u32> = g
                .in_neighbors(v)
                .iter()
                .map(|&t| part.block_of(t))
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let ref_out = out_sig(first);
        let ref_in = in_sig(first);
        for &v in &members[1..] {
            if g.label(v) != label {
                return false;
            }
            if matches!(dir, BisimDirection::Forward | BisimDirection::Both)
                && out_sig(v) != ref_out
            {
                return false;
            }
            if matches!(dir, BisimDirection::Backward | BisimDirection::Both) && in_sig(v) != ref_in
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::maximal_bisimulation;
    use crate::summary::summarize;
    use bgi_graph::generate::uniform_random;
    use bgi_graph::{GraphBuilder, LabelId};

    #[test]
    fn maximal_bisim_summary_has_all_properties() {
        for seed in 0..5 {
            let g = uniform_random(100, 300, 4, seed);
            let p = maximal_bisimulation(&g, BisimDirection::Forward);
            let s = summarize(&g, &p);
            assert!(is_path_preserving(&g, &s), "seed {seed}");
            assert!(is_label_preserving(&g, &s), "seed {seed}");
            assert!(has_no_phantom_edges(&g, &s), "seed {seed}");
            assert!(is_stable(&g, &p, BisimDirection::Forward), "seed {seed}");
        }
    }

    #[test]
    fn label_partition_is_not_generally_stable() {
        // 0 -> 1, 2 isolated; all same label.
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(LabelId(0));
        let x = b.add_vertex(LabelId(0));
        let _ = b.add_vertex(LabelId(0));
        b.add_edge(a, x);
        let g = b.build();
        let p = Partition::from_labels(g.labels());
        assert!(!is_stable(&g, &p, BisimDirection::Forward));
    }

    #[test]
    fn discrete_partition_is_always_stable() {
        let g = uniform_random(50, 150, 3, 1);
        let p = Partition::discrete(g.num_vertices());
        assert!(is_stable(&g, &p, BisimDirection::Both));
    }

    #[test]
    fn coarse_summary_still_path_preserving() {
        // Even a non-maximal (stable) coarse partition is path-preserving;
        // here use maximal backward bisim summarized: path-preservation is
        // about quotients in general.
        let g = uniform_random(60, 150, 2, 3);
        let p = maximal_bisimulation(&g, BisimDirection::Backward);
        let s = summarize(&g, &p);
        assert!(is_path_preserving(&g, &s));
    }
}
