//! Signature-based partition refinement.
//!
//! Starting from the label partition, every round recomputes each
//! vertex's *signature* — its current block plus the sorted set of blocks
//! of its neighbors in the chosen direction(s) — and re-buckets vertices
//! by signature. The fixpoint is the coarsest stable partition, i.e. the
//! maximal bisimulation relation `B` of Sec. 2. Each round is `O(m log m)`
//! and the number of rounds is bounded by the graph's refinement depth
//! (≤ n, in practice close to the diameter).

use crate::partition::Partition;
use bgi_graph::DiGraph;
use rustc_hash::FxHashMap;

/// Which neighbors determine bisimilarity.
///
/// The paper's Sec. 2 definition matches edges out of both related
/// vertices (same-label vertices with matchable *successors*), which is
/// [`BisimDirection::Forward`]; it is the default used by BiG-index
/// because keyword search traverses paths and forward bisimulation
/// preserves them in both the summary's edge orientation senses (every
/// original edge has a summary edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisimDirection {
    /// Bisimilarity determined by out-neighbors (successors).
    Forward,
    /// Bisimilarity determined by in-neighbors (predecessors).
    Backward,
    /// Determined by both; the finest of the three.
    Both,
}

/// One refinement round: re-bucket vertices by
/// `(block, neighbor blocks)`. Returns the refined partition; the block
/// count is non-decreasing.
pub(crate) fn refine_round(g: &DiGraph, part: &Partition, dir: BisimDirection) -> Partition {
    let n = g.num_vertices();
    // Signature: (own block, sorted distinct out-blocks, sorted distinct in-blocks).
    let mut sigs: Vec<(u32, Vec<u32>, Vec<u32>)> = Vec::with_capacity(n);
    let mut out_scratch: Vec<u32> = Vec::new();
    let mut in_scratch: Vec<u32> = Vec::new();
    for v in g.vertices() {
        out_scratch.clear();
        in_scratch.clear();
        if matches!(dir, BisimDirection::Forward | BisimDirection::Both) {
            out_scratch.extend(g.out_neighbors(v).iter().map(|&t| part.block_of(t)));
            out_scratch.sort_unstable();
            out_scratch.dedup();
        }
        if matches!(dir, BisimDirection::Backward | BisimDirection::Both) {
            in_scratch.extend(g.in_neighbors(v).iter().map(|&s| part.block_of(s)));
            in_scratch.sort_unstable();
            in_scratch.dedup();
        }
        sigs.push((part.block_of(v), out_scratch.clone(), in_scratch.clone()));
    }
    // Densify signatures into new block ids.
    let mut ids: FxHashMap<&(u32, Vec<u32>, Vec<u32>), u32> = FxHashMap::default();
    let mut block_of = Vec::with_capacity(n);
    for sig in &sigs {
        let next = ids.len() as u32;
        let id = *ids.entry(sig).or_insert(next);
        block_of.push(id);
    }
    let num_blocks = ids.len();
    Partition::new(block_of, num_blocks)
}

/// Computes the maximal bisimulation of `g` as a [`Partition`]:
/// the coarsest partition where equivalent vertices share a label and
/// matching neighbor blocks in `dir`.
pub fn maximal_bisimulation(g: &DiGraph, dir: BisimDirection) -> Partition {
    let mut part = Partition::from_labels(g.labels());
    loop {
        let next = refine_round(g, &part, dir);
        if next.num_blocks() == part.num_blocks() {
            return next;
        }
        part = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId, VId};

    /// The paper's motivating shape: many same-labeled vertices all
    /// pointing at one shared vertex.
    fn fan(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        for _ in 0..n {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
        }
        b.build()
    }

    #[test]
    fn fan_collapses_to_two_blocks() {
        let g = fan(100);
        let p = maximal_bisimulation(&g, BisimDirection::Forward);
        assert_eq!(p.num_blocks(), 2);
        assert!(p.equivalent(VId(1), VId(100)));
        assert!(!p.equivalent(VId(0), VId(1)));
    }

    #[test]
    fn labels_always_split() {
        let mut b = GraphBuilder::new();
        b.add_vertex(LabelId(0));
        b.add_vertex(LabelId(1));
        let g = b.build();
        let p = maximal_bisimulation(&g, BisimDirection::Forward);
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    fn chain_is_fully_discrete_forward() {
        // 0 -> 1 -> 2 with equal labels: distance-to-sink differs, so all
        // three vertices are distinguishable under forward bisim.
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        let g = b.build();
        let p = maximal_bisimulation(&g, BisimDirection::Forward);
        assert_eq!(p.num_blocks(), 3);
    }

    #[test]
    fn directions_differ() {
        // star out: hub -> leaves. Forward: leaves (no out-edges) collapse.
        // Backward: leaves have hub as predecessor, also collapse; hub has
        // none. Both agree here, so build an asymmetric case:
        // a -> b, c (labels: a=0, b=0, c=0), edges: a->b only.
        // Forward: a has successor, b/c have none -> {a}, {b, c}.
        // Backward: b has predecessor, a/c have none -> {a, c}, {b}.
        let mut bld = GraphBuilder::new();
        let a = bld.add_vertex(LabelId(0));
        let b = bld.add_vertex(LabelId(0));
        let c = bld.add_vertex(LabelId(0));
        bld.add_edge(a, b);
        let g = bld.build();
        let fwd = maximal_bisimulation(&g, BisimDirection::Forward);
        let bwd = maximal_bisimulation(&g, BisimDirection::Backward);
        assert!(fwd.equivalent(b, c) && !fwd.equivalent(a, b));
        assert!(bwd.equivalent(a, c) && !bwd.equivalent(a, b));
        let both = maximal_bisimulation(&g, BisimDirection::Both);
        assert_eq!(both.num_blocks(), 3);
    }

    #[test]
    fn cycle_vertices_collapse() {
        // A directed 3-cycle with one label: all vertices bisimilar.
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(0));
        let g = b.build();
        let p = maximal_bisimulation(&g, BisimDirection::Both);
        assert_eq!(p.num_blocks(), 1);
    }

    #[test]
    fn result_refines_label_partition() {
        let g = bgi_graph::generate::uniform_random(200, 600, 4, 11);
        let labels = Partition::from_labels(g.labels());
        let p = maximal_bisimulation(&g, BisimDirection::Forward);
        assert!(labels.is_refined_by(&p));
    }

    #[test]
    fn fixpoint_is_stable() {
        let g = bgi_graph::generate::uniform_random(150, 450, 3, 5);
        for dir in [
            BisimDirection::Forward,
            BisimDirection::Backward,
            BisimDirection::Both,
        ] {
            let p = maximal_bisimulation(&g, dir);
            let again = refine_round(&g, &p, dir);
            assert_eq!(again.num_blocks(), p.num_blocks());
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let p = maximal_bisimulation(&g, BisimDirection::Forward);
        assert_eq!(p.num_blocks(), 0);
        assert_eq!(p.num_vertices(), 0);
    }
}
