//! Vertex partitions: the output of bisimulation refinement.
//!
//! A [`Partition`] assigns every vertex a dense block id. Blocks are the
//! paper's equivalence classes `[v]_equiv`; the partition is the
//! equivalence relation `B`.

use bgi_graph::VId;

/// A partition of `0..n` vertices into dense blocks `0..num_blocks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<u32>,
    num_blocks: usize,
}

impl Partition {
    /// Creates a partition from a raw block assignment. Block ids must be
    /// dense (`0..num_blocks` all occupied); use [`Partition::from_labels`]
    /// to densify arbitrary assignments.
    pub fn new(block_of: Vec<u32>, num_blocks: usize) -> Self {
        debug_assert!(block_of.iter().all(|&b| (b as usize) < num_blocks));
        Partition {
            block_of,
            num_blocks,
        }
    }

    /// Creates a partition by densifying an arbitrary assignment of
    /// "colors" (e.g. label ids) to vertices.
    pub fn from_labels<T: Copy + Ord>(colors: &[T]) -> Self {
        let mut sorted: Vec<T> = colors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let block_of = colors
            .iter()
            .map(|c| sorted.binary_search(c).unwrap() as u32)
            .collect();
        Partition {
            block_of,
            num_blocks: sorted.len(),
        }
    }

    /// The singleton partition: every vertex its own block.
    pub fn discrete(n: usize) -> Self {
        Partition {
            block_of: (0..n as u32).collect(),
            num_blocks: n,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks (equivalence classes).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The block containing `v` (the paper's `[v]_equiv`).
    #[inline]
    pub fn block_of(&self, v: VId) -> u32 {
        self.block_of[v.index()]
    }

    /// Raw block assignment, indexed by vertex.
    pub fn assignment(&self) -> &[u32] {
        &self.block_of
    }

    /// Materializes the members of each block, in vertex order.
    pub fn blocks(&self) -> Vec<Vec<VId>> {
        let mut blocks = vec![Vec::new(); self.num_blocks];
        for (i, &b) in self.block_of.iter().enumerate() {
            blocks[b as usize].push(VId(i as u32));
        }
        blocks
    }

    /// True if `u` and `v` are equivalent (`(u, v) ∈ B`).
    pub fn equivalent(&self, u: VId, v: VId) -> bool {
        self.block_of(u) == self.block_of(v)
    }

    /// True if `other` refines `self`: every block of `other` is contained
    /// in a block of `self`.
    pub fn is_refined_by(&self, other: &Partition) -> bool {
        if self.block_of.len() != other.block_of.len() {
            return false;
        }
        // For each block of `other`, all members must share a `self` block.
        let mut rep: Vec<Option<u32>> = vec![None; other.num_blocks];
        for (i, &b) in other.block_of.iter().enumerate() {
            match rep[b as usize] {
                None => rep[b as usize] = Some(self.block_of[i]),
                Some(r) => {
                    if r != self.block_of[i] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_densifies() {
        let p = Partition::from_labels(&[10, 20, 10, 30]);
        assert_eq!(p.num_blocks(), 3);
        assert!(p.equivalent(VId(0), VId(2)));
        assert!(!p.equivalent(VId(0), VId(1)));
    }

    #[test]
    fn discrete_partition() {
        let p = Partition::discrete(4);
        assert_eq!(p.num_blocks(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(p.equivalent(VId(i), VId(j)), i == j);
            }
        }
    }

    #[test]
    fn blocks_materialization() {
        let p = Partition::from_labels(&[1, 0, 1]);
        let blocks = p.blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![VId(1)]);
        assert_eq!(blocks[1], vec![VId(0), VId(2)]);
    }

    #[test]
    fn refinement_relation() {
        let coarse = Partition::from_labels(&[0, 0, 1, 1]);
        let fine = Partition::from_labels(&[0, 1, 2, 2]);
        assert!(coarse.is_refined_by(&fine));
        assert!(!fine.is_refined_by(&coarse));
        assert!(coarse.is_refined_by(&coarse));
    }

    #[test]
    fn refinement_rejects_size_mismatch() {
        let a = Partition::discrete(3);
        let b = Partition::discrete(4);
        assert!(!a.is_refined_by(&b));
    }
}
