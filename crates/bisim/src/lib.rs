//! # bgi-bisim
//!
//! Maximal-bisimulation graph summarization — the `Bisim` / `Bisim⁻¹`
//! functions of the BiG-index paper (Sec. 2).
//!
//! A bisimulation partitions vertices into equivalence classes such that
//! equivalent vertices carry the same label and their edges can be matched
//! class-to-class. Quotienting a graph by its *maximal* bisimulation yields
//! the smallest summary graph that is **path-preserving** (every path in
//! `G` maps to a path in `Bisim(G)`), which is exactly the property keyword
//! search algorithms need to run unchanged on the summary.
//!
//! The partition refinement here is signature-based: starting from the
//! label partition, each round re-buckets every vertex by
//! `(current block, blocks of its neighbors)` until a fixpoint — the
//! coarsest stable refinement, i.e. the maximal bisimulation. Stopping
//! after `k` rounds instead yields the classical *k-bisimulation*.
//!
//! ```
//! use bgi_graph::{GraphBuilder, LabelId};
//! use bgi_bisim::{maximal_bisimulation, summarize, BisimDirection};
//!
//! // Two structurally identical Person -> Univ branches.
//! let mut b = GraphBuilder::new();
//! let p1 = b.add_vertex(LabelId(0));
//! let p2 = b.add_vertex(LabelId(0));
//! let u = b.add_vertex(LabelId(1));
//! b.add_edge(p1, u);
//! b.add_edge(p2, u);
//! let g = b.build();
//!
//! let part = maximal_bisimulation(&g, BisimDirection::Forward);
//! assert_eq!(part.block_of(p1), part.block_of(p2)); // collapsed
//!
//! let s = summarize(&g, &part);
//! assert_eq!(s.graph.num_vertices(), 2); // {p1,p2} and {u}
//! assert_eq!(s.members(s.supernode_of(p1)), &[p1, p2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;
pub mod kbisim;
pub mod partition;
pub mod properties;
pub mod refine;
pub mod splitter;
pub mod summary;

pub use incremental::{Drift, IncrementalBisim, Update};
pub use partition::Partition;
pub use refine::{maximal_bisimulation, BisimDirection};
pub use splitter::maximal_bisimulation_splitter;
pub use summary::{summarize, Summary};
