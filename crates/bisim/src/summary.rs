//! Summary graph construction: `Bisim(G)` and its reverse `Bisim⁻¹`.
//!
//! Given a partition `B` of `G`, the summary graph (Sec. 2) has one
//! supernode per block with the block's (common) label, and an edge
//! `([u], [v])` for every original edge `(u, v)` (duplicates merged).
//! `Bisim⁻¹` — needed for answer generation — is the `members` table
//! mapping each supernode back to its original vertices.

use crate::partition::Partition;
use bgi_graph::{DiGraph, GraphBuilder, VId};

/// A summary graph plus the two-way vertex correspondence with the graph
/// it summarizes.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The summary graph `Bisim(G)`; vertex `b` is the supernode of
    /// block `b` of the partition.
    pub graph: DiGraph,
    /// `χ`: original vertex → supernode (`Bisim(v)` in the paper).
    supernode_of: Vec<VId>,
    /// `Bisim⁻¹`: supernode → original vertices, ascending.
    members: Vec<Vec<VId>>,
}

impl Summary {
    /// The supernode containing original vertex `v`.
    #[inline]
    pub fn supernode_of(&self, v: VId) -> VId {
        self.supernode_of[v.index()]
    }

    /// The original vertices summarized by supernode `s` (`Bisim⁻¹(s)`).
    #[inline]
    pub fn members(&self, s: VId) -> &[VId] {
        &self.members[s.index()]
    }

    /// Number of original vertices.
    pub fn num_original_vertices(&self) -> usize {
        self.supernode_of.len()
    }

    /// Compression ratio `|Bisim(G)| / |G|` given the original size.
    pub fn compression_ratio(&self, original_size: usize) -> f64 {
        if original_size == 0 {
            1.0
        } else {
            self.graph.size() as f64 / original_size as f64
        }
    }
}

/// Builds the summary graph of `g` under partition `part`.
///
/// The partition must assign same-label vertices to each block (as any
/// bisimulation partition does); the supernode label is taken from the
/// first member. Asserted in debug builds.
pub fn summarize(g: &DiGraph, part: &Partition) -> Summary {
    let nb = part.num_blocks();
    let members = part.blocks();
    let mut b = GraphBuilder::with_capacity(nb, g.num_edges());
    for block in &members {
        debug_assert!(!block.is_empty(), "partition blocks must be non-empty");
        let label = g.label(block[0]);
        debug_assert!(
            block.iter().all(|&v| g.label(v) == label),
            "partition mixes labels within a block"
        );
        b.add_vertex(label);
    }
    for (u, v) in g.edges() {
        b.add_edge(VId(part.block_of(u)), VId(part.block_of(v)));
    }
    let supernode_of = part.assignment().iter().map(|&b| VId(b)).collect();
    Summary {
        graph: b.build(),
        supernode_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::{maximal_bisimulation, BisimDirection};
    use bgi_graph::{GraphBuilder, LabelId};

    /// 100 Person vertices all pointing at one Univ vertex which points at
    /// one Western vertex — the Fig. 1/3/4 motif.
    fn persons_univ_state() -> DiGraph {
        let mut b = GraphBuilder::new();
        let univ = b.add_vertex(LabelId(1));
        let state = b.add_vertex(LabelId(2));
        b.add_edge(univ, state);
        for _ in 0..100 {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, univ);
        }
        b.build()
    }

    #[test]
    fn fig4_shape() {
        let g = persons_univ_state();
        let part = maximal_bisimulation(&g, BisimDirection::Forward);
        let s = summarize(&g, &part);
        // Person*, Univ, Western -> 3 supernodes, 2 edges.
        assert_eq!(s.graph.num_vertices(), 3);
        assert_eq!(s.graph.num_edges(), 2);
        let person_super = s.supernode_of(VId(2));
        assert_eq!(s.members(person_super).len(), 100);
    }

    #[test]
    fn members_partition_the_vertices() {
        let g = persons_univ_state();
        let part = maximal_bisimulation(&g, BisimDirection::Forward);
        let s = summarize(&g, &part);
        let mut all: Vec<VId> = (0..s.graph.num_vertices() as u32)
            .flat_map(|b| s.members(VId(b)).to_vec())
            .collect();
        all.sort_unstable();
        let expect: Vec<VId> = g.vertices().collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn supernode_labels_match_members() {
        let g = persons_univ_state();
        let part = maximal_bisimulation(&g, BisimDirection::Forward);
        let s = summarize(&g, &part);
        for v in g.vertices() {
            assert_eq!(s.graph.label(s.supernode_of(v)), g.label(v));
        }
    }

    #[test]
    fn every_edge_is_represented() {
        let g = bgi_graph::generate::uniform_random(120, 360, 3, 17);
        let part = maximal_bisimulation(&g, BisimDirection::Forward);
        let s = summarize(&g, &part);
        for (u, v) in g.edges() {
            assert!(
                s.graph.has_edge(s.supernode_of(u), s.supernode_of(v)),
                "edge ({u:?}, {v:?}) lost in summary"
            );
        }
    }

    #[test]
    fn compression_ratio_bounds() {
        let g = persons_univ_state();
        let part = maximal_bisimulation(&g, BisimDirection::Forward);
        let s = summarize(&g, &part);
        let ratio = s.compression_ratio(g.size());
        assert!(ratio > 0.0 && ratio < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn discrete_partition_is_isomorphic_copy() {
        let g = bgi_graph::generate::uniform_random(40, 100, 3, 2);
        let part = Partition::discrete(g.num_vertices());
        let s = summarize(&g, &part);
        assert_eq!(s.graph.num_vertices(), g.num_vertices());
        assert_eq!(s.graph.num_edges(), g.num_edges());
    }
}
