//! Bounded (k-) bisimulation.
//!
//! Stopping signature refinement after `k` rounds yields *k-bisimulation*:
//! vertices are equivalent iff their neighborhoods agree up to depth `k`.
//! It is coarser than the maximal bisimulation (so compresses more) while
//! still being label- and path-preserving — enough for keyword search
//! semantics whose traversals are bounded by `k` hops. The paper lists
//! alternative summarization formalisms as future work (Sec. 8); this is
//! the most natural one.

use crate::partition::Partition;
use crate::refine::{refine_round, BisimDirection};
use bgi_graph::DiGraph;

/// Computes the k-bisimulation partition of `g`: the label partition
/// refined `k` times. `k = 0` is the plain label partition; large `k`
/// converges to the maximal bisimulation.
pub fn k_bisimulation(g: &DiGraph, dir: BisimDirection, k: u32) -> Partition {
    let mut part = Partition::from_labels(g.labels());
    for _ in 0..k {
        let next = refine_round(g, &part, dir);
        if next.num_blocks() == part.num_blocks() {
            return next; // already at fixpoint
        }
        part = next;
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::maximal_bisimulation;
    use bgi_graph::{GraphBuilder, LabelId, VId};

    /// Chain of equal labels: 0 -> 1 -> 2 -> 3.
    fn chain4() -> DiGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(3));
        b.build()
    }

    #[test]
    fn k0_is_label_partition() {
        let g = chain4();
        let p = k_bisimulation(&g, BisimDirection::Forward, 0);
        assert_eq!(p.num_blocks(), 1);
    }

    #[test]
    fn k_increases_block_count_monotonically() {
        let g = chain4();
        let mut prev = 0;
        for k in 0..5 {
            let p = k_bisimulation(&g, BisimDirection::Forward, k);
            assert!(p.num_blocks() >= prev);
            prev = p.num_blocks();
        }
    }

    #[test]
    fn k1_distinguishes_sink_from_others() {
        let g = chain4();
        let p = k_bisimulation(&g, BisimDirection::Forward, 1);
        // Sink (3) has no successors; 0,1,2 each have a same-block successor.
        assert_eq!(p.num_blocks(), 2);
        assert!(p.equivalent(VId(0), VId(2)));
        assert!(!p.equivalent(VId(2), VId(3)));
    }

    #[test]
    fn large_k_matches_maximal() {
        let g = bgi_graph::generate::uniform_random(100, 250, 3, 21);
        let pk = k_bisimulation(&g, BisimDirection::Forward, 1_000);
        let pm = maximal_bisimulation(&g, BisimDirection::Forward);
        assert_eq!(pk.num_blocks(), pm.num_blocks());
        assert!(pk.is_refined_by(&pm) && pm.is_refined_by(&pk));
    }

    #[test]
    fn each_k_refines_previous() {
        let g = bgi_graph::generate::uniform_random(80, 200, 2, 8);
        for k in 0..4 {
            let coarse = k_bisimulation(&g, BisimDirection::Forward, k);
            let fine = k_bisimulation(&g, BisimDirection::Forward, k + 1);
            assert!(coarse.is_refined_by(&fine), "k={k}");
        }
    }
}
