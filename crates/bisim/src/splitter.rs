//! Worklist (splitter-based) partition refinement — an alternative
//! engine to the whole-graph signature rounds of [`crate::refine`].
//!
//! Kanellakis–Smolka style: a worklist holds *splitter* blocks; using a
//! splitter `S`, every block `B` is split by the predicate "has an edge
//! into `S`" (and, depending on direction, "from `S`"). New fragments
//! re-enter the worklist. Because each round touches only the edges
//! incident to the splitter, graphs whose refinement stabilizes locally
//! converge without re-hashing every vertex per round — the signature
//! engine's per-round cost. Both engines compute the same maximal
//! bisimulation; `maximal_bisimulation_splitter` is cross-validated
//! against [`crate::maximal_bisimulation`] in the tests.
//!
//! Note the split predicate is *membership* ("some edge into S"), which
//! stabilizes edge-existence between blocks — exactly the bisimulation
//! condition of Sec. 2 (edges are unlabeled and counts don't matter).

use crate::partition::Partition;
use crate::refine::BisimDirection;
use bgi_graph::{DiGraph, VId};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// Computes the maximal bisimulation with the splitter worklist engine.
pub fn maximal_bisimulation_splitter(g: &DiGraph, dir: BisimDirection) -> Partition {
    let n = g.num_vertices();
    if n == 0 {
        return Partition::new(Vec::new(), 0);
    }
    // Initial partition: by label.
    let initial = Partition::from_labels(g.labels());
    let mut block_of: Vec<u32> = initial.assignment().to_vec();
    let mut blocks: Vec<Vec<VId>> = initial.blocks();

    // Worklist of splitter block ids; every initial block is a splitter.
    let mut work: VecDeque<u32> = (0..blocks.len() as u32).collect();
    let mut queued: Vec<bool> = vec![true; blocks.len()];

    while let Some(s) = work.pop_front() {
        queued[s as usize] = false;
        // Mark vertices with an edge into / from the splitter.
        let members: Vec<VId> = blocks[s as usize].clone();
        let mut into_s: FxHashSet<VId> = FxHashSet::default();
        let mut from_s: FxHashSet<VId> = FxHashSet::default();
        if matches!(dir, BisimDirection::Forward | BisimDirection::Both) {
            for &v in &members {
                for &u in g.in_neighbors(v) {
                    into_s.insert(u);
                }
            }
        }
        if matches!(dir, BisimDirection::Backward | BisimDirection::Both) {
            for &v in &members {
                for &u in g.out_neighbors(v) {
                    from_s.insert(u);
                }
            }
        }
        // Candidate blocks to split: blocks containing a marked vertex.
        let mut touched: Vec<u32> = into_s
            .iter()
            .chain(from_s.iter())
            .map(|&v| block_of[v.index()])
            .collect();
        touched.sort_unstable();
        touched.dedup();

        for b in touched {
            let members_b = &blocks[b as usize];
            if members_b.len() <= 1 {
                continue;
            }
            // Partition B's members into up to 4 fragments by the two
            // predicates.
            let key = |v: VId| (into_s.contains(&v), from_s.contains(&v));
            let first_key = key(members_b[0]);
            if members_b.iter().all(|&v| key(v) == first_key) {
                continue; // stable w.r.t. this splitter
            }
            let mut fragments: Vec<((bool, bool), Vec<VId>)> = Vec::new();
            for &v in members_b {
                let k = key(v);
                match fragments.iter_mut().find(|(fk, _)| *fk == k) {
                    Some((_, frag)) => frag.push(v),
                    None => fragments.push((k, vec![v])),
                }
            }
            // Keep the largest fragment in place; the rest become new
            // blocks (Hopcroft's "all but the largest" trick).
            fragments.sort_by_key(|(_, f)| std::cmp::Reverse(f.len()));
            let (_, keep) = fragments.remove(0);
            blocks[b as usize] = keep;
            let mut new_ids = vec![b];
            for (_, frag) in fragments {
                let id = blocks.len() as u32;
                for &v in &frag {
                    block_of[v.index()] = id;
                }
                blocks.push(frag);
                queued.push(false);
                new_ids.push(id);
            }
            // Requeue: if the split block was queued, all fragments go
            // in; otherwise all fragments are enqueued too (membership
            // predicates are not complement-closed across three-way
            // splits, so the conservative requeue keeps correctness).
            for id in new_ids {
                if !queued[id as usize] {
                    queued[id as usize] = true;
                    work.push_back(id);
                }
            }
        }
    }

    // Densify ids by first occurrence.
    Partition::from_labels(&block_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::maximal_bisimulation;
    use bgi_graph::generate::{preferential_attachment, uniform_random};
    use bgi_graph::{GraphBuilder, LabelId};

    fn assert_same_partition(a: &Partition, b: &Partition) {
        assert_eq!(a.num_blocks(), b.num_blocks());
        assert!(a.is_refined_by(b) && b.is_refined_by(a));
    }

    #[test]
    fn agrees_with_signature_engine_on_random_graphs() {
        for seed in 0..10 {
            let g = uniform_random(150, 400, 4, seed);
            for dir in [
                BisimDirection::Forward,
                BisimDirection::Backward,
                BisimDirection::Both,
            ] {
                let sig = maximal_bisimulation(&g, dir);
                let split = maximal_bisimulation_splitter(&g, dir);
                assert_same_partition(&sig, &split);
            }
        }
    }

    #[test]
    fn agrees_on_preferential_attachment() {
        for seed in 0..5 {
            let g = preferential_attachment(300, 3, 5, seed);
            let sig = maximal_bisimulation(&g, BisimDirection::Forward);
            let split = maximal_bisimulation_splitter(&g, BisimDirection::Forward);
            assert_same_partition(&sig, &split);
        }
    }

    #[test]
    fn fan_collapses() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(LabelId(1));
        for _ in 0..50 {
            let p = b.add_vertex(LabelId(0));
            b.add_edge(p, hub);
        }
        let g = b.build();
        let p = maximal_bisimulation_splitter(&g, BisimDirection::Forward);
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    fn cycles_and_self_loops() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(LabelId(0));
        }
        b.add_edge(VId(0), VId(1));
        b.add_edge(VId(1), VId(2));
        b.add_edge(VId(2), VId(0));
        b.add_edge(VId(3), VId(3)); // self loop
        let g = b.build();
        let sig = maximal_bisimulation(&g, BisimDirection::Both);
        let split = maximal_bisimulation_splitter(&g, BisimDirection::Both);
        assert_same_partition(&sig, &split);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let p = maximal_bisimulation_splitter(&g, BisimDirection::Forward);
        assert_eq!(p.num_vertices(), 0);
    }

    #[test]
    fn summary_from_splitter_partition_is_valid() {
        use crate::properties::{is_label_preserving, is_path_preserving, is_stable};
        use crate::summary::summarize;
        let g = uniform_random(120, 300, 3, 77);
        let p = maximal_bisimulation_splitter(&g, BisimDirection::Forward);
        let s = summarize(&g, &p);
        assert!(is_label_preserving(&g, &s));
        assert!(is_path_preserving(&g, &s));
        assert!(is_stable(&g, &p, BisimDirection::Forward));
    }
}
