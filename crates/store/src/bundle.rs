//! The serialized unit: a [`BiGIndex`] plus every algorithm's prebuilt
//! per-layer index and the parameters they were built with.
//!
//! Encoding is exact: graphs round-trip through their raw CSR arrays
//! ([`DiGraph::from_csr`]), layers carry the `χ`/`Bisim⁻¹` tables
//! verbatim, and BLINKS stores only its partition and keyword-node
//! lists (`NKM`/`KBL` are derived on load). Decoding validates every
//! structural invariant (offset monotonicity, id ranges, table widths)
//! *before* constructing a type — a corrupt file surfaces as a
//! [`CodecError`], never a panic — and the store additionally gates the
//! decoded index behind `bgi_verify::check_index`.

use crate::codec::{CodecError, Dec, Enc, Section};
use bgi_bisim::BisimDirection;
use bgi_graph::{DiGraph, LabelId, Ontology, OntologyBuilder, VId};
use bgi_search::banks::BanksIndex;
use bgi_search::blinks::{BlinksIndex, BlinksParams, GraphPartition};
use bgi_search::rclique::{NeighborIndex, RCliqueIndex};
use bgi_search::{Banks, Blinks, KeywordSearch, RClique};
use big_index::layer::Layer;
use big_index::{BiGIndex, EvalOptions, GenConfig, RealizerKind, Summarizer};
use rustc_hash::FxHashMap;

/// Everything a serving process needs to answer queries without
/// rebuilding anything: the hierarchy plus per-layer search indexes
/// for all three semantics (index `m` of each vector serves layer `m`,
/// `0..=h`) and the parameters they were built with.
#[derive(Debug, Clone)]
pub struct IndexBundle {
    /// The BiG-index hierarchy.
    pub index: BiGIndex,
    /// Per-layer BANKS inverted tables.
    pub banks: Vec<BanksIndex>,
    /// Per-layer BLINKS bi-level indexes.
    pub blinks: Vec<BlinksIndex>,
    /// Per-layer r-clique neighbor indexes.
    pub rclique: Vec<RCliqueIndex>,
    /// Parameters the BLINKS indexes were built with.
    pub blinks_params: BlinksParams,
    /// Parameters the r-clique indexes were built with.
    pub rclique_params: RClique,
    /// Evaluation options to serve with.
    pub eval: EvalOptions,
}

impl PartialEq for IndexBundle {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
            && self.banks == other.banks
            && self.blinks == other.blinks
            && self.rclique == other.rclique
            && self.blinks_params == other.blinks_params
            && self.rclique_params == other.rclique_params
            && self.eval == other.eval
    }
}

/// One per-layer search index of any of the three families, tagged so
/// a mixed parallel build can be split back apart in layer order.
enum BuiltIndex {
    Banks(BanksIndex),
    Blinks(BlinksIndex),
    RClique(RCliqueIndex),
}

/// Builds all `3 · (h + 1)` per-layer search indexes of `index` on up
/// to `threads` workers, returning each family in layer order.
///
/// Every task is independent (each reads one immutable layer graph),
/// and task `t` always denotes the same `(layer, family)` pair —
/// `m = t / 3`, family `= t % 3` — so the three heaviest tasks (layer
/// 0's) are claimed first and the result is identical to the serial
/// loop for any thread count.
pub fn build_layer_indexes(
    index: &BiGIndex,
    blinks_params: BlinksParams,
    rclique_params: RClique,
    threads: usize,
) -> (Vec<BanksIndex>, Vec<BlinksIndex>, Vec<RCliqueIndex>) {
    let blinks_algo = Blinks::new(blinks_params);
    let layers = index.num_layers() + 1;
    let built = bgi_graph::par::par_map(threads, layers * 3, |t| {
        let g = index.graph_at(t / 3);
        match t % 3 {
            0 => BuiltIndex::Banks(Banks.build_index(g)),
            1 => BuiltIndex::Blinks(blinks_algo.build_index(g)),
            _ => BuiltIndex::RClique(rclique_params.build_index(g)),
        }
    });
    let mut banks = Vec::with_capacity(layers);
    let mut blinks = Vec::with_capacity(layers);
    let mut rclique = Vec::with_capacity(layers);
    for b in built {
        match b {
            BuiltIndex::Banks(x) => banks.push(x),
            BuiltIndex::Blinks(x) => blinks.push(x),
            BuiltIndex::RClique(x) => rclique.push(x),
        }
    }
    (banks, blinks, rclique)
}

impl IndexBundle {
    /// Builds every algorithm's index on every layer of `index` —
    /// the expensive step persistence exists to amortize.
    pub fn build(
        index: BiGIndex,
        blinks_params: BlinksParams,
        rclique_params: RClique,
        eval: EvalOptions,
    ) -> Self {
        Self::build_with_threads(index, blinks_params, rclique_params, eval, 1)
    }

    /// [`IndexBundle::build`] with the per-layer index builds fanned
    /// out over up to `threads` scoped workers. The resulting bundle —
    /// down to its encoded bytes — is identical for every thread count.
    pub fn build_with_threads(
        index: BiGIndex,
        blinks_params: BlinksParams,
        rclique_params: RClique,
        eval: EvalOptions,
        threads: usize,
    ) -> Self {
        let (banks, blinks, rclique) =
            build_layer_indexes(&index, blinks_params, rclique_params, threads);
        IndexBundle {
            index,
            banks,
            blinks,
            rclique,
            blinks_params,
            rclique_params,
            eval,
        }
    }

    /// Number of hierarchy layers `h` (each index vector has `h + 1`
    /// entries).
    pub fn num_layers(&self) -> usize {
        self.index.num_layers()
    }
}

fn bad<T>(detail: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError {
        detail: detail.into(),
    })
}

// ---------------------------------------------------------------------
// Graph / ontology
// ---------------------------------------------------------------------

fn enc_graph(e: &mut Enc, g: &DiGraph) {
    let (labels, out_offsets, out_targets, in_offsets, in_sources) = g.csr_parts();
    e.u64(g.alphabet_size() as u64);
    e.u32_slice(&labels.iter().map(|l| l.0).collect::<Vec<_>>());
    e.u32_slice(out_offsets);
    e.u32_slice(&out_targets.iter().map(|v| v.0).collect::<Vec<_>>());
    e.u32_slice(in_offsets);
    e.u32_slice(&in_sources.iter().map(|v| v.0).collect::<Vec<_>>());
}

fn dec_graph(d: &mut Dec<'_>) -> Result<DiGraph, CodecError> {
    let num_labels = d.u64()? as usize;
    let labels: Vec<LabelId> = d.u32_slice()?.into_iter().map(LabelId).collect();
    let out_offsets = d.u32_slice()?;
    let out_targets: Vec<VId> = d.u32_slice()?.into_iter().map(VId).collect();
    let in_offsets = d.u32_slice()?;
    let in_sources: Vec<VId> = d.u32_slice()?.into_iter().map(VId).collect();
    DiGraph::from_csr(
        labels,
        out_offsets,
        out_targets,
        in_offsets,
        in_sources,
        num_labels,
    )
    .map_err(|e| CodecError {
        detail: format!("invalid graph CSR: {e}"),
    })
}

fn enc_ontology(e: &mut Enc, o: &Ontology) {
    e.u64(o.num_labels() as u64);
    let edges: Vec<(LabelId, LabelId)> = o.subtype_edges().collect();
    e.u64(edges.len() as u64);
    for (sup, sub) in edges {
        e.u32(sup.0);
        e.u32(sub.0);
    }
}

fn dec_ontology(d: &mut Dec<'_>) -> Result<Ontology, CodecError> {
    let num_labels = d.u64()? as usize;
    let n = d.seq_len()?;
    let mut b = OntologyBuilder::new(num_labels);
    for _ in 0..n {
        let sup = d.u32()?;
        let sub = d.u32()?;
        if sup as usize >= num_labels || sub as usize >= num_labels {
            return bad(format!(
                "ontology edge ({sup}, {sub}) outside alphabet of {num_labels}"
            ));
        }
        b.add_subtype(LabelId(sup), LabelId(sub));
    }
    b.build().map_err(|e| CodecError {
        detail: format!("invalid ontology: {e}"),
    })
}

// ---------------------------------------------------------------------
// Index (hierarchy)
// ---------------------------------------------------------------------

fn enc_vids(e: &mut Enc, vs: &[VId]) {
    e.u32_slice(&vs.iter().map(|v| v.0).collect::<Vec<_>>());
}

fn dec_vids(d: &mut Dec<'_>, bound: usize, what: &str) -> Result<Vec<VId>, CodecError> {
    let raw = d.u32_slice()?;
    for &v in &raw {
        if v as usize >= bound {
            return bad(format!("{what}: vertex id {v} out of range (n = {bound})"));
        }
    }
    Ok(raw.into_iter().map(VId).collect())
}

/// Serializes the full hierarchy into an [`Section::Index`] frame.
pub fn encode_index(idx: &BiGIndex) -> Vec<u8> {
    let mut e = Enc::new(Section::Index);
    e.u8(match idx.direction() {
        BisimDirection::Forward => 0,
        BisimDirection::Backward => 1,
        BisimDirection::Both => 2,
    });
    match idx.summarizer() {
        Summarizer::Maximal => {
            e.u8(0);
            e.u32(0);
        }
        Summarizer::KBounded(k) => {
            e.u8(1);
            e.u32(k);
        }
    }
    enc_graph(&mut e, idx.base());
    enc_ontology(&mut e, idx.ontology());
    e.u64(idx.layers().len() as u64);
    for layer in idx.layers() {
        let mappings = layer.config.mappings();
        e.u64(mappings.len() as u64);
        for &(from, to) in mappings {
            e.u32(from.0);
            e.u32(to.0);
        }
        e.u32_slice(&layer.label_map.iter().map(|l| l.0).collect::<Vec<_>>());
        enc_graph(&mut e, &layer.graph);
        enc_vids(&mut e, layer.supernode_table());
        let members = layer.member_lists();
        e.u64(members.len() as u64);
        for list in members {
            enc_vids(&mut e, list);
        }
    }
    e.finish()
}

/// Decodes a hierarchy frame. Structural defects (bad ids, mismatched
/// table widths, invalid configurations) are typed errors; the caller
/// still must run `bgi_verify::check_index` before serving the result.
pub fn decode_index(bytes: &[u8]) -> Result<BiGIndex, CodecError> {
    let mut d = Dec::open(bytes, Section::Index)?;
    let direction = match d.u8()? {
        0 => BisimDirection::Forward,
        1 => BisimDirection::Backward,
        2 => BisimDirection::Both,
        x => return bad(format!("unknown bisimulation direction tag {x}")),
    };
    let summarizer = match (d.u8()?, d.u32()?) {
        (0, _) => Summarizer::Maximal,
        (1, k) => Summarizer::KBounded(k),
        (x, _) => return bad(format!("unknown summarizer tag {x}")),
    };
    let base = dec_graph(&mut d)?;
    let ontology = dec_ontology(&mut d)?;
    let num_layers = d.seq_len()?;
    let mut layers = Vec::with_capacity(num_layers);
    let mut lower_n = base.num_vertices();
    for i in 0..num_layers {
        let n_mappings = d.seq_len()?;
        let mut mappings = Vec::with_capacity(n_mappings);
        for _ in 0..n_mappings {
            mappings.push((LabelId(d.u32()?), LabelId(d.u32()?)));
        }
        let config = GenConfig::new(mappings, &ontology).map_err(|e| CodecError {
            detail: format!("layer {}: invalid configuration: {e}", i + 1),
        })?;
        let label_map: Vec<LabelId> = d.u32_slice()?.into_iter().map(LabelId).collect();
        let graph = dec_graph(&mut d)?;
        let supernode_of = dec_vids(&mut d, graph.num_vertices(), "χ table")?;
        if supernode_of.len() != lower_n {
            return bad(format!(
                "layer {}: χ table covers {} vertices, lower graph has {lower_n}",
                i + 1,
                supernode_of.len()
            ));
        }
        let n_members = d.seq_len()?;
        if n_members != graph.num_vertices() {
            return bad(format!(
                "layer {}: {} member lists for {} supernodes",
                i + 1,
                n_members,
                graph.num_vertices()
            ));
        }
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(dec_vids(&mut d, lower_n, "Bisim⁻¹ table")?);
        }
        lower_n = graph.num_vertices();
        layers.push(Layer::new(config, label_map, graph, supernode_of, members));
    }
    d.finish()?;
    Ok(BiGIndex::from_parts(
        base, ontology, layers, direction, summarizer,
    ))
}

// ---------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------

/// Serializes the build/serve parameters into a [`Section::Params`]
/// frame.
pub fn encode_params(blinks: &BlinksParams, rclique: &RClique, eval: &EvalOptions) -> Vec<u8> {
    let mut e = Enc::new(Section::Params);
    e.u64(blinks.block_size as u64);
    e.u32(blinks.prune_dist);
    e.u32(rclique.radius);
    match rclique.max_index_bytes {
        None => e.u8(0),
        Some(b) => {
            e.u8(1);
            e.u64(b as u64);
        }
    }
    e.f64(eval.beta);
    e.u8(match eval.realizer {
        RealizerKind::VertexAtATime => 0,
        RealizerKind::PathBased => 1,
        RealizerKind::DistanceVerify => 2,
        RealizerKind::StructuralThenDistance => 3,
    });
    e.u8(u8::from(eval.use_spec_order));
    e.u8(u8::from(eval.early_keyword_spec));
    e.u64(eval.overfetch as u64);
    e.u64(eval.grace_ops);
    e.finish()
}

/// Decodes a parameters frame.
pub fn decode_params(bytes: &[u8]) -> Result<(BlinksParams, RClique, EvalOptions), CodecError> {
    let mut d = Dec::open(bytes, Section::Params)?;
    let blinks = BlinksParams {
        block_size: d.u64()? as usize,
        prune_dist: d.u32()?,
    };
    let radius = d.u32()?;
    let max_index_bytes = match d.u8()? {
        0 => None,
        1 => Some(d.u64()? as usize),
        x => return bad(format!("unknown option tag {x}")),
    };
    let rclique = RClique {
        radius,
        max_index_bytes,
    };
    let beta = d.f64()?;
    if !beta.is_finite() {
        return bad("non-finite β");
    }
    let realizer = match d.u8()? {
        0 => RealizerKind::VertexAtATime,
        1 => RealizerKind::PathBased,
        2 => RealizerKind::DistanceVerify,
        3 => RealizerKind::StructuralThenDistance,
        x => return bad(format!("unknown realizer tag {x}")),
    };
    let eval = EvalOptions {
        beta,
        realizer,
        use_spec_order: d.u8()? != 0,
        early_keyword_spec: d.u8()? != 0,
        overfetch: d.u64()? as usize,
        grace_ops: d.u64()?,
    };
    d.finish()?;
    Ok((blinks, rclique, eval))
}

// ---------------------------------------------------------------------
// Per-layer search indexes
// ---------------------------------------------------------------------

/// Serializes one layer's BANKS index into a [`Section::Banks`] frame.
pub fn encode_banks(b: &BanksIndex) -> Vec<u8> {
    let mut e = Enc::new(Section::Banks);
    let lists = b.label_lists();
    e.u64(lists.len() as u64);
    for list in lists {
        enc_vids(&mut e, list);
    }
    e.finish()
}

/// Decodes a BANKS frame for a layer graph with `n` vertices.
pub fn decode_banks(bytes: &[u8], n: usize) -> Result<BanksIndex, CodecError> {
    let mut d = Dec::open(bytes, Section::Banks)?;
    let count = d.seq_len()?;
    let mut lists = Vec::with_capacity(count);
    for _ in 0..count {
        lists.push(dec_vids(&mut d, n, "BANKS inverted list")?);
    }
    d.finish()?;
    Ok(BanksIndex::from_parts(lists))
}

/// Serializes one layer's BLINKS index into a [`Section::Blinks`]
/// frame. Only the partition and `KNL` are stored — `NKM` and `KBL`
/// are derived on load. `KNL` entries are written in sorted label
/// order so the encoding is deterministic.
pub fn encode_blinks(b: &BlinksIndex) -> Vec<u8> {
    let mut e = Enc::new(Section::Blinks);
    let partition = b.partition();
    e.u32_slice(partition.block_table());
    e.u64(partition.num_blocks() as u64);
    e.u32(b.prune_dist());
    let mut labels: Vec<LabelId> = b.knl_table().keys().copied().collect();
    labels.sort_unstable();
    e.u64(labels.len() as u64);
    for l in labels {
        e.u32(l.0);
        // Present by construction: `l` was drawn from the table's keys.
        let entries = b.knl_table().get(&l).map_or(&[][..], Vec::as_slice);
        e.u64(entries.len() as u64);
        for &(dist, v) in entries {
            e.u32(u32::from(dist));
            e.u32(v.0);
        }
    }
    e.finish()
}

/// Decodes a BLINKS frame for a layer graph with `n` vertices.
pub fn decode_blinks(bytes: &[u8], n: usize) -> Result<BlinksIndex, CodecError> {
    let mut d = Dec::open(bytes, Section::Blinks)?;
    let block_of = d.u32_slice()?;
    if block_of.len() != n {
        return bad(format!(
            "partition covers {} vertices, graph has {n}",
            block_of.len()
        ));
    }
    let num_blocks = d.u64()? as usize;
    for &b in &block_of {
        if b as usize >= num_blocks {
            return bad(format!("block id {b} out of range ({num_blocks} blocks)"));
        }
    }
    let partition = GraphPartition::from_parts(block_of, num_blocks);
    let prune_dist = d.u32()?;
    let n_labels = d.seq_len()?;
    let mut knl: FxHashMap<LabelId, Vec<(u16, VId)>> = FxHashMap::default();
    for _ in 0..n_labels {
        let label = LabelId(d.u32()?);
        let n_entries = d.seq_len()?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let dist = d.u32()?;
            if dist > u32::from(u16::MAX) || dist > prune_dist {
                return bad(format!("KNL distance {dist} over bound {prune_dist}"));
            }
            let v = d.u32()?;
            if v as usize >= n {
                return bad(format!("KNL vertex {v} out of range (n = {n})"));
            }
            entries.push((dist as u16, VId(v)));
        }
        if knl.insert(label, entries).is_some() {
            return bad(format!("duplicate KNL label {}", label.0));
        }
    }
    d.finish()?;
    Ok(BlinksIndex::from_parts(partition, prune_dist, knl))
}

/// Serializes one layer's r-clique index into a [`Section::RClique`]
/// frame.
pub fn encode_rclique(r: &RCliqueIndex) -> Vec<u8> {
    let mut e = Enc::new(Section::RClique);
    e.u32(r.neighbor.radius());
    let (offsets, entries) = r.neighbor.csr_parts();
    e.u64_slice(&offsets);
    e.u64(entries.len() as u64);
    for &(v, dist) in entries.iter() {
        e.u32(v.0);
        e.u32(u32::from(dist));
    }
    let lists = r.label_lists();
    e.u64(lists.len() as u64);
    for list in lists {
        enc_vids(&mut e, list);
    }
    e.finish()
}

/// Decodes an r-clique frame for a layer graph with `n` vertices.
pub fn decode_rclique(bytes: &[u8], n: usize) -> Result<RCliqueIndex, CodecError> {
    let mut d = Dec::open(bytes, Section::RClique)?;
    let radius = d.u32()?;
    let offsets = d.u64_slice()?;
    if offsets.len() != n + 1 {
        return bad(format!(
            "neighbor offsets cover {} vertices, graph has {n}",
            offsets.len().saturating_sub(1)
        ));
    }
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return bad("neighbor offsets not non-decreasing from 0");
    }
    let n_entries = d.seq_len()?;
    if offsets.last() != Some(&(n_entries as u64)) {
        return bad(format!(
            "neighbor offsets end at {:?}, but {n_entries} entries follow",
            offsets.last()
        ));
    }
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let v = d.u32()?;
        if v as usize >= n {
            return bad(format!("neighbor vertex {v} out of range (n = {n})"));
        }
        let dist = d.u32()?;
        if dist > u32::from(u16::MAX) || dist > radius {
            return bad(format!("neighbor distance {dist} over radius {radius}"));
        }
        entries.push((VId(v), dist as u16));
    }
    let neighbor = NeighborIndex::from_parts(radius, offsets, entries);
    let count = d.seq_len()?;
    let mut lists = Vec::with_capacity(count);
    for _ in 0..count {
        lists.push(dec_vids(&mut d, n, "r-clique inverted list")?);
    }
    d.finish()?;
    Ok(RCliqueIndex::from_parts(neighbor, lists))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgi_graph::{GraphBuilder, LabelId};
    use big_index::BuildParams;

    fn tiny_bundle() -> IndexBundle {
        // A small labeled graph with a 2-level ontology so the build
        // produces at least one generalizing layer.
        let mut ob = OntologyBuilder::new(6);
        ob.add_subtype(LabelId(0), LabelId(1));
        ob.add_subtype(LabelId(0), LabelId(2));
        ob.add_subtype(LabelId(3), LabelId(4));
        ob.add_subtype(LabelId(3), LabelId(5));
        let ontology = ob.build().unwrap();
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            b.add_vertex(LabelId(1 + (i % 2)));
        }
        for i in 0..20u32 {
            b.add_vertex(LabelId(4 + (i % 2)));
        }
        for i in 0..39u32 {
            b.add_edge(VId(i), VId(i + 1));
            b.add_edge(VId(i + 1), VId(i % 7));
        }
        let g = b.build();
        let index = BiGIndex::build(g, ontology, &BuildParams::default());
        IndexBundle::build(
            index,
            BlinksParams {
                block_size: 8,
                prune_dist: 4,
            },
            RClique {
                radius: 3,
                max_index_bytes: None,
            },
            EvalOptions::default(),
        )
    }

    #[test]
    fn index_roundtrip_is_equal() {
        let bundle = tiny_bundle();
        let bytes = encode_index(&bundle.index);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back, bundle.index);
        assert!(back.verify().is_clean());
    }

    #[test]
    fn params_roundtrip() {
        let blinks = BlinksParams {
            block_size: 123,
            prune_dist: 9,
        };
        let rclique = RClique {
            radius: 2,
            max_index_bytes: Some(1 << 30),
        };
        let eval = EvalOptions {
            beta: 0.7,
            realizer: RealizerKind::StructuralThenDistance,
            use_spec_order: false,
            early_keyword_spec: true,
            overfetch: 2,
            grace_ops: 123_456,
        };
        let bytes = encode_params(&blinks, &rclique, &eval);
        let (b2, r2, e2) = decode_params(&bytes).unwrap();
        assert_eq!(b2, blinks);
        assert_eq!(r2, rclique);
        assert_eq!(e2, eval);
    }

    #[test]
    fn search_index_roundtrips_are_equal() {
        let bundle = tiny_bundle();
        for (m, banks) in bundle.banks.iter().enumerate() {
            let n = bundle.index.graph_at(m).num_vertices();
            let back = decode_banks(&encode_banks(banks), n).unwrap();
            assert_eq!(&back, banks, "banks layer {m}");
        }
        for (m, blinks) in bundle.blinks.iter().enumerate() {
            let n = bundle.index.graph_at(m).num_vertices();
            let back = decode_blinks(&encode_blinks(blinks), n).unwrap();
            assert_eq!(&back, blinks, "blinks layer {m}");
        }
        for (m, rclique) in bundle.rclique.iter().enumerate() {
            let n = bundle.index.graph_at(m).num_vertices();
            let back = decode_rclique(&encode_rclique(rclique), n).unwrap();
            assert_eq!(&back, rclique, "rclique layer {m}");
        }
    }

    #[test]
    fn corrupt_index_payload_is_typed_error() {
        let bundle = tiny_bundle();
        let bytes = encode_index(&bundle.index);
        // Re-frame valid-looking garbage so the checksum passes but the
        // structure does not: truncate the payload and re-checksum.
        let body_end = bytes.len() - 8;
        let mut bad = bytes[..body_end - 16].to_vec();
        let sum = crate::codec::fnv1a64(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(decode_index(&bad).is_err());
    }

    #[test]
    fn out_of_range_vertex_is_typed_error() {
        let bundle = tiny_bundle();
        let n = bundle.index.graph_at(0).num_vertices();
        let bytes = encode_banks(&bundle.banks[0]);
        // Decoding against a smaller graph must reject the same ids.
        assert!(decode_banks(&bytes, 1).is_err());
        assert!(decode_banks(&bytes, n).is_ok());
    }
}
