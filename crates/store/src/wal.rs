//! Durable write-ahead log for live graph updates.
//!
//! Generations (see `crate::store`) persist a *full* index bundle and
//! are expensive to write, so the ingest path commits each update batch
//! to an append-only log first and folds the batches into a generation
//! only occasionally. `wal.log` lives next to the generation
//! directories in the store root and is a concatenation of records:
//!
//! ```text
//! [len u32 le][frame]  [len u32 le][frame]  ...
//! ```
//!
//! where each frame is a standard checksummed [`Section::Wal`] codec
//! frame carrying `{seq u64, updates [(tag u8, a u32, b u32)]}`. A
//! batch is *committed* once [`Wal::append`] has fsynced it; a crash
//! mid-append leaves a torn tail that replay detects (short or
//! checksum-failing frame) and discards, yielding exactly the committed
//! prefix — old-or-new, never torn, same contract as generation saves.
//!
//! The committed prefix is also the *write position*: [`Wal::open`]
//! truncates any torn tail off the file before returning, and
//! [`Wal::append`] writes at the committed end rather than at the file
//! end. Both are load-bearing. Without the truncation, an append after
//! a torn-tail recovery would land beyond the torn frame, and the next
//! replay — which stops decoding at that frame — would silently drop
//! the new (fsynced!) batch. Without the positioned write, an append
//! retried after a failed one (say `write_all` succeeded but the fsync
//! errored) would stack a second record with the same sequence number
//! after the first, which the next recovery rejects as
//! [`StoreError::WalCorrupt`].
//!
//! Replay is idempotent: edge inserts/deletes are natural no-ops when
//! already applied, and [`GraphUpdate::AddVertex`] carries the vertex id
//! it is expected to create so a second replay can recognize and skip
//! it. Idempotence is what makes the crash window between "generation
//! saved" and "log truncated" safe — the doubly-covered batches replay
//! onto the new generation without changing it.
//!
//! Truncation ([`Wal::truncate_through`]) rewrites the surviving suffix
//! through the same tmp+fsync+rename path data files use. All labels
//! (`wal.*`, see the catalog table in `crate::fsio`) route through the
//! store's [`Failpoints`] registry and are exercised by the crash
//! matrix.

use crate::codec::{Dec, Enc, Section};
use crate::error::StoreError;
use crate::failpoint::{FailAction, Failpoints};
use crate::fsio;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the log inside a store root.
pub const WAL_FILE: &str = "wal.log";

/// One graph mutation, as logged and replayed.
///
/// Vertex ids are the base graph's `VId` values as raw `u32`s (the
/// store crate does not depend on graph types beyond what the bundle
/// codec already needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert edge `src → dst`. Idempotent: the graph deduplicates.
    InsertEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Delete edge `src → dst`. Idempotent: deleting an absent edge is
    /// a no-op.
    DeleteEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Add an isolated vertex with label `label`. `expected` is the id
    /// the new vertex receives (`num_vertices` at apply time), which is
    /// what lets a replay skip the record when the vertex already
    /// exists.
    AddVertex {
        /// Label of the new vertex.
        label: u32,
        /// Vertex id the addition is expected to produce.
        expected: u32,
    },
}

/// One committed batch: a sequence number plus its updates, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Strictly increasing across the log.
    pub seq: u64,
    /// The batch's updates, applied in order.
    pub updates: Vec<GraphUpdate>,
}

/// An open write-ahead log. Create with [`Wal::open`], which also
/// replays whatever the log already holds.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    fp: Failpoints,
    next_seq: u64,
    /// Byte length of the committed prefix — where the next append
    /// writes. Everything past it is the residue of a failed append.
    end: u64,
    /// Successful commit fsyncs over this handle's lifetime. Group
    /// commit exists to keep this far below the batch count; the soak
    /// tests assert exactly that.
    fsyncs: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `root/wal.log` and decodes
    /// its committed prefix. A torn tail — the residue of a crash
    /// mid-append — is discarded *and truncated off the file*, so a
    /// later append can never land beyond it; a *committed* record that
    /// is structurally inconsistent (sequence going backwards) is
    /// [`StoreError::WalCorrupt`].
    pub fn open(root: &Path, fp: Failpoints) -> Result<(Wal, Vec<UpdateBatch>), StoreError> {
        let path = root.join(WAL_FILE);
        let (batches, end) = if path.exists() {
            let bytes = fsio::read_file(&fp, "wal.read", &path)?;
            let (batches, end) = decode_log(&bytes)?;
            if end < bytes.len() {
                // Crash-safe without a label of its own: dying before
                // (or during) this set_len leaves the same torn bytes
                // for the next open to discard again.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| fsio::io_err("opening", &path, e))?;
                f.set_len(end as u64)
                    .map_err(|e| fsio::io_err("truncating", &path, e))?;
                f.sync_all()
                    .map_err(|e| fsio::io_err("fsyncing", &path, e))?;
            }
            (batches, end as u64)
        } else {
            (Vec::new(), 0)
        };
        let next_seq = batches.last().map_or(1, |b| b.seq + 1);
        Ok((
            Wal {
                path,
                fp,
                next_seq,
                end,
                fsyncs: 0,
            },
            batches,
        ))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next [`Wal::append`] will commit.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Successful commit fsyncs performed by this handle ([`Wal::append`]
    /// and [`Wal::append_group`]; truncation rewrites are not counted).
    /// Group commit's whole point is that this grows far slower than the
    /// number of committed batches.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Opens the log positioned at the committed end. Writes must land
    /// there, not at the file end: a failed append may have left bytes
    /// past `end` (a torn frame, or a whole record whose fsync errored),
    /// and appending after them would either hide the new record behind
    /// the torn frame or stack a duplicate sequence number. Clamp first
    /// — a truncation whose rename committed but whose dir-fsync didn't
    /// leaves the file shorter than `end` — then drop the residue.
    fn open_at_committed_end(&self) -> Result<(std::fs::File, u64), StoreError> {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&self.path)
            .map_err(|e| fsio::io_err("opening", &self.path, e))?;
        let len = f
            .metadata()
            .map_err(|e| fsio::io_err("inspecting", &self.path, e))?
            .len();
        let end = self.end.min(len);
        f.set_len(end)
            .map_err(|e| fsio::io_err("truncating", &self.path, e))?;
        f.seek(SeekFrom::Start(end))
            .map_err(|e| fsio::io_err("seeking", &self.path, e))?;
        Ok((f, end))
    }

    /// Appends one batch and fsyncs it — the batch is durable when this
    /// returns `Ok`. Returns the committed sequence number. Labels:
    /// `wal.append` (torn-able), `wal.fsync` (the commit point).
    pub fn append(&mut self, updates: &[GraphUpdate]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let record = encode_record(seq, updates);
        let (mut f, end) = self.open_at_committed_end()?;

        match self.fp.check("wal.append") {
            Some(FailAction::Transient) => return Err(fsio::transient("appending", &self.path)),
            Some(FailAction::Crash) => return Err(fsio::injected("wal.append")),
            Some(FailAction::Torn) => {
                // Persist a strict prefix of the record, then die — the
                // torn tail replay must discard.
                let torn = &record[..record.len() / 2];
                f.write_all(torn)
                    .map_err(|e| fsio::io_err("appending", &self.path, e))?;
                let _ = f.sync_all();
                return Err(fsio::injected("wal.append"));
            }
            None => {}
        }
        f.write_all(&record)
            .map_err(|e| fsio::io_err("appending", &self.path, e))?;

        match self.fp.check("wal.fsync") {
            Some(FailAction::Transient) => return Err(fsio::transient("fsyncing", &self.path)),
            Some(FailAction::Torn | FailAction::Crash) => return Err(fsio::injected("wal.fsync")),
            None => {}
        }
        f.sync_all()
            .map_err(|e| fsio::io_err("fsyncing", &self.path, e))?;

        self.fsyncs += 1;
        self.end = end + record.len() as u64;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Appends several batches as consecutive records and commits them
    /// all with **one** write and **one** fsync — the group-commit fast
    /// path. Returns the committed sequence numbers, in order. On `Err`
    /// nothing is committed from this handle's point of view (`next_seq`
    /// and the write position are unchanged, so a retry overwrites the
    /// residue); on disk the usual prefix-durability contract holds — a
    /// crash can persist a prefix of the group's records, which replay
    /// picks up and idempotence makes safe, exactly like a crash at the
    /// `wal.fsync` commit point of a single append. Labels:
    /// `wal.group_append` (torn-able: persists a strict prefix of the
    /// whole group image), `wal.group_fsync` (the commit point).
    pub fn append_group(&mut self, batches: &[Vec<GraphUpdate>]) -> Result<Vec<u64>, StoreError> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let mut image = Vec::new();
        let mut seqs = Vec::with_capacity(batches.len());
        for (k, updates) in batches.iter().enumerate() {
            let seq = self.next_seq + k as u64;
            image.extend_from_slice(&encode_record(seq, updates));
            seqs.push(seq);
        }
        let (mut f, end) = self.open_at_committed_end()?;

        match self.fp.check("wal.group_append") {
            Some(FailAction::Transient) => return Err(fsio::transient("appending", &self.path)),
            Some(FailAction::Crash) => return Err(fsio::injected("wal.group_append")),
            Some(FailAction::Torn) => {
                // Persist a strict prefix of the group image, then die.
                // The cut can land mid-record (torn tail, discarded on
                // replay) or on a record boundary (a committed prefix
                // of the group — safe by idempotent replay).
                let torn = &image[..image.len() / 2];
                f.write_all(torn)
                    .map_err(|e| fsio::io_err("appending", &self.path, e))?;
                let _ = f.sync_all();
                return Err(fsio::injected("wal.group_append"));
            }
            None => {}
        }
        f.write_all(&image)
            .map_err(|e| fsio::io_err("appending", &self.path, e))?;

        match self.fp.check("wal.group_fsync") {
            Some(FailAction::Transient) => return Err(fsio::transient("fsyncing", &self.path)),
            Some(FailAction::Torn | FailAction::Crash) => {
                return Err(fsio::injected("wal.group_fsync"))
            }
            None => {}
        }
        f.sync_all()
            .map_err(|e| fsio::io_err("fsyncing", &self.path, e))?;

        self.fsyncs += 1;
        self.end = end + image.len() as u64;
        self.next_seq += batches.len() as u64;
        Ok(seqs)
    }

    /// Drops every committed batch with `seq <= through` by atomically
    /// rewriting the surviving suffix (tmp + fsync + rename, labels
    /// `wal.truncate_*`). Called after the batches were folded into a
    /// persisted generation; a crash anywhere in here leaves either the
    /// old log or the new one, and replaying the old log is safe by
    /// idempotence.
    pub fn truncate_through(&mut self, through: u64) -> Result<(), StoreError> {
        let bytes = if self.path.exists() {
            fsio::read_file(&self.fp, "wal.read", &self.path)?
        } else {
            Vec::new()
        };
        // Only the committed prefix participates: bytes past `end` are
        // the residue of a failed append and must not be resurrected
        // into the rewritten log as committed records.
        let committed = &bytes[..(self.end as usize).min(bytes.len())];
        let (batches, _) = decode_log(committed)?;
        let mut keep = Vec::new();
        for b in &batches {
            if b.seq > through {
                keep.extend_from_slice(&encode_record(b.seq, &b.updates));
            }
        }
        let dir = self
            .path
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
        fsio::write_atomic(
            &self.fp,
            &dir,
            WAL_FILE,
            &keep,
            "wal.truncate_write",
            "wal.truncate_fsync",
            "wal.truncate_rename",
        )?;
        fsio::fsync_dir(&self.fp, "wal.truncate_fsync_dir", &dir)?;
        self.end = keep.len() as u64;
        Ok(())
    }
}

fn encode_record(seq: u64, updates: &[GraphUpdate]) -> Vec<u8> {
    let mut e = Enc::new(Section::Wal);
    e.u64(seq);
    e.u64(updates.len() as u64);
    for u in updates {
        match *u {
            GraphUpdate::InsertEdge { src, dst } => {
                e.u8(0);
                e.u32(src);
                e.u32(dst);
            }
            GraphUpdate::DeleteEdge { src, dst } => {
                e.u8(1);
                e.u32(src);
                e.u32(dst);
            }
            GraphUpdate::AddVertex { label, expected } => {
                e.u8(2);
                e.u32(label);
                e.u32(expected);
            }
        }
    }
    let frame = e.finish();
    let mut record = Vec::with_capacity(4 + frame.len());
    record.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    record.extend_from_slice(&frame);
    record
}

/// Decodes the committed prefix of a log image, returning the batches
/// plus the prefix's byte length. A short or checksum-failing record at
/// the end is a torn tail and terminates the prefix; a committed record
/// whose sequence fails to increase is corruption.
fn decode_log(bytes: &[u8]) -> Result<(Vec<UpdateBatch>, usize), StoreError> {
    let mut out: Vec<UpdateBatch> = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 4 {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let start = pos + 4;
        if len == 0 || bytes.len() - start < len {
            break; // torn tail: length prefix without its record
        }
        let Ok(batch) = decode_frame(&bytes[start..start + len]) else {
            break; // torn tail: frame fails checksum/framing
        };
        if let Some(last) = out.last() {
            if batch.seq <= last.seq {
                return Err(StoreError::WalCorrupt {
                    detail: format!(
                        "sequence number {} follows {} (must strictly increase)",
                        batch.seq, last.seq
                    ),
                });
            }
        }
        out.push(batch);
        pos = start + len;
    }
    Ok((out, pos))
}

fn decode_frame(frame: &[u8]) -> Result<UpdateBatch, crate::codec::CodecError> {
    let mut d = Dec::open(frame, Section::Wal)?;
    let seq = d.u64()?;
    let n = d.u64()? as usize;
    let mut updates = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = d.u8()?;
        let a = d.u32()?;
        let b = d.u32()?;
        updates.push(match tag {
            0 => GraphUpdate::InsertEdge { src: a, dst: b },
            1 => GraphUpdate::DeleteEdge { src: a, dst: b },
            2 => GraphUpdate::AddVertex {
                label: a,
                expected: b,
            },
            t => {
                return Err(crate::codec::CodecError {
                    detail: format!("unknown wal update tag {t}"),
                })
            }
        });
    }
    d.finish()?;
    Ok(UpdateBatch { seq, updates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bgi-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn batch(k: u32) -> Vec<GraphUpdate> {
        vec![
            GraphUpdate::InsertEdge { src: k, dst: k + 1 },
            GraphUpdate::DeleteEdge { src: k, dst: k + 2 },
            GraphUpdate::AddVertex {
                label: 3,
                expected: 100 + k,
            },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let d = tmpdir("rt");
        let fp = Failpoints::disabled();
        let (mut wal, replayed) = Wal::open(&d, fp.clone()).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.append(&batch(0)).unwrap(), 1);
        assert_eq!(wal.append(&batch(5)).unwrap(), 2);

        let (wal2, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].updates, batch(0));
        assert_eq!(replayed[1].seq, 2);
        assert_eq!(replayed[1].updates, batch(5));
        assert_eq!(wal2.next_seq(), 3);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn group_append_commits_every_batch_with_one_fsync() {
        let d = tmpdir("group-rt");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        let seqs = wal.append_group(&[batch(0), batch(1), batch(2)]).unwrap();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(wal.fsyncs(), 1, "one fsync for the whole group");
        assert_eq!(wal.next_seq(), 4);

        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 3);
        for (i, b) in replayed.iter().enumerate() {
            assert_eq!(b.seq, i as u64 + 1);
            assert_eq!(b.updates, batch(i as u32));
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn group_append_interleaves_with_single_appends() {
        let d = tmpdir("group-mixed");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.append_group(&[batch(1), batch(2)]).unwrap();
        wal.append(&batch(3)).unwrap();
        assert_eq!(wal.fsyncs(), 3);
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(
            replayed.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_group_is_a_no_op() {
        let d = tmpdir("group-empty");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        assert_eq!(wal.append_group(&[]).unwrap(), Vec::<u64>::new());
        assert_eq!(wal.fsyncs(), 0);
        assert_eq!(wal.next_seq(), 1);
        assert!(!wal.path().exists() || fs::metadata(wal.path()).unwrap().len() == 0);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_group_append_replays_at_most_a_prefix() {
        let d = tmpdir("group-torn");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(9)).unwrap();
        fp.arm("wal.group_append", 1, FailAction::Torn);
        let err = wal.append_group(&[batch(0), batch(1)]).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));

        // Half the group image may cover complete leading records; the
        // contract is prefix-or-less, never torn, never reordered.
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert!(!replayed.is_empty() && replayed.len() <= 3);
        assert_eq!(replayed[0].updates, batch(9));
        for (i, b) in replayed.iter().enumerate().skip(1) {
            assert_eq!(b.updates, batch(i as u32 - 1));
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_group_fsync_retry_does_not_duplicate_sequences() {
        let d = tmpdir("group-fsync");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        fp.arm("wal.group_fsync", 1, FailAction::Crash);
        assert!(wal.append_group(&[batch(0), batch(1)]).is_err());
        assert_eq!(wal.next_seq(), 1, "nothing committed on error");
        // The retry overwrites the fully-written-but-unsynced residue.
        assert_eq!(wal.append_group(&[batch(0), batch(1)]).unwrap(), vec![1, 2]);
        let (wal2, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(
            replayed.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(wal2.next_seq(), 3);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_yields_committed_prefix() {
        let d = tmpdir("torn");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        fp.arm("wal.append", 2, FailAction::Torn);
        let err = wal.append(&batch(1)).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));

        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 1, "torn second record must be discarded");
        assert_eq!(replayed[0].updates, batch(0));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn append_after_torn_recovery_keeps_later_batches() {
        let d = tmpdir("torn-retry");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        fp.arm("wal.append", 2, FailAction::Torn);
        assert!(wal.append(&batch(1)).is_err());

        // A fresh open truncates the torn tail, so the retried append
        // lands right after the committed prefix…
        let (mut wal, replayed) = Wal::open(&d, fp.clone()).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.append(&batch(1)).unwrap(), 2);
        // …and the next recovery replays *both* batches instead of
        // stopping at the (formerly leftover) torn frame.
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(
            replayed.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(replayed[1].updates, batch(1));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn same_handle_retry_after_torn_append_overwrites_the_residue() {
        let d = tmpdir("torn-same");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        fp.arm("wal.append", 2, FailAction::Torn);
        assert!(wal.append(&batch(1)).is_err());
        // Same handle: the retry writes at the committed end, over the
        // torn residue, instead of after it.
        assert_eq!(wal.append(&batch(1)).unwrap(), 2);
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].updates, batch(1));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_fsync_retry_does_not_duplicate_the_sequence() {
        let d = tmpdir("fsync-retry");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        fp.arm("wal.fsync", 1, FailAction::Crash);
        // The record is fully written before the fsync dies…
        assert!(wal.append(&batch(0)).is_err());
        // …so the retry must overwrite it, not stack a second record
        // with the same sequence number (which the next recovery would
        // reject as corruption, losing the whole log).
        assert_eq!(wal.append(&batch(0)).unwrap(), 1);
        let (wal2, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].updates, batch(0));
        assert_eq!(wal2.next_seq(), 2);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn truncation_does_not_resurrect_a_failed_append() {
        let d = tmpdir("trunc-residue");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        let s1 = wal.append(&batch(0)).unwrap();
        wal.append(&batch(1)).unwrap();
        fp.arm("wal.fsync", 3, FailAction::Crash);
        // Fully written but uncommitted (fsync failed, seq 3 not
        // advanced): truncation must not re-encode it as committed.
        assert!(wal.append(&batch(2)).is_err());
        wal.truncate_through(s1).unwrap();
        // A post-truncation append reuses seq 3 cleanly.
        assert_eq!(wal.append(&batch(3)).unwrap(), 3);
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(
            replayed.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(replayed[1].updates, batch(3));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_before_fsync_is_old_or_new() {
        // A crash at the fsync point may or may not have persisted the
        // record (here the bytes are written, so replay sees it) — the
        // contract is only old-or-new, never torn.
        let d = tmpdir("fsync");
        let fp = Failpoints::enabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        fp.arm("wal.fsync", 1, FailAction::Crash);
        assert!(wal.append(&batch(0)).is_err());
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert!(replayed.len() <= 1);
        for b in &replayed {
            assert_eq!(b.updates, batch(0));
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn truncate_drops_exactly_the_prefix() {
        let d = tmpdir("trunc");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        for k in 0..5 {
            wal.append(&batch(k)).unwrap();
        }
        wal.truncate_through(3).unwrap();
        let (wal2, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(
            replayed.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(wal2.next_seq(), 6);
        // Appending after truncation continues the sequence.
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn truncate_everything_leaves_empty_log() {
        let d = tmpdir("trunc-all");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.truncate_through(u64::MAX).unwrap();
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert!(replayed.is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn non_monotonic_seq_is_corrupt() {
        let d = tmpdir("seq");
        let mut image = Vec::new();
        image.extend_from_slice(&encode_record(2, &batch(0)));
        image.extend_from_slice(&encode_record(1, &batch(1)));
        fs::write(d.join(WAL_FILE), &image).unwrap();
        let err = Wal::open(&d, Failpoints::disabled()).unwrap_err();
        assert!(matches!(err, StoreError::WalCorrupt { .. }));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn bitflip_in_last_record_is_torn_tail_in_earlier_record_would_lose_suffix() {
        let d = tmpdir("flip");
        let fp = Failpoints::disabled();
        let (mut wal, _) = Wal::open(&d, fp.clone()).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.append(&batch(1)).unwrap();
        let mut bytes = fs::read(wal.path()).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x10; // inside the last record's checksum
        fs::write(wal.path(), &bytes).unwrap();
        let (_, replayed) = Wal::open(&d, fp).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].updates, batch(0));
        let _ = fs::remove_dir_all(&d);
    }
}
