//! Checksummed binary framing for store files.
//!
//! Every file is `[magic "BGIS"][version u16][section u16][payload]
//! [fnv1a-64 of everything before]`, little-endian throughout. The
//! decoder verifies length, magic, version, section, and checksum
//! before handing out a cursor over the payload; any mismatch is a
//! framing error the store maps to [`crate::StoreError::Corrupt`] —
//! reads are bounds-checked and never panic on torn input.

/// 4-byte file magic.
pub const MAGIC: [u8; 4] = *b"BGIS";
/// Format version; bump on any layout change.
pub const VERSION: u16 = 2;

/// Section tags identifying what a file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The BiG-index hierarchy (`index.bin`).
    Index = 1,
    /// Algorithm/evaluation parameters (`params.bin`).
    Params = 2,
    /// A per-layer BANKS index (`banks-<m>.bin`).
    Banks = 3,
    /// A per-layer BLINKS index (`blinks-<m>.bin`).
    Blinks = 4,
    /// A per-layer r-clique index (`rclique-<m>.bin`).
    RClique = 5,
    /// The generation manifest (`MANIFEST`).
    Manifest = 6,
    /// One update batch in the write-ahead log (`wal.log`).
    Wal = 7,
}

/// FNV-1a 64-bit over `bytes` — dependency-free and deterministic
/// across platforms, which is all a torn-write detector needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoding failure: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of the violated expectation.
    pub detail: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(detail: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError {
        detail: detail.into(),
    })
}

/// Little-endian byte writer with the standard frame.
#[derive(Debug)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Starts a frame for `section`.
    pub fn new(section: Section) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(section as u16).to_le_bytes());
        Enc { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends length-prefixed raw bytes.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        self.buf.extend_from_slice(bs);
    }

    /// Closes the frame: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked little-endian reader over a verified frame payload.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Verifies the frame (length, magic, version, section, checksum)
    /// and returns a cursor over the payload.
    pub fn open(bytes: &'a [u8], section: Section) -> Result<Self, CodecError> {
        const HEADER: usize = 8; // magic + version + section
        const TRAILER: usize = 8; // checksum
        if bytes.len() < HEADER + TRAILER {
            return err(format!("file too short ({} bytes)", bytes.len()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let want = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        let got = fnv1a64(body);
        if want != got {
            return err(format!(
                "checksum mismatch: stored {want:#x}, computed {got:#x}"
            ));
        }
        if body[..4] != MAGIC {
            return err("bad magic");
        }
        let version = u16::from_le_bytes([body[4], body[5]]);
        if version != VERSION {
            return err(format!(
                "unsupported version {version} (expected {VERSION})"
            ));
        }
        let tag = u16::from_le_bytes([body[6], body[7]]);
        if tag != section as u16 {
            return err(format!(
                "section tag {tag} where {} expected",
                section as u16
            ));
        }
        Ok(Dec {
            buf: body,
            pos: HEADER,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return err(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix, rejecting lengths that cannot fit in the
    /// remaining payload (guards allocation against corrupt headers).
    pub fn seq_len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return err(format!("length {n} exceeds remaining payload {remaining}"));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.seq_len()?;
        self.take(n)
    }

    /// Asserts the payload is fully consumed (trailing garbage is
    /// corruption, not slack).
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return err(format!(
                "{} unconsumed payload bytes",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = Enc::new(Section::Params);
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.f64(0.4);
        e.u32_slice(&[1, 2, 3]);
        e.u64_slice(&[9]);
        e.bytes(b"xyz");
        let bytes = e.finish();

        let mut d = Dec::open(&bytes, Section::Params).unwrap();
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), 0.4);
        assert_eq!(d.u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u64_slice().unwrap(), vec![9]);
        assert_eq!(d.bytes().unwrap(), b"xyz");
        d.finish().unwrap();
    }

    #[test]
    fn detects_bit_flip_anywhere() {
        let mut e = Enc::new(Section::Index);
        e.u64_slice(&[1, 2, 3, 4]);
        let bytes = e.finish();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Dec::open(&bad, Section::Index).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let mut e = Enc::new(Section::Banks);
        e.u32_slice(&[5; 100]);
        let bytes = e.finish();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(Dec::open(&bytes[..cut], Section::Banks).is_err());
        }
    }

    #[test]
    fn rejects_wrong_section() {
        let e = Enc::new(Section::Banks);
        let bytes = e.finish();
        assert!(Dec::open(&bytes, Section::Blinks).is_err());
        assert!(Dec::open(&bytes, Section::Banks).is_ok());
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        let mut e = Enc::new(Section::Index);
        e.u64(u64::MAX); // a length prefix pointing beyond the payload
        let bytes = e.finish();
        let mut d = Dec::open(&bytes, Section::Index).unwrap();
        assert!(d.seq_len().is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut e = Enc::new(Section::Index);
        e.u32(1);
        e.u32(2);
        let bytes = e.finish();
        let mut d = Dec::open(&bytes, Section::Index).unwrap();
        assert_eq!(d.u32().unwrap(), 1);
        assert!(d.finish().is_err());
    }
}
